GO ?= go

.PHONY: all vet build test race ci fmt-check docs-check bench bench-smoke bench-gate

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# docs-check enforces the documentation layer: go vet over everything (it
# flags malformed doc comments), a missing-package-comment lint — every
# package directory must have at least one file opening with a "// Package"
# (or, for main packages, "// Command") doc comment — an exported-identifier
# doc lint on internal/service (every top-level exported func/type/const/var
# and exported method must carry a doc comment), and a stale-reference check
# that greps the prose docs for identifiers that no longer exist in the code.
docs-check: vet
	@missing=$$($(GO) list -f '{{.Dir}} {{join .GoFiles " "}}' ./... | \
	while read -r dir files; do \
		ok=0; \
		for f in $$files; do \
			if grep -qE '^// (Package|Command) ' "$$dir/$$f"; then ok=1; break; fi; \
		done; \
		if [ $$ok -eq 0 ]; then echo "  $$dir"; fi; \
	done); \
	if [ -n "$$missing" ]; then \
		echo "packages missing a package doc comment:"; echo "$$missing"; exit 1; \
	fi
	@undoc=$$(for f in internal/service/*.go; do \
		case "$$f" in *_test.go) continue;; esac; \
		awk -v file="$$f" ' \
			/^(func|type|const|var) [A-Z]/ || /^func \([^)]*\) [A-Z]/ { \
				if (prev !~ /^\/\//) print file ":" FNR ": " $$0 } \
			{ prev = $$0 }' "$$f"; \
	done); \
	if [ -n "$$undoc" ]; then \
		echo "exported identifiers missing doc comments:"; echo "$$undoc"; exit 1; \
	fi
	@stale=$$(for ident in mirrorRebuildAll; do \
		hits=$$(grep -rn "$$ident" README.md ARCHITECTURE.md ROADMAP.md 2>/dev/null); \
		if [ -n "$$hits" ] && ! grep -rqw "$$ident" --include='*.go' .; then \
			echo "$$hits"; \
		fi; \
	done); \
	if [ -n "$$stale" ]; then \
		echo "docs reference identifiers that no longer exist:"; echo "$$stale"; exit 1; \
	fi
	@echo "docs-check: all packages documented, service exports documented, no stale doc references"

# bench-smoke is a seconds-long fixed configuration proving the whole
# dashbench pipeline (workload → harness → CLI → JSON) end to end; the cost
# model is off (-scale 0) so it measures nothing, it only has to run.
# delete-heavy exercises the epoch-reclamation meters, -recovery the
# snapshot→reopen timing path, and -shards 2 -batch 8 the service tier
# (shards + batched frontend + client simulation, baseline and batched).
bench-smoke:
	$(GO) run ./cmd/dashbench -only -mix balanced,read,read-neg,var-insert,var-read,delete-heavy -threads 2 \
		-ops 8000 -warmup 800 -keyspace 8192 -scale 0 -recovery \
		-shards 2 -batch 8 -sims svc-balanced \
		-out $${TMPDIR:-/tmp}/BENCH_smoke.json

# bench-gate is the perf-regression gate: one fixed seeded insert cell under
# the full cost model, checked against the thresholds committed in
# bench-gate.json (tail latency, PM traffic per op, load-factor floor).
# Fails the build when a tracked metric regresses past them; update the
# thresholds in the same PR as an intentional perf change. The always-on
# observability layer (registry counters + flight recorder) runs inside the
# gated cells, so passing on unchanged thresholds doubles as the proof that
# instrumentation overhead stays in the noise.
bench-gate:
	$(GO) run ./cmd/benchgate -config bench-gate.json

# bench is the real measurement matrix (core mix suite plus the
# variable-length mixes × 1..8 threads under the full Optane cost model,
# plus the service-tier suite: every client simulation at 4 shards ×
# batch 16 against its 1×1 baseline) and writes the trajectory file
# BENCH_pr9.json, recovery timings included.
bench:
	$(GO) run ./cmd/dashbench -threads 8 -ops 100000 -keyspace 100000 \
		-mix var-insert,var-read,var-ycsb-b -recovery \
		-shards 4 -batch 16 -out BENCH_pr9.json

# ci is the gate every change must pass: vet, build, the full test suite
# under the race detector (the concurrency tests rely on it), the docs
# lint, the benchmark pipeline smoke, and the perf-regression gate.
ci: fmt-check vet build race docs-check bench-smoke bench-gate
