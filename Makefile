GO ?= go

.PHONY: all vet build test race ci fmt-check

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci is the gate every change must pass: vet, build, and the full test
# suite under the race detector (the concurrency tests rely on it).
ci: fmt-check vet build race
