package core
