// Package core implements the Dash extendible hash table for persistent
// memory (Dash-EH, §4 of "Dash: Scalable Hashing on Persistent Memory",
// VLDB 2020) as a stack of four layers, each in its own file with a narrow
// interface onto the one below:
//
//	table.go     — public Insert/Get/Delete/Update (uint64) and
//	               InsertB/GetB/DeleteB/UpdateB ([]byte) APIs — two views of
//	               one keyspace; optimistic lock-free readers guarded by
//	               epoch.Manager, writers taking bucket version locks; split
//	               orchestration and crash recovery.
//	record.go    — the slot-word contract: a bucket slot holds either an
//	               inline 8B/8B record or a packed pointer (blob address |
//	               key-length class, full key hash) into the pmem.VarLog,
//	               discriminated by one bit; all routing reads record words
//	               only, so resizes never touch blob bytes.
//	directory.go — extendible-hashing directory: global depth + 2^depth
//	               segment pointers indexed by the hash's MSBs, doubled via
//	               an atomic root-pointer flip. The PM block is the
//	               crash-consistent source of truth only; hot-path routing
//	               goes through dircache.go.
//	dircache.go  — DRAM-resident mirror of the directory (global depth,
//	               segment addresses, local depths), consulted first by
//	               every operation, kept fresh by write-through from splits
//	               and doublings, validated against PM before any miss is
//	               trusted, and rebuilt in O(directory) on Open.
//	segfilter.go — the same selective-persistence pattern one layer down:
//	               a DRAM mirror per segment (bucket bitmaps, fingerprints
//	               and record words under a shadow seqlock) that serves
//	               read probes without touching PM buckets at all, written
//	               through by every locked mutator, self-checked against
//	               PM on a hash sample, healed in place, and rebuilt from
//	               the reconciled image on Open.
//	segment.go   — fixed arrays of 64 normal + 2 stash buckets; balanced
//	               insert across a bucket pair, displacement into neighbors,
//	               stash overflow with fingerprint tracking metadata.
//	bucket.go    — 256-byte cacheline-aligned buckets of 14 records with
//	               one-byte fingerprints probed before any key dereference,
//	               a seqlock version word, and a bitmap commit point.
//	stats.go     — lock-free TableStats snapshot (shape, load factor, stash
//	               pressure, directory-cache hit rates) for benchmarks and
//	               monitoring.
//	obs.go       — the observability wiring: every table owns an
//	               obs.Registry naming its meters (dircache.*, segfilter.*,
//	               split.*, epoch.*, varlog.*, recovery.*, pmem.*) and an
//	               always-on obs.Flight recording op completions with their
//	               serving path, split lifecycle transitions, heals, epoch
//	               advances and recovery phases; Metrics()/TraceSnapshot()
//	               expose both, and obs.Serve puts them on HTTP.
//
// Everything persistent is addressed by pmem.Pool offsets, so the whole
// structure survives pmem's simulated power loss (Pool.Crash) and reopens
// from the durable media image via Open; the directory cache and the
// per-segment filter mirrors are the deliberately DRAM-only pieces,
// reconstructible state kept out of the persistence domain (Dash's
// selective-persistence principle). The hash-bit contract shared by all
// layers —
// fingerprint from the low byte, bucket index from the next bits, directory
// index from the MSBs — lives in hashfn.Parts.
//
// The exported entry points are Create (format a pool), Open (recover a
// crashed or cleanly closed image) and New (pool + table in one call), all
// returning the public *Table.
package core
