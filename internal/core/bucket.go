package core

import (
	"math/bits"
	"runtime"

	"dash/internal/pmem"
)

// Bucket layer (§4.1–4.2). A bucket is one 256-byte PM block: a 32-byte
// header followed by 14 fixed-size records. The header packs everything a
// probe needs — version lock, allocation bitmap, per-slot fingerprints and
// the overflow ("stash") tracking metadata — into four 8-byte words so that
// every shared field is read and written with aligned atomic u64 accesses.
// That keeps optimistic lock-free readers within the Go memory model (and
// clean under -race) while preserving the paper's layout goals: the header
// lives in the bucket's first cacheline, so a negative probe costs one PM
// read, and the bitmap word is the single atomic commit point for inserts.
//
//	word 0 (off  0): version lock — seqlock counter, odd = write-locked
//	word 1 (off  8): bits 0..13  allocation bitmap (slot in use)
//	                 bits 16..19 overflow-slot bitmap
//	                 bits 24..31 overflow count (untracked stash spills)
//	                 bits 32..63 overflow fingerprints [4]uint8
//	word 2 (off 16): fingerprints of slots 0..7
//	word 3 (off 24): bytes 0..5 fingerprints of slots 8..13
//	                 byte 6: overflow stash indexes, 2 bits per overflow slot
//	records (off 32): 14 × 16-byte records, each either an inline 8B/8B KV
//	                 or an indirect (log blob address | key-length class,
//	                 full key hash) pair — see record.go
//
// The two record words are still stored value-word-first and probed
// fingerprint-first whatever the representation; word 0's bit 63
// discriminates inline from indirect, and every publish/commit path below
// is representation-blind.
const (
	bucketSize     = 256
	slotsPerBucket = 14

	bkOffVersion = 0
	bkOffMeta    = 8
	bkOffFPLo    = 16
	bkOffFPHi    = 24
	bkOffRecords = 32

	// maxOvSlots is how many stash spills a bucket tracks precisely by
	// fingerprint; further spills only bump the overflow count and force a
	// full stash scan on lookup (§4.2).
	maxOvSlots = 4

	slotMask = (1 << slotsPerBucket) - 1
)

// --- pure bit helpers on the packed header words (unit-testable) ---

func metaSlotUsed(m uint64, slot int) bool { return m&(1<<uint(slot)) != 0 }
func metaSetSlot(m uint64, slot int) uint64 {
	return m | 1<<uint(slot)
}
func metaClearSlot(m uint64, slot int) uint64 { return m &^ (1 << uint(slot)) }
func metaFreeSlots(m uint64) int {
	return slotsPerBucket - bits.OnesCount64(m&slotMask)
}
func metaFirstFree(m uint64) int {
	free := ^m & slotMask
	if free == 0 {
		return -1
	}
	return bits.TrailingZeros64(free)
}

func metaOvSlotUsed(m uint64, i int) bool { return m&(1<<uint(16+i)) != 0 }
func metaOvFP(m uint64, i int) uint8      { return uint8(m >> uint(32+8*i)) }
func metaSetOvFP(m uint64, i int, fp uint8) uint64 {
	m |= 1 << uint(16+i)
	m &^= 0xFF << uint(32+8*i)
	return m | uint64(fp)<<uint(32+8*i)
}
func metaClearOvFP(m uint64, i int) uint64 {
	return m &^ (1<<uint(16+i) | 0xFF<<uint(32+8*i))
}
func metaOvCount(m uint64) uint64 { return (m >> 24) & 0xFF }
func metaAddOvCount(m uint64, delta int) uint64 {
	c := metaOvCount(m)
	if delta > 0 {
		if c < 0xFF {
			c++
		}
	} else if c > 0 {
		c--
	}
	return m&^(0xFF<<24) | c<<24
}

func fpGet(lo, hi uint64, slot int) uint8 {
	if slot < 8 {
		return uint8(lo >> uint(8*slot))
	}
	return uint8(hi >> uint(8*(slot-8)))
}
func fpSet(lo, hi uint64, slot int, fp uint8) (uint64, uint64) {
	if slot < 8 {
		lo = lo&^(0xFF<<uint(8*slot)) | uint64(fp)<<uint(8*slot)
		return lo, hi
	}
	sh := uint(8 * (slot - 8))
	hi = hi&^(0xFF<<sh) | uint64(fp)<<sh
	return lo, hi
}

func ovIdxGet(hi uint64, i int) int { return int(hi>>uint(48+2*i)) & 3 }
func ovIdxSet(hi uint64, i, idx int) uint64 {
	sh := uint(48 + 2*i)
	return hi&^(3<<sh) | uint64(idx&3)<<sh
}

func recordAddr(b pmem.Addr, slot int) pmem.Addr {
	return b.Add(uint64(bkOffRecords + pmem.RecordSize*slot))
}

// --- version lock (seqlock: even = free, odd = write-locked) ---
//
// Every lock/unlock pair also bumps the bucket's shadow version in the
// segment's DRAM mirror (segfilter.go) when one is attached: odd on
// acquisition, even again on release. All mirror write-through happens
// inside that odd window, so a mirror reader that observes a stable even
// shadow version holds a snapshot consistent with PM — the exact contract
// bucketSearchOpt has with the PM version word. mir is nil on the paths
// that run without a mirror (recovery, and mirror repair's own fill).
// bi is the bucket's index within its segment, the mirror's coordinate.

func lockBucket(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int) {
	va := b.Add(bkOffVersion)
	for {
		v := p.QuietLoadU64(va)
		if v&1 == 0 && p.CompareAndSwapU64(va, v, v+1) {
			if mir != nil {
				mir.word(bi, mirBkVersion).Add(1)
			}
			return
		}
		runtime.Gosched()
	}
}

func tryLockBucket(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int) bool {
	va := b.Add(bkOffVersion)
	v := p.QuietLoadU64(va)
	if v&1 == 0 && p.CompareAndSwapU64(va, v, v+1) {
		if mir != nil {
			mir.word(bi, mirBkVersion).Add(1)
		}
		return true
	}
	return false
}

// unlockBucket releases the lock and advances the version so that any
// optimistic reader whose scan overlapped the critical section retries. The
// lock word is deliberately never flushed: it is DRAM-meaning state that
// recovery resets wholesale after a crash. The store is quiet: the
// acquisition CAS charged the header line, which stays cache-hot for the
// whole critical section (write-side one-charge-per-line). The shadow
// version goes even first: once the PM version admits readers the mirror
// must already be readable.
func unlockBucket(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int) {
	if mir != nil {
		mir.word(bi, mirBkVersion).Add(1)
	}
	va := b.Add(bkOffVersion)
	p.QuietStoreU64(va, p.QuietLoadU64(va)+1)
}

// --- writer-side operations; the caller holds the bucket's lock ---
//
// Header words (meta, fingerprints) are accessed quietly throughout this
// section, reads and writes alike: the caller's lock acquisition CAS'd the
// version word, paying for the header cacheline once, and the line stays
// cache-hot until the unlock — real hardware absorbs the remaining header
// accesses and writes the line back once (one-charge-per-line; see
// pmem/quiet.go). Each record's first store still pays for its record
// line, as does every record-line dereference, and all flush/fence charges
// are untouched, so per-op media traffic remains honestly counted.
// (Recovery also calls some of these without holding locks; it is
// single-threaded and unbenchmarked, so the accounting shortfall there is
// irrelevant.)

// bucketFindLocked probes fingerprint-first: only slots whose one-byte
// fingerprint matches are dereferenced, bounding PM reads per probe (§4.1).
// The record comparison is representation-agnostic (record.go): inline
// slots compare the key word, indirect slots compare the stored full hash
// and then the log blob.
func bucketFindLocked(p *pmem.Pool, vl *pmem.VarLog, b pmem.Addr, pk *probeKey) int {
	m := p.QuietLoadU64(b.Add(bkOffMeta))
	lo := p.QuietLoadU64(b.Add(bkOffFPLo))
	hi := p.QuietLoadU64(b.Add(bkOffFPHi))
	for slot := 0; slot < slotsPerBucket; slot++ {
		if !metaSlotUsed(m, slot) || fpGet(lo, hi, slot) != pk.parts.FP {
			continue
		}
		if _, ok := recProbe(p, vl, recordAddr(b, slot), pk); ok {
			return slot
		}
	}
	return -1
}

func bucketFreeSlots(p *pmem.Pool, b pmem.Addr) int {
	return metaFreeSlots(p.QuietLoadU64(b.Add(bkOffMeta)))
}

// bucketInsertLocked writes the record, persists it, and only then publishes
// it by setting fingerprint and bitmap and persisting the header word. The
// single atomic bitmap store is the commit point: a crash before the header
// line is flushed leaves the slot invisible, a crash after leaves the whole
// record durable (§4.1 insert ordering).
//
// persist=false skips both persists: the mode for building an *unpublished*
// split sibling, whose durability comes from one whole-segment flush+fence
// right before the directory publishes it — a crash before that point rolls
// the whole sibling back, so nothing written into it needs individual
// ordering.
// All mutators below write through to the segment mirror (mir, nil-able)
// after mutating PM; the caller's lock holds the bucket's shadow version
// odd, so the store order within the window is immaterial.
func bucketInsertLocked(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int, fp uint8, kv pmem.KV, persist bool) bool {
	m := p.QuietLoadU64(b.Add(bkOffMeta))
	slot := metaFirstFree(m)
	if slot < 0 {
		return false
	}
	ra := recordAddr(b, slot)
	// Value first, then key (a torn observation under a stale version never
	// pairs the new key with the old value); the first store pays for the
	// record's cacheline, the second shares it (records are 16-aligned and
	// never straddle a line). In persist=false mode — building an
	// unpublished split sibling — even the first store is quiet: the
	// sibling's lines are charged wholesale by the publish's one
	// flush+fence per line, which is also when they actually reach media.
	if persist {
		p.StoreU64(ra.Add(8), kv.Value)
	} else {
		p.QuietStoreU64(ra.Add(8), kv.Value)
	}
	p.QuietStoreU64(ra, kv.Key)
	if persist {
		p.PersistKV(ra)
	}
	lo := p.QuietLoadU64(b.Add(bkOffFPLo))
	hi := p.QuietLoadU64(b.Add(bkOffFPHi))
	lo, hi = fpSet(lo, hi, slot, fp)
	p.QuietStoreU64(b.Add(bkOffFPLo), lo)
	p.QuietStoreU64(b.Add(bkOffFPHi), hi)
	p.QuietStoreU64(b.Add(bkOffMeta), metaSetSlot(m, slot))
	// Meta and fingerprint words share the bucket's first cacheline, so one
	// flush makes the publish atomic at crash granularity.
	if persist {
		p.Persist(b.Add(bkOffMeta), 24)
	}
	if mir != nil {
		mir.recWord(bi, slot, 1).Store(kv.Value)
		mir.recWord(bi, slot, 0).Store(kv.Key)
		mir.word(bi, mirBkFPLo).Store(lo)
		mir.word(bi, mirBkFPHi).Store(hi)
		mir.word(bi, mirBkMeta).Store(metaSetSlot(m, slot))
	}
	return true
}

// bucketDeleteLocked unpublishes a slot. Clearing the bitmap bit is the
// whole operation; the record bytes and fingerprint become dead.
// persist=false is for unpublished split siblings (see bucketInsertLocked).
func bucketDeleteLocked(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int, slot int, persist bool) {
	m := p.QuietLoadU64(b.Add(bkOffMeta))
	p.QuietStoreU64(b.Add(bkOffMeta), metaClearSlot(m, slot))
	if persist {
		p.Persist(b.Add(bkOffMeta), 8)
	}
	if mir != nil {
		mir.word(bi, mirBkMeta).Store(metaClearSlot(m, slot))
	}
}

// bucketTrackOverflow records in the home bucket that one of its keys went
// to stash bucket stashIdx: precisely (fingerprint + stash index) while a
// tracking slot is free, otherwise by bumping the overflow count.
// persist=false is for unpublished split siblings (see bucketInsertLocked).
func bucketTrackOverflow(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int, fp uint8, stashIdx int, persist bool) {
	m := p.QuietLoadU64(b.Add(bkOffMeta))
	for i := 0; i < maxOvSlots; i++ {
		if metaOvSlotUsed(m, i) {
			continue
		}
		hi := p.QuietLoadU64(b.Add(bkOffFPHi))
		p.QuietStoreU64(b.Add(bkOffFPHi), ovIdxSet(hi, i, stashIdx))
		p.QuietStoreU64(b.Add(bkOffMeta), metaSetOvFP(m, i, fp))
		if persist {
			p.Persist(b.Add(bkOffMeta), 24)
		}
		if mir != nil {
			mir.word(bi, mirBkFPHi).Store(ovIdxSet(hi, i, stashIdx))
			mir.word(bi, mirBkMeta).Store(metaSetOvFP(m, i, fp))
		}
		return
	}
	p.QuietStoreU64(b.Add(bkOffMeta), metaAddOvCount(m, +1))
	if persist {
		p.Persist(b.Add(bkOffMeta), 8)
	}
	if mir != nil {
		mir.word(bi, mirBkMeta).Store(metaAddOvCount(m, +1))
	}
}

// bucketUntrackOverflow undoes bucketTrackOverflow for a record leaving the
// stash: trackedSlot names the tracking slot when the record was tracked,
// or -1 when it was only counted.
// persist=false is for unpublished split siblings (see bucketInsertLocked).
func bucketUntrackOverflow(p *pmem.Pool, mir *segMirror, b pmem.Addr, bi int, trackedSlot int, persist bool) {
	m := p.QuietLoadU64(b.Add(bkOffMeta))
	nm := metaAddOvCount(m, -1)
	if trackedSlot >= 0 {
		nm = metaClearOvFP(m, trackedSlot)
	}
	p.QuietStoreU64(b.Add(bkOffMeta), nm)
	if persist {
		p.Persist(b.Add(bkOffMeta), 8)
	}
	if mir != nil {
		mir.word(bi, mirBkMeta).Store(nm)
	}
}

// metaFindTracked is the pure form of findTrackedSlot: the tracking slot in
// the given header words matching (fingerprint, stash index), or -1.
func metaFindTracked(m, hi uint64, fp uint8, stashIdx int) int {
	for i := 0; i < maxOvSlots; i++ {
		if metaOvSlotUsed(m, i) && metaOvFP(m, i) == fp && ovIdxGet(hi, i) == stashIdx {
			return i
		}
	}
	return -1
}

// findTrackedSlot returns the home bucket's tracking slot matching
// (fingerprint, stash index), or -1.
func findTrackedSlot(p *pmem.Pool, b pmem.Addr, fp uint8, stashIdx int) int {
	m := p.QuietLoadU64(b.Add(bkOffMeta))
	hi := p.QuietLoadU64(b.Add(bkOffFPHi))
	return metaFindTracked(m, hi, fp, stashIdx)
}

// --- reader-side operation: optimistic, lock-free ---

// bucketSearchOpt scans one bucket without taking its lock. It loops until a
// scan completes under an unchanged even version (seqlock read), so the
// returned record words — and the header words handed back for
// overflow-probing decisions — form a consistent snapshot. A matched
// indirect record's blob may be dereferenced during the scan and again by
// the caller: blob bytes are immutable from commit until epoch reclamation,
// and the caller holds an epoch guard, so the bytes cannot change or be
// reused underneath either read; a match found through a slot that mutated
// mid-scan is discarded by the version recheck like any other stale read.
//
// Accounting follows the one-charge-per-line discipline: the version load
// pays for the header cacheline, so the meta/fingerprint words sharing that
// line are read quietly — a probe is charged one header line plus one line
// per fingerprint-matched record it dereferences (plus the blob read on a
// full-hash match).
func bucketSearchOpt(p *pmem.Pool, vl *pmem.VarLog, b pmem.Addr, pk *probeKey) (kv pmem.KV, found bool, m, hi uint64) {
	va := b.Add(bkOffVersion)
	for {
		v := p.LoadU64(va)
		if v&1 != 0 {
			runtime.Gosched()
			continue
		}
		m = p.QuietLoadU64(b.Add(bkOffMeta))
		lo := p.QuietLoadU64(b.Add(bkOffFPLo))
		hi = p.QuietLoadU64(b.Add(bkOffFPHi))
		kv, found = pmem.KV{}, false
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) || fpGet(lo, hi, slot) != pk.parts.FP {
				continue
			}
			if r, ok := recProbe(p, vl, recordAddr(b, slot), pk); ok {
				kv, found = r, true
				break
			}
		}
		if p.QuietLoadU64(va) == v {
			return
		}
	}
}
