package core

import (
	"testing"

	"dash/internal/pmem"
)

// crashNow is the sentinel panic a crash hook throws after simulating power
// loss, unwinding out of the in-flight operation.
type crashNow struct{}

// insertUntilCrash feeds keys to tbl until a hook fires pool.Crash and
// panics, returning the keys whose Insert was acknowledged (returned nil
// before the crash) and whether the crash happened.
func insertUntilCrash(t *testing.T, tbl *Table, start, max uint64, acked map[uint64]uint64) (crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashNow); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	for k := start; k < start+max; k++ {
		if err := tbl.Insert(k, k*3+1); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		acked[k] = k*3 + 1
	}
	return false
}

// verifyCrashRecovery reopens the crashed pool image and checks the
// acceptance contract: every acknowledged insert is readable with its value,
// and the table accepts (and serves) new inserts.
func verifyCrashRecovery(t *testing.T, pool *pmem.Pool, acked map[uint64]uint64) {
	t.Helper()
	tbl, err := Open(pool)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	for k, want := range acked {
		v, ok := tbl.Get(k)
		if !ok {
			t.Fatalf("acknowledged key %d lost after crash", k)
		}
		if v != want {
			t.Fatalf("key %d = %d after crash, want %d", k, v, want)
		}
	}
	if got, want := tbl.Count(), int64(len(acked)); got != want {
		t.Fatalf("recovered count = %d, want %d", got, want)
	}
	// The recovered table must keep functioning, including further splits.
	const more = 3000
	base := uint64(1 << 40)
	for k := base; k < base+more; k++ {
		if err := tbl.Insert(k, k); err != nil {
			t.Fatalf("post-recovery insert %d: %v", k, err)
		}
	}
	for k := base; k < base+more; k++ {
		if v, ok := tbl.Get(k); !ok || v != k {
			t.Fatalf("post-recovery Get(%d) = %d,%v", k, v, ok)
		}
	}
	tbl.Close()
}

// crashAtHook builds a crash-tracked table and arms one of the split hooks
// to simulate power loss the nth time it fires.
func crashAtHook(t *testing.T, arm func(tbl *Table, pool *pmem.Pool, fire func())) (*pmem.Pool, map[uint64]uint64) {
	t.Helper()
	pool, err := pmem.NewPool(pmem.Options{Size: 16 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	fire := func() {
		pool.Crash()
		panic(crashNow{})
	}
	arm(tbl, pool, fire)
	acked := make(map[uint64]uint64)
	if !insertUntilCrash(t, tbl, 0, 1<<20, acked) {
		t.Fatal("workload finished without triggering the crash hook")
	}
	if len(acked) == 0 {
		t.Fatal("crashed before any insert was acknowledged")
	}
	return pool, acked
}

// TestCrashBeforePublish: power loss after the new segment is fully
// persisted but before any directory entry points at it. The new segment
// must be rolled back to a leak; the old segment still holds everything.
func TestCrashBeforePublish(t *testing.T) {
	pool, acked := crashAtHook(t, func(tbl *Table, _ *pmem.Pool, fire func()) {
		tbl.hookAfterSegPersist = fire
	})
	verifyCrashRecovery(t, pool, acked)
}

// TestCrashAfterPublish: power loss after the directory entries point at the
// new segment but before the old segment's depth bump and record sweep.
// Recovery must fix the old segment's stale metadata and drop the moved
// records' leftover copies.
func TestCrashAfterPublish(t *testing.T) {
	pool, acked := crashAtHook(t, func(tbl *Table, _ *pmem.Pool, fire func()) {
		tbl.hookAfterPublish = fire
	})
	verifyCrashRecovery(t, pool, acked)
}

// TestCrashMidPublish: power loss after the first flipped directory entry of
// a multi-entry publish range — the half-flipped state where part of the
// directory routes to the new segment and part still routes to the old one.
// Requires a segment whose local depth lags the global depth by ≥ 2, built
// by skewing inserts onto one hash prefix first.
func TestCrashMidPublish(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 32 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[uint64]uint64)

	// Phase 1: grow the directory by splitting only prefix-0 segments until
	// global depth ≥ 3, leaving the prefix-1 segment at local depth 1 with a
	// 4-entry coverage (publish range of 2 entries).
	for k := uint64(0); tbl.GlobalDepth() < 3; k++ {
		if tbl.parts(k).DirIndex(1) != 0 {
			continue
		}
		if err := tbl.Insert(k, k*3+1); err != nil {
			t.Fatalf("skew insert %d: %v", k, err)
		}
		acked[k] = k*3 + 1
	}

	// Phase 2: arm the mid-publish hook and fill the lagging prefix-1
	// segment until it splits with a multi-entry flip.
	fired := false
	tbl.hookMidPublish = func() {
		fired = true
		pool.Crash()
		panic(crashNow{})
	}
	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashNow); !ok {
					panic(r)
				}
				c = true
			}
		}()
		for k := uint64(0); k < 1<<22; k++ {
			if tbl.parts(k).DirIndex(1) != 1 {
				continue
			}
			if err := tbl.Insert(k, k*3+1); err != nil {
				t.Fatalf("fill insert %d: %v", k, err)
			}
			acked[k] = k*3 + 1
		}
		return false
	}()
	if !crashed || !fired {
		t.Fatal("workload did not crash mid-publish")
	}
	verifyCrashRecovery(t, pool, acked)
}
