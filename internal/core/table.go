package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"dash/internal/epoch"
	"dash/internal/hashfn"
	"dash/internal/pmem"
)

// Table layer (§4.4–4.6): the public Insert/Get/Delete/Update API, the
// locking protocol tying the layers together, segment-split orchestration
// with a crash-consistent three-step publish, and post-crash recovery.
//
// Concurrency protocol:
//   - Every operation routes key → segment through the DRAM directory cache
//     (dircache.go); the PM directory is consulted only to validate a route
//     or repair a stale one. Every operation runs inside an epoch guard so a
//     retired directory block is never recycled under a reader still
//     traversing it.
//   - Readers are optimistic and lock-free: scan buckets under seqlock
//     version validation, and revalidate the route against the PM directory
//     before concluding "not found". A seqlock-stable positive hit needs no
//     revalidation (see dircache.go).
//   - Writers lock only the key's two candidate buckets (plus stash /
//     displacement buckets, in a fixed deadlock-free order), then revalidate
//     the route and the segment's pattern before mutating.
//   - Structural changes (segment split, directory doubling) serialize on
//     one table-wide mutex and take every bucket lock of the splitting
//     segment, excluding writers; readers are invalidated by the version
//     bumps when the locks release. Both update the directory cache before
//     those locks release, so a cached route is stale only while the
//     structural change is in flight.

// Root block layout, at the first usable cacheline of the pool.
const (
	rootAddr = pmem.Addr(pmem.CachelineSize)

	rootOffMagic    = 0
	rootOffFormat   = 8
	rootOffSeed     = 16
	rootOffDir      = 24 // atomic: current directory block
	rootOffAllocNxt = 32 // atomic: bump-allocator frontier

	tableMagic  = 0x44617368454831 // "DashEH1"
	tableFormat = 1
	allocStart  = 256 // first allocatable offset; keeps blocks 256-aligned
	allocAlign  = 256
)

var (
	// ErrKeyExists is returned by Insert when the key is already present.
	ErrKeyExists = errors.New("core: key already exists")
	// ErrPoolFull is returned when the PM pool cannot fit a new allocation.
	ErrPoolFull = errors.New("core: pmem pool exhausted")
	// ErrNotATable is returned by Open when the pool holds no table image.
	ErrNotATable = errors.New("core: pool does not contain a dash table")
	// ErrSegmentOverflow reports the pathological case that a splitting
	// segment's keys all land on one side and overflow the new half.
	ErrSegmentOverflow = errors.New("core: segment overflow during split")
)

// Options configures Create.
type Options struct {
	// InitialDepth is the starting global depth (2^depth segments).
	// Defaults to 1.
	InitialDepth uint8
	// Seed seeds the hash function. Defaults to hashfn.DefaultSeed.
	Seed uint64
}

// Table is a Dash extendible hash table living in a pmem.Pool.
type Table struct {
	pool *pmem.Pool
	em   *epoch.Manager
	seed uint64

	// cache is the DRAM-resident mirror of the PM directory (dircache.go),
	// the first stop of every operation's key → segment routing.
	cache dirCache

	// splitMu serializes structural changes: segment splits and the
	// directory doublings they trigger.
	splitMu sync.Mutex

	// DRAM free list of retired PM blocks (old directories), refilled via
	// epoch reclamation and consumed by alloc.
	freeMu   sync.Mutex
	freeList []freeSpan

	count atomic.Int64

	// Test hooks fired inside split; used by crash-consistency tests to
	// simulate power loss at the protocol's interesting points.
	hookAfterSegPersist func()
	hookMidPublish      func()
	hookAfterPublish    func()
}

type freeSpan struct {
	addr pmem.Addr
	size uint64
}

// Create formats pool with an empty table and returns it.
func Create(pool *pmem.Pool, opt Options) (*Table, error) {
	if opt.Seed == 0 {
		opt.Seed = hashfn.DefaultSeed
	}
	if opt.InitialDepth == 0 {
		opt.InitialDepth = 1
	}
	p := pool
	t := &Table{pool: p, em: epoch.NewManager(), seed: opt.Seed}

	p.WriteU64(rootAddr.Add(rootOffMagic), 0) // not a table until fully formatted
	p.WriteU64(rootAddr.Add(rootOffFormat), tableFormat)
	p.WriteU64(rootAddr.Add(rootOffSeed), opt.Seed)
	p.StoreU64(rootAddr.Add(rootOffAllocNxt), allocStart)
	p.Persist(rootAddr, pmem.CachelineSize)

	nseg := 1 << opt.InitialDepth
	segs := make([]pmem.Addr, nseg)
	for i := range segs {
		seg, err := t.alloc(segmentSize)
		if err != nil {
			return nil, err
		}
		segInit(p, seg, opt.InitialDepth, uint64(i))
		segPersist(p, seg)
		segs[i] = seg
	}
	dir, err := t.alloc(dirSize(opt.InitialDepth))
	if err != nil {
		return nil, err
	}
	dirInitFresh(p, dir, opt.InitialDepth, segs)
	p.StoreU64(rootAddr.Add(rootOffDir), uint64(dir))
	// Magic last: its persist is the commit point of formatting.
	p.WriteU64(rootAddr.Add(rootOffMagic), tableMagic)
	p.Persist(rootAddr, pmem.CachelineSize)
	t.cacheRebuild()
	return t, nil
}

// Open revives the table stored in pool — typically the media image left by
// a crash — running recovery: directory/segment metadata reconciliation,
// lock-word reset, and removal of the duplicate or ghost records an
// interrupted split, displacement or stash insert may have left behind.
func Open(pool *pmem.Pool) (*Table, error) {
	p := pool
	if p.ReadU64(rootAddr.Add(rootOffMagic)) != tableMagic {
		return nil, ErrNotATable
	}
	if f := p.ReadU64(rootAddr.Add(rootOffFormat)); f != tableFormat {
		return nil, fmt.Errorf("core: unsupported table format %d (want %d)", f, tableFormat)
	}
	t := &Table{
		pool: p,
		em:   epoch.NewManager(),
		seed: p.ReadU64(rootAddr.Add(rootOffSeed)),
	}
	if err := t.recover(); err != nil {
		return nil, err
	}
	return t, nil
}

// New is a convenience constructor: it builds a private pool of poolSize
// bytes and formats a table in it.
func New(poolSize uint64, opt Options) (*Table, error) {
	pool, err := pmem.NewPool(pmem.Options{Size: poolSize})
	if err != nil {
		return nil, err
	}
	return Create(pool, opt)
}

// Pool returns the underlying persistent-memory pool.
func (t *Table) Pool() *pmem.Pool { return t.pool }

// Count returns the number of live records.
func (t *Table) Count() int64 { return t.count.Load() }

// GlobalDepth returns the directory's current global depth, read from the
// DRAM directory cache (exact: doublings swap the cached view before the
// split that triggered them publishes anything).
func (t *Table) GlobalDepth() uint8 {
	return t.cache.view.Load().depth
}

// Close drains the epoch manager. The pool remains usable and reopenable.
func (t *Table) Close() { t.em.Drain() }

// alloc carves size bytes (256-aligned) out of the pool, reusing retired
// blocks when one fits. The bump frontier is persisted immediately after the
// CAS: a crash can at worst leak a block that was never published, never
// hand out the same published block twice.
func (t *Table) alloc(size uint64) (pmem.Addr, error) {
	size = (size + allocAlign - 1) &^ (allocAlign - 1)
	t.freeMu.Lock()
	for i, s := range t.freeList {
		if s.size >= size {
			t.freeList = append(t.freeList[:i], t.freeList[i+1:]...)
			t.freeMu.Unlock()
			return s.addr, nil
		}
	}
	t.freeMu.Unlock()
	na := rootAddr.Add(rootOffAllocNxt)
	for {
		cur := t.pool.LoadU64(na)
		next := cur + size
		if next > t.pool.Size() {
			return 0, ErrPoolFull
		}
		if t.pool.CompareAndSwapU64(na, cur, next) {
			t.pool.Persist(na, 8)
			return pmem.Addr(cur), nil
		}
	}
}

func (t *Table) freePush(a pmem.Addr, size uint64) {
	t.freeMu.Lock()
	t.freeList = append(t.freeList, freeSpan{addr: a, size: size})
	t.freeMu.Unlock()
}

func (t *Table) parts(key uint64) hashfn.Parts {
	return hashfn.Split(hashfn.HashU64(key, t.seed))
}

// resolve walks the PM directory → segment for a key under the current
// global depth: the authoritative (and charged) route, used by the split
// slow path and by validateRoute. Both loads are atomic; a torn view across
// a concurrent split is caught by the segment-pattern check.
func (t *Table) resolve(parts hashfn.Parts) (dir, seg pmem.Addr) {
	dir = pmem.Addr(t.pool.LoadU64(rootAddr.Add(rootOffDir)))
	g := dirDepth(t.pool, dir)
	seg = dirLoadEntry(t.pool, dir, parts.DirIndex(g))
	return dir, seg
}

// validateRoute checks a (typically cache-provided) route against PM truth:
// (a) the PM directory still routes the key to seg and (b) seg's own pattern
// claims the key. Writers call it after taking bucket locks; readers call it
// before trusting a negative search. The pattern check carries the
// correctness: during a split's publish window the directory entry and the
// old segment's metadata change under the segment's bucket locks, so any
// operation that got past those locks sees them reconciled.
func (t *Table) validateRoute(parts hashfn.Parts, seg pmem.Addr) bool {
	if _, cur := t.resolve(parts); cur != seg {
		return false
	}
	return segClaims(t.pool, seg, parts)
}

// Insert adds key → value. It fails with ErrKeyExists if the key is present
// and ErrPoolFull if the pool cannot grow the table any further.
func (t *Table) Insert(key, value uint64) error {
	g := t.em.Enter()
	defer g.Exit()
	p := t.pool
	parts := t.parts(key)
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	for {
		seg, _ := t.cache.route(parts)
		lockPair(p, seg, b, b2)
		if !t.validateRoute(parts, seg) {
			unlockPair(p, seg, b, b2)
			t.cache.misses.Add(1)
			t.cacheRepair(parts)
			continue
		}
		t.cache.hits.Add(1)
		if _, found := segFindLocked(p, seg, parts, key); found {
			unlockPair(p, seg, b, b2)
			return ErrKeyExists
		}
		if segInsertLocked(p, seg, parts, pmem.KV{Key: key, Value: value}, true, t.seed) {
			unlockPair(p, seg, b, b2)
			t.count.Add(1)
			return nil
		}
		unlockPair(p, seg, b, b2)
		if err := t.split(parts, seg); err != nil {
			return err
		}
	}
}

// Get returns the value stored under key. Lock-free, and on the hot path
// free of PM metadata traffic: the route comes from the DRAM directory
// cache, and a found record under a stable bucket version is immediately
// valid (segments are never reclaimed, and a key's record is physically
// present only in segments that route to it — see dircache.go). A miss is
// trusted only after the route revalidates against the PM directory; a
// stale route instead repairs the cache and retries.
func (t *Table) Get(key uint64) (uint64, bool) {
	g := t.em.Enter()
	defer g.Exit()
	p := t.pool
	parts := t.parts(key)
	for {
		seg, _ := t.cache.route(parts)
		if val, found := segSearchOpt(p, seg, parts, key); found {
			t.cache.hits.Add(1)
			return val, true
		}
		if t.validateRoute(parts, seg) {
			t.cache.hits.Add(1)
			return 0, false
		}
		t.cache.misses.Add(1)
		t.cacheRepair(parts)
	}
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	g := t.em.Enter()
	defer g.Exit()
	p := t.pool
	parts := t.parts(key)
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	for {
		seg, _ := t.cache.route(parts)
		lockPair(p, seg, b, b2)
		if !t.validateRoute(parts, seg) {
			unlockPair(p, seg, b, b2)
			t.cache.misses.Add(1)
			t.cacheRepair(parts)
			continue
		}
		t.cache.hits.Add(1)
		loc, found := segFindLocked(p, seg, parts, key)
		if found {
			segDeleteAt(p, seg, parts, loc, true)
			t.count.Add(-1)
		}
		unlockPair(p, seg, b, b2)
		return found
	}
}

// Update overwrites the value of an existing key in place, reporting whether
// the key was present. The value word is a single atomic persisted store.
func (t *Table) Update(key, value uint64) bool {
	g := t.em.Enter()
	defer g.Exit()
	p := t.pool
	parts := t.parts(key)
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	for {
		seg, _ := t.cache.route(parts)
		lockPair(p, seg, b, b2)
		if !t.validateRoute(parts, seg) {
			unlockPair(p, seg, b, b2)
			t.cache.misses.Add(1)
			t.cacheRepair(parts)
			continue
		}
		t.cache.hits.Add(1)
		loc, found := segFindLocked(p, seg, parts, key)
		if found {
			ra := recordAddr(segBucket(seg, loc.bucket), loc.slot)
			p.WriteValue(ra, value)
			p.Persist(ra.Add(8), 8)
		}
		unlockPair(p, seg, b, b2)
		return found
	}
}

// split replaces oldSeg by two segments of local depth+1, doubling the
// directory first when needed. The publish is the paper's crash-consistent
// three-step sequence: (1) allocate and fully persist the new segment
// (records copied, old copies still in place), (2) flip the upper half of
// the old segment's directory range to the new segment and persist, (3) only
// then bump the old segment's depth/pattern and sweep out the moved records.
// A crash before (2) leaks an unpublished block; a crash inside (2) or (3)
// leaves duplicates and stale metadata that Open's recovery reconciles from
// the directory image.
func (t *Table) split(parts hashfn.Parts, oldSeg pmem.Addr) error {
	t.splitMu.Lock()
	defer t.splitMu.Unlock()
	p := t.pool

	dir, seg := t.resolve(parts)
	if seg != oldSeg {
		return nil // another split already covered this key range
	}
	for i := 0; i < totalBuckets; i++ {
		lockBucket(p, segBucket(oldSeg, i))
	}
	defer func() {
		for i := 0; i < totalBuckets; i++ {
			unlockBucket(p, segBucket(oldSeg, i))
		}
	}()

	l := segDepth(p, oldSeg)
	pat := segPattern(p, oldSeg)
	g := dirDepth(p, dir)

	if l == g {
		newDir, err := t.alloc(dirSize(g + 1))
		if err != nil {
			return err
		}
		dirInitDoubled(p, newDir, dir)
		p.StoreU64(rootAddr.Add(rootOffDir), uint64(newDir))
		p.Persist(rootAddr.Add(rootOffDir), 8)
		old, oldSize := dir, dirSize(g)
		t.em.Retire(func() { t.freePush(old, oldSize) })
		dir = newDir
		g++
		t.cacheDouble(newDir)
	}

	newSeg, err := t.alloc(segmentSize)
	if err != nil {
		return err
	}
	segInit(p, newSeg, l+1, pat<<1|1)
	if !segMigrate(p, oldSeg, newSeg, l, t.seed) {
		return ErrSegmentOverflow
	}
	segPersist(p, newSeg)
	if t.hookAfterSegPersist != nil {
		t.hookAfterSegPersist()
	}

	start, span := dirCoverage(g, l, pat)
	half := span >> 1
	for i := start + half; i < start+span; i++ {
		dirStoreEntry(p, dir, i, newSeg)
		p.Persist(dirEntryAddr(dir, i), 8)
		if t.hookMidPublish != nil && i == start+half {
			t.hookMidPublish()
		}
	}
	if t.hookAfterPublish != nil {
		t.hookAfterPublish()
	}

	segSetMeta(p, oldSeg, l+1, pat<<1)
	segSweep(p, oldSeg, t.seed, func(rp hashfn.Parts, _ pmem.KV) bool {
		return rp.DepthBit(l)
	})
	// Write-through before the deferred bucket unlocks: once writers can get
	// past the locks, the cache already routes the moved half to newSeg.
	t.cachePublishSplit(oldSeg, newSeg, l+1, start, span)
	return nil
}

// recover reconciles the table image after a crash. The directory is the
// source of truth: every segment's true coverage — and from it, its local
// depth and pattern — is re-derived by letting deeper segments claim their
// canonical entry ranges first. This completes a partially published split
// (the new segment was fully durable before the first entry flip) and rolls
// an unpublished one back to a harmless leak. Afterwards, version locks are
// reset and records that an interrupted split, displacement or stash insert
// left duplicated, misrouted or unreachable are swept out.
func (t *Table) recover() error {
	p := t.pool
	dir := pmem.Addr(p.ReadU64(rootAddr.Add(rootOffDir)))
	if dir.IsNull() {
		return ErrNotATable
	}
	g := dirDepth(p, dir)
	n := uint64(1) << g

	type segInfo struct {
		addr pmem.Addr
		l    uint8
		pat  uint64
	}
	entries := make([]pmem.Addr, n)
	var segs []segInfo
	seen := make(map[pmem.Addr]bool)
	for i := uint64(0); i < n; i++ {
		e := dirLoadEntry(p, dir, i)
		entries[i] = e
		if e.IsNull() {
			return fmt.Errorf("core: recovery: null directory entry %d", i)
		}
		if !seen[e] {
			seen[e] = true
			l, pat := segDepth(p, e), segPattern(p, e)
			if l > g {
				return fmt.Errorf("core: recovery: segment %#x deeper (%d) than directory (%d)", e, l, g)
			}
			segs = append(segs, segInfo{addr: e, l: l, pat: pat})
		}
	}

	// Deepest-first claiming: a new segment (depth L+1) takes its canonical
	// half before the stale old segment (still claiming depth L) takes the
	// remainder, which completes any half-flipped publish.
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].l > segs[j].l })
	fixed := make([]pmem.Addr, n)
	for _, s := range segs {
		start, span := dirCoverage(g, s.l, s.pat)
		for i := start; i < start+span; i++ {
			if fixed[i].IsNull() {
				fixed[i] = s.addr
			}
		}
	}
	changed := false
	for i := uint64(0); i < n; i++ {
		if fixed[i].IsNull() {
			return fmt.Errorf("core: recovery: directory entry %d unclaimed", i)
		}
		if fixed[i] != entries[i] {
			dirStoreEntry(p, dir, i, fixed[i])
			changed = true
		}
	}
	if changed {
		p.Persist(dirEntryAddr(dir, 0), 8*n)
	}

	// Re-derive each segment's (depth, pattern) from its actual coverage and
	// reset every bucket's version lock. Coverage ranges are contiguous by
	// construction, so one pass over fixed collects first/count for every
	// segment.
	type cover struct{ first, count uint64 }
	covers := make(map[pmem.Addr]*cover, len(segs))
	for i := uint64(0); i < n; i++ {
		if c := covers[fixed[i]]; c != nil {
			c.count++
		} else {
			covers[fixed[i]] = &cover{first: i, count: 1}
		}
	}
	for _, s := range segs {
		first, count := uint64(0), uint64(0)
		if c := covers[s.addr]; c != nil {
			first, count = c.first, c.count
		}
		if count == 0 || count&(count-1) != 0 {
			return fmt.Errorf("core: recovery: segment %#x covers %d entries", s.addr, count)
		}
		l := g - uint8(bits.TrailingZeros64(count))
		pat := first >> (g - l)
		if l != s.l || pat != s.pat {
			segSetMeta(p, s.addr, l, pat)
		}
		for i := 0; i < totalBuckets; i++ {
			p.StoreU64(segBucket(s.addr, i).Add(bkOffVersion), 0)
		}
	}

	// Record sweeps, per segment:
	//  1. drop records the directory now routes elsewhere (interrupted split
	//     cleanup left them behind; the routed-to segment has the copy),
	//  2. deduplicate keys within the segment (interrupted displacement
	//     copies a record before deleting the original),
	//  3. drop stash ghosts no home bucket knows about (crash between stash
	//     record persist and home-metadata persist).
	total := int64(0)
	for _, s := range segs {
		seg := s.addr
		segSweep(p, seg, t.seed, func(rp hashfn.Parts, _ pmem.KV) bool {
			return fixed[rp.DirIndex(g)] != seg
		})
		t.dedupeSegment(seg)
		t.sweepStashGhosts(seg)
		total += int64(segCount(p, seg))
	}
	t.count.Store(total)
	// The PM image is reconciled; mirror it into the DRAM directory cache
	// with one O(directory) pass.
	t.cacheRebuild()
	return nil
}

// dedupeSegment removes all but the first copy of any key appearing twice in
// the segment. segSweep's scan order matches lookup order (normal buckets
// ascending, then stash), so the surviving copy is the one lookups would
// return.
func (t *Table) dedupeSegment(seg pmem.Addr) {
	seenKeys := make(map[uint64]bool)
	segSweep(t.pool, seg, t.seed, func(_ hashfn.Parts, kv pmem.KV) bool {
		if seenKeys[kv.Key] {
			return true
		}
		seenKeys[kv.Key] = true
		return false
	})
}

// sweepStashGhosts deletes stash records that no home bucket references:
// neither a tracking slot nor a positive overflow count points at them, so
// no lookup can ever see them and the slot would leak forever.
func (t *Table) sweepStashGhosts(seg pmem.Addr) {
	p := t.pool
	for j := 0; j < stashBuckets; j++ {
		sa := segBucket(seg, normalBuckets+j)
		m := p.LoadU64(sa.Add(bkOffMeta))
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			key := p.ReadKey(recordAddr(sa, slot))
			parts := t.parts(key)
			home := segBucket(seg, int(parts.BucketIndex(bucketBits)))
			if findTrackedSlot(p, home, parts.FP, j) >= 0 {
				continue
			}
			if metaOvCount(p.QuietLoadU64(home.Add(bkOffMeta))) > 0 {
				continue
			}
			bucketDeleteLocked(p, sa, slot)
		}
	}
}
