package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dash/internal/epoch"
	"dash/internal/hashfn"
	"dash/internal/obs"
	"dash/internal/pmem"
)

// Table layer (§4.4–4.6): the public Insert/Get/Delete/Update API, the
// locking protocol tying the layers together, segment-split orchestration
// with a crash-consistent three-step publish, and post-crash recovery.
//
// Concurrency protocol:
//   - Every operation routes key → segment through the DRAM directory cache
//     (dircache.go); the PM directory is consulted only to validate a route
//     or repair a stale one. Every operation runs inside an epoch guard so a
//     retired directory block is never recycled under a reader still
//     traversing it.
//   - Readers are optimistic and lock-free: scan buckets under seqlock
//     version validation, and revalidate the route against the PM directory
//     before concluding "not found". A seqlock-stable positive hit needs no
//     revalidation (see dircache.go).
//   - Writers lock only the key's two candidate buckets (plus stash /
//     displacement buckets, in a fixed deadlock-free order), then revalidate
//     the route and the segment's pattern before mutating.
//   - Segment splits are per-segment and concurrent: ownership is claimed by
//     CAS on the segment header's split-state word (which doubles as the
//     persistent split-progress marker), so splits of distinct segments
//     proceed in parallel. The owner copies records into the unpublished
//     sibling one bucket at a time under that bucket's version lock;
//     readers and writers on the other buckets proceed normally. Writers
//     that mutate the splitting segment mirror ("assist") any operation on
//     a key the sibling claims into the sibling too, so the migration front
//     needs no writer-side coordination beyond the marker check. The only
//     stop-the-world moment is the short publish step: all bucket locks are
//     taken, the fully-built sibling is persisted with one flush+fence, the
//     directory entries flip, the old segment's metadata bumps, moved
//     records are swept with one persist per bucket, and the directory
//     cache is written through — then everything unlocks.
//   - Directory doubling (and the entry flips of a publish) serialize on the
//     narrow dirMu; nothing else does. Lock order is: old-segment bucket
//     locks → sibling bucket locks → dirMu, each level acquired in
//     ascending index order (pairs sorted, displacement via trylock).

// Root block layout, at the first usable cacheline of the pool.
const (
	rootAddr = pmem.Addr(pmem.CachelineSize)

	rootOffMagic    = 0
	rootOffFormat   = 8
	rootOffSeed     = 16
	rootOffDir      = 24 // atomic: current directory block
	rootOffAllocNxt = 32 // atomic: bump-allocator frontier
	rootOffVarLog   = 40 // head of the variable-length record log's chunk chain
	rootOffClean    = 48 // cleanShutdownMagic after Close; 0 while the table is open
	rootOffCount    = 56 // record count persisted by a clean Close

	tableMagic  = 0x44617368454831 // "DashEH1"
	tableFormat = 3                // 3 = clean-shutdown marker root; 2 = indirect (varlog) records
	allocStart  = 256              // first allocatable offset; keeps blocks 256-aligned
	allocAlign  = 256

	// cleanShutdownMagic in the root's clean word certifies the image was
	// left by Close with no operation in flight: every segment reconciled,
	// every marker clear, the persisted count exact. Open consumes (clears)
	// it immediately, so a crash after reopening takes the crash path.
	cleanShutdownMagic = 0x436C65616E4F4B31 // "CleanOK1"
)

var (
	// ErrKeyExists is returned by Insert when the key is already present.
	ErrKeyExists = errors.New("core: key already exists")
	// ErrPoolFull is returned when the PM pool cannot fit a new allocation.
	ErrPoolFull = errors.New("core: pmem pool exhausted")
	// ErrNotATable is returned by Open when the pool holds no table image.
	ErrNotATable = errors.New("core: pool does not contain a dash table")
	// ErrSegmentOverflow reports the pathological case that a splitting
	// segment's keys all land on one side and overflow the new half.
	ErrSegmentOverflow = errors.New("core: segment overflow during split")
	// ErrRecordTooLarge is returned by the []byte-keyed mutators when a key
	// or value exceeds the record log's per-blob bounds
	// (pmem.MaxVarKeyLen / pmem.MaxVarValueLen) — rejected up front rather
	// than risking a log entry a chunk cannot hold.
	ErrRecordTooLarge = errors.New("core: record exceeds max blob size")
)

// Options configures Create.
type Options struct {
	// InitialDepth is the starting global depth (2^depth segments).
	// Defaults to 1.
	InitialDepth uint8
	// Seed seeds the hash function. Defaults to hashfn.DefaultSeed.
	Seed uint64
}

// Deps bundles a table's explicitly injectable runtime dependencies, so a
// multi-table embedding (the service tier's shards) wires each table's
// machinery by hand instead of relying on constructor-internal defaults.
// The persistent pieces are not here on purpose: the pool is the explicit
// first constructor argument, and the record log is persistent state
// anchored in that pool's root — its handle derives from the pool handle,
// so pool and log always travel together.
type Deps struct {
	// Epoch is the table's epoch-reclamation manager. Managers are strictly
	// per-table state (the table registers its reclamation meters on it and
	// retires its own directory blocks and log blobs through it); injecting
	// one manager into two tables is a misuse. A nil Epoch gets a fresh
	// private manager — the single-table default. Injection exists so an
	// embedding owns the manager's lifecycle and isolation: a reader stalled
	// on one shard's table pins only that shard's reclamation, never a
	// neighbor's.
	Epoch *epoch.Manager
	// NoBackgroundRecovery stops Open from spawning the background recovery
	// driver, leaving all deferred per-segment work to first touches and
	// explicit RecoverAll calls — for embeddings (and tests) that need
	// deterministic control over when recovery work happens.
	NoBackgroundRecovery bool
}

// resolveEpoch returns the injected manager or a fresh private one.
func (d Deps) resolveEpoch() *epoch.Manager {
	if d.Epoch != nil {
		return d.Epoch
	}
	return epoch.NewManager()
}

// Table is a Dash extendible hash table living in a pmem.Pool.
type Table struct {
	pool *pmem.Pool
	em   *epoch.Manager
	seed uint64

	// vlog is the PM record log holding every variable-length (and every
	// bit-63-keyed uint64) record's key/value blob; bucket slots reference
	// blobs by packed address (record.go). Freed blobs are epoch-deferred
	// like retired directory blocks so lock-free readers never dereference
	// reused bytes.
	vlog *pmem.VarLog

	// cache is the DRAM-resident mirror of the PM directory (dircache.go),
	// the first stop of every operation's key → segment routing.
	cache dirCache

	// filters is the per-segment DRAM filter mirror registry (segfilter.go),
	// the cache's counterpart one layer down: reads probe buckets in DRAM
	// and touch PM only for blob payloads. mirrorSampleMask tunes the
	// sampled mirror-vs-PM cross-check (period-1; 0 checks every
	// mirror-served read — the deterministic mode coherence tests use).
	filters          segFilters
	mirrorSampleMask uint64

	// dirMu serializes directory mutation: doubling, the entry flips of a
	// split publish, and cache repair/rebuild. Splits themselves are
	// per-segment (claimed via the segment header's split-state word) and
	// run concurrently; they touch dirMu only for their short publish.
	dirMu sync.Mutex

	// DRAM free list of retired PM blocks (old directories), refilled via
	// epoch reclamation and consumed by alloc.
	freeMu   sync.Mutex
	freeList []freeSpan

	count atomic.Int64

	// lazy is the deferred-recovery side table built by Open (lazyrec.go):
	// non-nil while any segment still awaits its first-touch recovery or the
	// background record-log sweep is unfinished. Nil on a created table and
	// after recovery completes, restoring the ungated hot path.
	lazy atomic.Pointer[lazyRecovery]

	// splits counts completed segment splits; splitStallNS accumulates the
	// wall time their exclusive publish windows (all bucket locks held,
	// including any directory doubling) stalled the segment; splitAssists
	// counts writer operations mirrored into an in-flight split's sibling.
	// The migrator probes the sibling for duplicates only when assists
	// happened, so the counter is also load-bearing (see splitMigrate).
	splits       atomic.Uint64
	splitStallNS atomic.Int64
	splitAssists atomic.Uint64

	// Observability (obs.go): reg names every meter, fr is the always-on
	// flight recorder, met the table-level histogram/phase handles. Built
	// by initObs before any operation runs.
	reg *obs.Registry
	fr  *obs.Flight
	met meters

	// Test hooks fired inside split; used by crash-consistency tests to
	// simulate power loss at the protocol's interesting points.
	hookAfterMarker     func()                          // split marker persisted, no records migrated
	hookMidMigrate      func(seg pmem.Addr, bucket int) // after each migrated bucket, outside its lock
	hookAfterSegPersist func()                          // sibling fully persisted, nothing published
	hookMidPublish      func()                          // first directory entry of a multi-entry flip persisted
	hookAfterPublish    func()                          // all entries flipped, old-segment meta/sweep pending
	hookMidSweep        func()                          // first swept bucket persisted, rest pending

	// Varlog crash hooks, the record-log counterparts: after a blob's
	// bytes persist but before its commit word, after commit but before
	// any slot references it, and mid-copy-on-write-update (new blob
	// committed, slot word not yet flipped).
	hookVarAppended  func()
	hookVarCommitted func()
	hookVarMidUpdate func()
}

type freeSpan struct {
	addr pmem.Addr
	size uint64
}

// Create formats pool with an empty table and returns it, with default
// dependencies (a private epoch manager). Multi-table embeddings that wire
// dependencies explicitly use CreateWith.
func Create(pool *pmem.Pool, opt Options) (*Table, error) {
	return CreateWith(pool, Deps{}, opt)
}

// CreateWith formats pool with an empty table using explicitly injected
// dependencies; see Deps for what is injectable and why.
func CreateWith(pool *pmem.Pool, deps Deps, opt Options) (*Table, error) {
	if opt.Seed == 0 {
		opt.Seed = hashfn.DefaultSeed
	}
	if opt.InitialDepth == 0 {
		opt.InitialDepth = 1
	}
	p := pool
	t := &Table{pool: p, em: deps.resolveEpoch(), seed: opt.Seed,
		mirrorSampleMask: mirrorSamplePeriod - 1}

	p.WriteU64(rootAddr.Add(rootOffMagic), 0) // not a table until fully formatted
	p.WriteU64(rootAddr.Add(rootOffFormat), tableFormat)
	p.WriteU64(rootAddr.Add(rootOffSeed), opt.Seed)
	p.StoreU64(rootAddr.Add(rootOffAllocNxt), allocStart)
	p.WriteU64(rootAddr.Add(rootOffVarLog), 0) // record log grows lazily
	p.WriteU64(rootAddr.Add(rootOffClean), 0)  // open (not cleanly shut down)
	p.WriteU64(rootAddr.Add(rootOffCount), 0)
	p.Persist(rootAddr, pmem.CachelineSize)
	t.vlog = pmem.NewVarLog(p, rootAddr.Add(rootOffVarLog), 0, t.alloc)
	t.initObs()

	nseg := 1 << opt.InitialDepth
	segs := make([]pmem.Addr, nseg)
	for i := range segs {
		seg, err := t.alloc(segmentSize)
		if err != nil {
			return nil, err
		}
		segInit(p, seg, opt.InitialDepth, uint64(i))
		segPersist(p, seg)
		t.mirrorInstall(seg, opt.InitialDepth, uint64(i))
		segs[i] = seg
	}
	dir, err := t.alloc(dirSize(opt.InitialDepth))
	if err != nil {
		return nil, err
	}
	dirInitFresh(p, dir, opt.InitialDepth, segs)
	p.StoreU64(rootAddr.Add(rootOffDir), uint64(dir))
	// Magic last: its persist is the commit point of formatting.
	p.WriteU64(rootAddr.Add(rootOffMagic), tableMagic)
	p.Persist(rootAddr, pmem.CachelineSize)
	t.cacheRebuild()
	return t, nil
}

// Open revives the table stored in pool with O(directory) work up front
// (§4.6 instant restart): directory reconciliation, segment metadata and
// lock-word fixes, dirCache rebuild. Everything O(data) — duplicate/ghost
// sweeps, count re-derivation, filter-mirror installs — is deferred to each
// segment's first touch (lazyrec.go), and the record-log sweep runs as an
// incremental background pass. After a clean shutdown (Close persisted the
// root's clean marker) even the deferred sweeps are skipped: first touch
// only installs the segment's DRAM mirror. Call RecoverAll to force the
// deferred work to complete synchronously.
func Open(pool *pmem.Pool) (*Table, error) {
	return OpenWith(pool, Deps{})
}

// OpenWith revives the table stored in pool like Open, using explicitly
// injected dependencies; see Deps.
func OpenWith(pool *pmem.Pool, deps Deps) (*Table, error) {
	p := pool
	if p.ReadU64(rootAddr.Add(rootOffMagic)) != tableMagic {
		return nil, ErrNotATable
	}
	if f := p.ReadU64(rootAddr.Add(rootOffFormat)); f != tableFormat {
		return nil, fmt.Errorf("core: unsupported table format %d (want %d)", f, tableFormat)
	}
	t := &Table{
		pool:             p,
		em:               deps.resolveEpoch(),
		seed:             p.ReadU64(rootAddr.Add(rootOffSeed)),
		mirrorSampleMask: mirrorSamplePeriod - 1,
	}
	t.vlog = pmem.NewVarLog(p, rootAddr.Add(rootOffVarLog), 0, t.alloc)
	t.initObs()
	clean := p.ReadU64(rootAddr.Add(rootOffClean)) == cleanShutdownMagic
	// Consume the marker before anything else: from here on the image can
	// diverge from the persisted count, so a crash must take the crash path.
	p.WriteU64(rootAddr.Add(rootOffClean), 0)
	p.Persist(rootAddr.Add(rootOffClean), 8)
	if err := t.recoverLazy(clean); err != nil {
		return nil, err
	}
	if lr := t.lazy.Load(); lr != nil && !deps.NoBackgroundRecovery && !disableBackgroundRecovery.Load() {
		go t.driveRecovery(lr)
	}
	return t, nil
}

// New is a convenience constructor: it builds a private pool of poolSize
// bytes and formats a table in it.
func New(poolSize uint64, opt Options) (*Table, error) {
	pool, err := pmem.NewPool(pmem.Options{Size: poolSize})
	if err != nil {
		return nil, err
	}
	return Create(pool, opt)
}

// Pool returns the underlying persistent-memory pool.
func (t *Table) Pool() *pmem.Pool { return t.pool }

// Count returns the number of live records. While lazy recovery is still in
// flight the exact global count needs every segment's contribution, so Count
// first completes recovery synchronously (cheap after a clean shutdown: the
// count itself came from the root, but the record-log sweep still runs).
func (t *Table) Count() int64 {
	if t.lazy.Load() != nil {
		t.RecoverAll()
	}
	return t.count.Load()
}

// GlobalDepth returns the directory's current global depth, read from the
// DRAM directory cache (exact: doublings swap the cached view before the
// split that triggered them publishes anything).
func (t *Table) GlobalDepth() uint8 {
	return t.cache.view.Load().depth
}

// Close shuts the table down cleanly: completes any in-flight lazy
// recovery, drains the epoch manager, and persists the record count plus the
// clean-shutdown marker so the next Open skips all per-segment work. The
// caller must be quiescent (no operation in flight); the pool remains usable
// and reopenable, and Close itself is idempotent. Mutating the table after
// Close voids the marker's guarantee — reopen instead.
func (t *Table) Close() {
	t.RecoverAll()
	t.em.Drain()
	p := t.pool
	p.WriteU64(rootAddr.Add(rootOffCount), uint64(t.count.Load()))
	p.WriteU64(rootAddr.Add(rootOffClean), cleanShutdownMagic)
	p.Persist(rootAddr, pmem.CachelineSize)
}

// alloc carves size bytes (256-aligned) out of the pool, reusing retired
// blocks when one fits. The bump frontier is persisted immediately after the
// CAS: a crash can at worst leak a block that was never published, never
// hand out the same published block twice.
func (t *Table) alloc(size uint64) (pmem.Addr, error) {
	size = (size + allocAlign - 1) &^ (allocAlign - 1)
	t.freeMu.Lock()
	for i, s := range t.freeList {
		if s.size >= size {
			t.freeList = append(t.freeList[:i], t.freeList[i+1:]...)
			t.freeMu.Unlock()
			return s.addr, nil
		}
	}
	t.freeMu.Unlock()
	na := rootAddr.Add(rootOffAllocNxt)
	for {
		cur := t.pool.LoadU64(na)
		next := cur + size
		if next > t.pool.Size() {
			return 0, ErrPoolFull
		}
		if t.pool.CompareAndSwapU64(na, cur, next) {
			t.pool.Persist(na, 8)
			return pmem.Addr(cur), nil
		}
	}
}

func (t *Table) freePush(a pmem.Addr, size uint64) {
	t.freeMu.Lock()
	t.freeList = append(t.freeList, freeSpan{addr: a, size: size})
	t.freeMu.Unlock()
}

func (t *Table) parts(key uint64) hashfn.Parts {
	return hashfn.Split(hashfn.HashU64(key, t.seed))
}

// resolve walks the PM directory → segment for a key under the current
// global depth: the authoritative (and charged) route, used by the split
// slow path and by validateRoute. Both loads are atomic; a torn view across
// a concurrent split is caught by the segment-pattern check.
func (t *Table) resolve(parts hashfn.Parts) (dir, seg pmem.Addr) {
	dir = pmem.Addr(t.pool.LoadU64(rootAddr.Add(rootOffDir)))
	g := dirDepth(t.pool, dir)
	seg = dirLoadEntry(t.pool, dir, parts.DirIndex(g))
	return dir, seg
}

// validateRoute checks a (typically cache-provided) route against PM truth:
// (a) the PM directory still routes the key to seg and (b) seg's own pattern
// claims the key. Writers call it after taking bucket locks; readers call it
// before trusting a negative search. The pattern check carries the
// correctness: during a split's publish window the directory entry and the
// old segment's metadata change under the segment's bucket locks, so any
// operation that got past those locks sees them reconciled.
func (t *Table) validateRoute(parts hashfn.Parts, seg pmem.Addr) bool {
	if _, cur := t.resolve(parts); cur != seg {
		return false
	}
	return segClaims(t.pool, seg, parts)
}

// Insert adds key → value. It fails with ErrKeyExists if the key is present
// and ErrPoolFull if the pool cannot grow the table any further. Keys with
// bit 63 clear are stored inline (the original fixed-record fast path);
// bit-63 keys cannot use the inline format (its discriminator bit) and
// route through the record log as 8-byte blobs.
func (t *Table) Insert(key, value uint64) error {
	g := t.em.Enter()
	defer g.Exit()
	start := obs.Now()
	pk := t.probeU64(key)
	var err error
	if key&recIndirectBit != 0 {
		var kb, vb [8]byte
		binary.LittleEndian.PutUint64(kb[:], key)
		binary.LittleEndian.PutUint64(vb[:], value)
		err = t.insertIndirect(&pk, kb[:], vb[:])
	} else {
		err = t.insertKV(&pk, pmem.KV{Key: key, Value: value})
	}
	t.fr.RecordAt(start, obs.EvInsert, insOutcome(err), pk.parts.Hash, uint64(obs.Now()-start))
	return err
}

// InsertB adds a variable-length record. Keys must be non-empty; keys and
// values past the log bounds fail with ErrRecordTooLarge. An 8-byte key is
// the same key as its little-endian uint64 (the two APIs are views of one
// keyspace), and an 8-byte-key/8-byte-value record whose key has bit 63
// clear is stored inline, taking the fixed-record fast path.
func (t *Table) InsertB(key, value []byte) error {
	g := t.em.Enter()
	defer g.Exit()
	if len(key) == 0 || len(key) > pmem.MaxVarKeyLen || len(value) > pmem.MaxVarValueLen {
		return ErrRecordTooLarge
	}
	start := obs.Now()
	pk := t.probeBytes(key)
	var err error
	if len(key) == 8 && len(value) == 8 && binary.LittleEndian.Uint64(key)&recIndirectBit == 0 {
		err = t.insertKV(&pk, pmem.KV{
			Key:   binary.LittleEndian.Uint64(key),
			Value: binary.LittleEndian.Uint64(value),
		})
	} else {
		err = t.insertIndirect(&pk, key, value)
	}
	t.fr.RecordAt(start, obs.EvInsert, insOutcome(err), pk.parts.Hash, uint64(obs.Now()-start))
	return err
}

// insertIndirect writes the blob (with the crash hooks between its persist,
// commit and publication) and inserts the packed record. The blob is
// allocated before any lock is taken and survives split retries; it is
// returned to the log on any failure. On most failures (duplicate key,
// pool exhaustion) the record was never published, no reader can hold the
// blob, and the free is immediate — but the ErrSegmentOverflow rollback
// deleted a record that WAS transiently published (a stash placement
// releases the stash-bucket lock before the rollback, and readers reach
// the stash through preexisting overflow metadata), so that path must
// epoch-retire the blob like any other reader-reachable free.
func (t *Table) insertIndirect(pk *probeKey, key, value []byte) error {
	blob, err := t.vlog.Append(key, value)
	if err != nil {
		return t.mapLogErr(err)
	}
	if t.hookVarAppended != nil {
		t.hookVarAppended()
	}
	t.vlog.Commit(blob)
	if t.hookVarCommitted != nil {
		t.hookVarCommitted()
	}
	kv := pmem.KV{Key: recPack(blob, len(key)), Value: pk.parts.Hash}
	if err := t.insertKV(pk, kv); err != nil {
		if errors.Is(err, ErrSegmentOverflow) {
			t.retireBlob(blob)
		} else {
			t.vlog.Free(blob)
		}
		return err
	}
	return nil
}

func (t *Table) mapLogErr(err error) error {
	if errors.Is(err, pmem.ErrBlobTooLarge) {
		return ErrRecordTooLarge
	}
	if errors.Is(err, ErrPoolFull) {
		return ErrPoolFull
	}
	return err
}

// insertKV is the shared insert protocol: route, lock, validate, duplicate
// check by canonical key, representation-blind slot insert, split-assist
// mirror, or split-and-retry.
func (t *Table) insertKV(pk *probeKey, kv pmem.KV) error {
	p := t.pool
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	for {
		seg, _ := t.cache.route(parts)
		t.ensureRecovered(seg)
		mir := t.mirror(seg)
		lockPair(p, mir, seg, b, b2)
		if !t.validateRoute(parts, seg) {
			unlockPair(p, mir, seg, b, b2)
			t.cache.misses.Inc()
			t.cacheRepair(parts)
			continue
		}
		t.cache.hits.Inc()
		if _, found := segFindLocked(p, t.vlog, seg, pk); found {
			unlockPair(p, mir, seg, b, b2)
			return ErrKeyExists
		}
		if segInsertLocked(p, mir, seg, parts, kv, true, true, t.seed) {
			if sib := t.splitSibling(seg, parts); !sib.IsNull() && !t.assistInsert(sib, pk, kv) {
				// The in-flight split's sibling cannot absorb the key's
				// copy: the split is overflowing pathologically. Undo and
				// surface it, matching what the migrator will report.
				if loc, found := segFindLocked(p, t.vlog, seg, pk); found {
					segDeleteAt(p, mir, seg, parts, loc, true, true)
				}
				unlockPair(p, mir, seg, b, b2)
				return ErrSegmentOverflow
			}
			unlockPair(p, mir, seg, b, b2)
			t.count.Add(1)
			return nil
		}
		unlockPair(p, mir, seg, b, b2)
		if err := t.split(parts, seg); err != nil {
			return err
		}
	}
}

// Get returns the value stored under key. Lock-free, and on the hot path
// free of PM metadata traffic: the route comes from the DRAM directory
// cache, and a found record under a stable bucket version is immediately
// valid (segments are never reclaimed, and a key's record is physically
// present only in segments that route to it — see dircache.go). A miss is
// trusted only after the route revalidates against the PM directory; a
// stale route instead repairs the cache and retries. For a record stored
// through the log the result is the little-endian uint64 of the value's
// first 8 bytes (zero-padded when shorter) — the fixed-width view of a
// variable value.
func (t *Table) Get(key uint64) (uint64, bool) {
	g := t.em.Enter()
	defer g.Exit()
	start := obs.Now()
	pk := t.probeU64(key)
	kv, blobHot, found := t.searchOpt(&pk)
	t.fr.RecordAt(start, obs.EvGet, pk.path, pk.parts.Hash, uint64(obs.Now()-start))
	if !found {
		return 0, false
	}
	return recValueU64Opt(t.vlog, kv, blobHot), true
}

// GetB returns a copy of the value stored under a variable-length key (an
// 8-byte value in little-endian order when the record is stored inline).
func (t *Table) GetB(key []byte) ([]byte, bool) {
	return t.GetBAppend(nil, key)
}

// GetBAppend is GetB appending the value to dst, for callers reusing
// buffers on hot paths.
func (t *Table) GetBAppend(dst, key []byte) ([]byte, bool) {
	g := t.em.Enter()
	defer g.Exit()
	start := obs.Now()
	pk := t.probeBytes(key)
	kv, blobHot, found := t.searchOpt(&pk)
	t.fr.RecordAt(start, obs.EvGet, pk.path, pk.parts.Hash, uint64(obs.Now()-start))
	if !found {
		return dst, false
	}
	return recAppendValueOpt(t.vlog, dst, kv, blobHot), true
}

// searchOpt is the shared lock-free read protocol, probing the segment's
// DRAM filter mirror first (segfilter.go):
//
//   - a stable mirror hit is immediately valid, by the same argument as a
//     stable PM hit (a key's record is physically present only in segments
//     the directory routes it to, and the mirror's shadow seqlock makes a
//     stable scan equivalent to a stable PM scan). blobHot reports that an
//     indirect hit's blob was already charged in full by the probe.
//   - a mirror miss is trusted entirely in DRAM when (a) the mirrored
//     segment header still claims the key and (b) the route, re-read after
//     the scans, still names this segment. That ordering is what makes it
//     sound: a split publish updates the directory cache and the mirrored
//     claim while holding every bucket lock, so any record this probe's
//     stable per-bucket scans could have missed (swept to the sibling)
//     implies the publish unlocked before some scan — and then the
//     route recheck, which runs after all scans, sees the new route.
//   - anything else falls back to PM: a validateRoute success there means
//     DRAM disagreed with PM truth, so the mirror heals itself
//     (mirrorRepair) and the probe retries; a failure is the ordinary
//     stale-route path (cacheRepair + retry).
//
// A sampled cross-check (mirrorMaybeCheck) guards the trusted outcomes
// against silent mirror corruption. The returned record words stay
// interpretable under the caller's epoch guard.
func (t *Table) searchOpt(pk *probeKey) (pmem.KV, bool, bool) {
	p := t.pool
	for {
		seg, _ := t.cache.route(pk.parts)
		t.ensureRecovered(seg)
		mir := t.mirror(seg)
		if mir == nil {
			// No mirror installed (unexpected steady-state): PM path.
			t.filters.bypass.Inc()
			pk.path = obs.PathPMFallback
			if kv, found := segSearchOpt(p, t.vlog, seg, pk); found {
				t.cache.hits.Inc()
				return kv, false, true
			}
			if t.validateRoute(pk.parts, seg) {
				t.cache.hits.Inc()
				return pmem.KV{}, false, false
			}
			t.cache.misses.Inc()
			t.cacheRepair(pk.parts)
			continue
		}
		kv, blobHot, found := mirSegSearch(t.vlog, mir, pk)
		if found {
			t.cache.hits.Inc()
			t.filters.hits.Inc()
			pk.path = obs.PathMirrorHit
			t.mirrorMaybeCheck(seg, mir, pk)
			return kv, blobHot, true
		}
		if mirClaims(mir, pk.parts) {
			if seg2, _ := t.cache.route(pk.parts); seg2 == seg {
				t.cache.hits.Inc()
				t.filters.hits.Inc()
				pk.path = obs.PathMirrorNeg
				t.mirrorMaybeCheck(seg, mir, pk)
				return pmem.KV{}, false, false
			}
		}
		t.filters.misses.Inc()
		if t.validateRoute(pk.parts, seg) {
			// PM vouches for the route the DRAM state would not: the
			// mirror (claim or directory cache entry) is out of sync with
			// PM. Heal the mirror and retry; a stale cache entry instead
			// fails the validation below and repairs there.
			t.mirrorRepair(seg, mir)
			continue
		}
		t.cache.misses.Inc()
		t.cacheRepair(pk.parts)
	}
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	g := t.em.Enter()
	defer g.Exit()
	start := obs.Now()
	pk := t.probeU64(key)
	found := t.deleteByProbe(&pk)
	t.fr.RecordAt(start, obs.EvDelete, delOutcome(found), pk.parts.Hash, uint64(obs.Now()-start))
	return found
}

// DeleteB removes a variable-length key, reporting whether it was present.
func (t *Table) DeleteB(key []byte) bool {
	g := t.em.Enter()
	defer g.Exit()
	start := obs.Now()
	pk := t.probeBytes(key)
	found := t.deleteByProbe(&pk)
	t.fr.RecordAt(start, obs.EvDelete, delOutcome(found), pk.parts.Hash, uint64(obs.Now()-start))
	return found
}

func (t *Table) deleteByProbe(pk *probeKey) bool {
	p := t.pool
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	for {
		seg, _ := t.cache.route(parts)
		t.ensureRecovered(seg)
		mir := t.mirror(seg)
		lockPair(p, mir, seg, b, b2)
		if !t.validateRoute(parts, seg) {
			unlockPair(p, mir, seg, b, b2)
			t.cache.misses.Inc()
			t.cacheRepair(parts)
			continue
		}
		t.cache.hits.Inc()
		loc, found := segFindLocked(p, t.vlog, seg, pk)
		if found {
			w0 := p.QuietLoadU64(recordAddr(segBucket(seg, loc.bucket), loc.slot))
			segDeleteAt(p, mir, seg, parts, loc, true, true)
			if sib := t.splitSibling(seg, parts); !sib.IsNull() {
				t.assistDelete(sib, pk)
			}
			if recIsIndirect(w0) {
				t.retireBlob(recBlobAddr(w0))
			}
			t.count.Add(-1)
		}
		unlockPair(p, mir, seg, b, b2)
		return found
	}
}

// retireBlob frees a blob once no in-flight reader can still dereference
// it, the same epoch deferral retired directory blocks use. The slot that
// referenced the blob is already unpublished and persisted, so at crash
// granularity the blob is dead either way.
func (t *Table) retireBlob(blob pmem.Addr) {
	t.em.Retire(func() { t.vlog.Free(blob) })
}

// Update overwrites the value of an existing key. The bool reports whether
// the key was present; a non-nil error means the key exists but the update
// did not happen (value unchanged): records stored through the log update
// copy-on-write, which can fail with ErrPoolFull, ErrRecordTooLarge is
// impossible here, and a pathological sibling overflow during an in-flight
// split surfaces as ErrSegmentOverflow. Inline records update in place
// (one atomic persisted store, no error path). Lock-free readers always
// observe either the whole old or the whole new value.
func (t *Table) Update(key, value uint64) (bool, error) {
	g := t.em.Enter()
	defer g.Exit()
	start := obs.Now()
	pk := t.probeU64(key)
	found, err := t.updateByProbe(&pk, nil, value)
	t.fr.RecordAt(start, obs.EvUpdate, updOutcome(found, err), pk.parts.Hash, uint64(obs.Now()-start))
	return found, err
}

// UpdateB overwrites the value of an existing variable-length key. The
// returned bool reports presence; the error reports ErrRecordTooLarge,
// ErrPoolFull or ErrSegmentOverflow (the update did not happen). A value
// whose length differs from the stored one is handled by the copy-on-write
// path, including conversions between the inline and log representations.
func (t *Table) UpdateB(key, value []byte) (bool, error) {
	g := t.em.Enter()
	defer g.Exit()
	if len(key) == 0 || len(key) > pmem.MaxVarKeyLen || len(value) > pmem.MaxVarValueLen {
		return false, ErrRecordTooLarge
	}
	start := obs.Now()
	pk := t.probeBytes(key)
	found, err := t.updateByProbe(&pk, value, 0)
	t.fr.RecordAt(start, obs.EvUpdate, updOutcome(found, err), pk.parts.Hash, uint64(obs.Now()-start))
	return found, err
}

// updateByProbe implements both update flavors: vb == nil is the uint64
// path (value = vu). The write strategy is chosen per record:
//
//   - inline record, 8-byte new value → in-place WriteValue (the original
//     fast path; crash-atomic by word atomicity).
//   - indirect record → copy-on-write: append+commit a new blob, flip the
//     slot's word 0 with one atomic persisted store, epoch-retire the old
//     blob. Word 1 (the key's hash) is unchanged, so the flip is a single
//     word whatever the value length.
//   - inline record, non-8-byte value → representation conversion: the new
//     indirect record is inserted alongside the old inline one and the old
//     slot is deleted after the sibling assist succeeds. A crash in
//     between leaves both — recovery's canonical-key dedupe keeps exactly
//     one, which is correct for an unacknowledged update.
//
// The new blob is allocated lazily on first need and reused across split
// retries; it is freed on any outcome that does not publish it.
func (t *Table) updateByProbe(pk *probeKey, vb []byte, vu uint64) (bool, error) {
	p := t.pool
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	blob := pmem.Null
	// freeBlob is only for outcomes where the blob was never published (no
	// slot ever referenced it), so no reader can hold it and immediate
	// reuse is safe; the conversion rollback below, whose record WAS
	// transiently readable, epoch-retires instead.
	freeBlob := func() {
		if !blob.IsNull() {
			t.vlog.Free(blob)
		}
	}
	inline8 := vb == nil || len(vb) == 8
	for {
		seg, _ := t.cache.route(parts)
		t.ensureRecovered(seg)
		mir := t.mirror(seg)
		lockPair(p, mir, seg, b, b2)
		if !t.validateRoute(parts, seg) {
			unlockPair(p, mir, seg, b, b2)
			t.cache.misses.Inc()
			t.cacheRepair(parts)
			continue
		}
		t.cache.hits.Inc()
		loc, found := segFindLocked(p, t.vlog, seg, pk)
		if !found {
			unlockPair(p, mir, seg, b, b2)
			freeBlob()
			return false, nil
		}
		ra := recordAddr(segBucket(seg, loc.bucket), loc.slot)
		w0 := p.QuietLoadU64(ra)

		if !recIsIndirect(w0) && inline8 {
			v := vu
			if vb != nil {
				v = binary.LittleEndian.Uint64(vb)
			}
			p.WriteValue(ra, v)
			p.Persist(ra.Add(8), 8)
			if mir != nil {
				// Single-word mirror store; for a stash-resident record it
				// happens outside the stash bucket's lock, which is exactly
				// the PM store's own discipline — readers see the old or
				// the new word, both linearizable.
				mir.recWord(loc.bucket, loc.slot, 1).Store(v)
			}
			if sib := t.splitSibling(seg, parts); !sib.IsNull() {
				t.assistUpdate(sib, pk, pmem.KV{Key: w0, Value: v})
			}
			unlockPair(p, mir, seg, b, b2)
			freeBlob()
			return true, nil
		}

		// Log-backed value needed: build the blob once (under the locks —
		// acceptable: this path is the variable-length/cross-format case).
		if blob.IsNull() {
			var kbuf [8]byte
			value := vb
			if value == nil {
				var vbuf [8]byte
				binary.LittleEndian.PutUint64(vbuf[:], vu)
				value = vbuf[:]
			}
			var err error
			blob, err = t.vlog.Append(pk.keyBytes(&kbuf), value)
			if err != nil {
				unlockPair(p, mir, seg, b, b2)
				return true, t.mapLogErr(err)
			}
			t.vlog.Commit(blob)
		}
		if t.hookVarMidUpdate != nil {
			t.hookVarMidUpdate()
		}
		kv := pmem.KV{Key: recPack(blob, pk.keyLen()), Value: parts.Hash}

		if recIsIndirect(w0) {
			// Copy-on-write flip: word 1 already holds the key's hash.
			p.StoreU64(ra, kv.Key)
			p.Persist(ra, 8)
			if mir != nil {
				mir.recWord(loc.bucket, loc.slot, 0).Store(kv.Key)
			}
			if sib := t.splitSibling(seg, parts); !sib.IsNull() {
				t.assistUpdate(sib, pk, kv)
			}
			t.retireBlob(recBlobAddr(w0))
			unlockPair(p, mir, seg, b, b2)
			return true, nil
		}

		// Representation conversion (inline → indirect): insert the new
		// record first, mirror it into any in-flight split's sibling, and
		// only then delete the old inline slot — at every crash point the
		// key exists at least once and at most twice (deduped by recovery).
		if !segInsertLocked(p, mir, seg, parts, kv, true, true, t.seed) {
			unlockPair(p, mir, seg, b, b2)
			if err := t.split(parts, seg); err != nil {
				freeBlob()
				return true, err
			}
			continue
		}
		if sib := t.splitSibling(seg, parts); !sib.IsNull() && !t.assistConvert(sib, pk, kv) {
			// Sibling cannot absorb the converted record: roll the
			// conversion back (delete the new record, old value intact).
			// The deleted record was transiently published — a stash
			// placement is readable the moment segInsertLocked drops the
			// stash lock — so the blob is epoch-retired, not freed for
			// immediate reuse.
			if nloc, ok := segFindW0Locked(p, seg, parts, kv.Key); ok {
				segDeleteAt(p, mir, seg, parts, nloc, true, true)
			}
			unlockPair(p, mir, seg, b, b2)
			t.retireBlob(blob)
			return true, ErrSegmentOverflow
		}
		// loc still names the old inline slot: the new record's insert may
		// have displaced records, but never this one (displacement only
		// moves records homed in the probing neighbor b2; this key's home
		// is b).
		segDeleteAt(p, mir, seg, parts, loc, true, true)
		unlockPair(p, mir, seg, b, b2)
		return true, nil
	}
}

// split replaces oldSeg by two segments of local depth+1 with bounded
// stalls. Ownership is claimed by CAS on the segment's split-state word
// (per-segment: splits of distinct segments run in parallel; a loser waits
// the winner out and retries its operation). The owner then:
//
//  1. allocates and initializes the sibling, and persists the split-progress
//     marker (sibling address | in-flight bit) into oldSeg's header — the
//     point from which a crash rolls back by clearing the marker;
//  2. migrates the sibling's half of the records one bucket at a time under
//     that bucket's version lock (splitMigrate) — readers and writers on
//     the other 65 buckets proceed, and writers mirror sibling-claimed
//     mutations into the sibling themselves (assist*);
//  3. publishes (splitPublish): the only stop-the-world step — under all
//     bucket locks the sibling is persisted with one flush+fence, the
//     directory entries flip (doubling first if needed, both under dirMu),
//     oldSeg's metadata bumps and its moved records are swept with one
//     persist per bucket, and the directory cache is written through.
//
// A crash before the first entry flip leaves the sibling unpublished:
// recovery clears the marker and the block leaks. A crash after it leaves
// the directory image authoritative: recovery completes the flips, fixes
// metadata and sweeps duplicates exactly as under the old protocol.
func (t *Table) split(parts hashfn.Parts, oldSeg pmem.Addr) error {
	p := t.pool
	t.fr.Record(obs.EvSplitTrigger, obs.TagNone, uint64(oldSeg), 0)
	spa := oldSeg.Add(segOffSplit)
	if !p.CompareAndSwapU64(spa, 0, splitStateInFlight) {
		// Another goroutine owns this segment's split. Wait it out (no
		// locks held here); the caller revalidates its route and retries.
		for p.QuietLoadU64(spa)&splitStateInFlight != 0 {
			runtime.Gosched()
		}
		return nil
	}
	// We own the split. Between the failed insert that brought us here and
	// the claim, a finished split may have relocated the key range or made
	// room; re-check cheaply and release the claim if so. The claim value
	// is transient (never persisted): recovery clears markers wholesale.
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	if _, seg := t.resolve(parts); seg != oldSeg ||
		bucketFreeSlots(p, segBucket(oldSeg, b)) > 0 ||
		bucketFreeSlots(p, segBucket(oldSeg, b2)) > 0 {
		p.StoreU64(spa, 0)
		return nil
	}
	t.fr.Record(obs.EvSplitCAS, obs.TagNone, uint64(oldSeg), 0)
	l := segDepth(p, oldSeg)
	pat := segPattern(p, oldSeg)

	newSeg, err := t.alloc(segmentSize)
	if err != nil {
		p.StoreU64(spa, 0)
		t.fr.Record(obs.EvSplitRollback, obs.TagNone, uint64(oldSeg), 0)
		return err
	}
	segInit(p, newSeg, l+1, pat<<1|1)
	// The sibling's mirror must exist before the marker publishes the
	// sibling to assisting writers: from the first assist on, every sibling
	// mutation writes through, so the mirror is complete at publish time
	// with no rebuild pass.
	t.mirrorInstall(newSeg, l+1, pat<<1|1)

	// Snapshot the assist counter before the marker becomes visible: any
	// assist that could race the copy loop bumps it past a0, which is what
	// tells splitMigrate it must probe for duplicates.
	a0 := t.splitAssists.Load()
	p.StoreU64(spa, uint64(newSeg)|splitStateInFlight)
	p.Persist(spa, 8)
	if t.hookAfterMarker != nil {
		t.hookAfterMarker()
	}

	mstart := obs.Now()
	sc, ok := t.splitMigrate(oldSeg, newSeg, l, a0)
	t.met.splitMigrateNS.Record(obs.Now() - mstart)
	defer splitScanPool.Put(sc)
	if !ok {
		// Pathological one-sided overflow: roll back by clearing the
		// marker. The sibling is leaked rather than reused — an assisting
		// writer that read the marker just before the clear may still be
		// writing into it under its bucket locks (and through a fetched
		// mirror pointer; the dropped mirror object absorbs those stores
		// harmlessly, since nothing routes to the leaked segment).
		p.StoreU64(spa, 0)
		p.Persist(spa, 8)
		t.mirrorDrop(newSeg)
		t.fr.Record(obs.EvSplitRollback, obs.TagNone, uint64(oldSeg), uint64(newSeg))
		return ErrSegmentOverflow
	}
	t.fr.Record(obs.EvSplitMigrate, obs.TagNone, uint64(oldSeg), uint64(newSeg))
	return t.splitPublish(oldSeg, newSeg, l, pat, sc)
}

// splitMigrate copies every record the sibling claims from oldSeg into the
// unpublished newSeg, one bucket at a time under that bucket's version lock
// — the low-stall replacement for freezing all 66 buckets at once. Normal
// buckets are consistent under their own lock (every mutation of a record
// in bucket bi holds bi's lock). Stash records are guarded by their *home*
// bucket's lock instead, so the stash pass locks each record's home pair
// and re-verifies the slot under it. Copies are not persisted individually:
// the publish step makes the whole sibling durable with one flush+fence
// before any directory entry points at it, and a crash before that rolls
// the sibling back wholesale.
//
// a0 is the split-assist counter snapshot from before the marker was
// published: while the counter still equals a0 no writer can have mirrored
// an op into any sibling, and the copy loop skips the duplicate probe.
// Returns false on pathological one-sided overflow.
// splitScan is what splitMigrate's optimistic source scan learned, reused
// by the publish to sweep without re-reading records: per normal bucket the
// seqlock version the stable scan observed and the bitmap of moved
// (sibling-claimed) slots. A bucket whose version at publish time differs
// from ver[bi]+1 (+1 for the publish's own lock) was mutated after the scan
// and is re-scanned; the rest sweep by bitmap alone.
//
// Instances are pooled: a split allocates nothing steady-state, so the
// resize path adds no GC pressure (on small-core boxes, GC mark assists
// were showing up as multi-ms latency outliers dwarfing the splits
// themselves).
type splitScan struct {
	ver     [normalBuckets]uint64
	moved   [normalBuckets]uint64
	cand    []splitCand
	grouped []splitCand
	known   [totalBuckets]uint64
	kvalid  [totalBuckets]bool
	keyBuf  []byte // scratch for duplicate probes on indirect records
}

var splitScanPool = sync.Pool{New: func() any { return new(splitScan) }}

// splitCand is one sibling-claimed record the scan found: where it lives in
// the old segment (for the locked re-verify), its word 0 as scanned (the
// record's physical identity — an inline key or a packed blob address) and
// its hash parts (read from the record words; the scan never dereferences
// blobs, which is what keeps split cost independent of record size).
type splitCand struct {
	w0   uint64
	rec  pmem.Addr // record address in the old segment
	meta pmem.Addr // its bucket's meta word
	slot int
	home int
	rp   hashfn.Parts
}

func (t *Table) splitMigrate(oldSeg, newSeg pmem.Addr, l uint8, a0 uint64) (*splitScan, bool) {
	p := t.pool
	oldMir, newMir := t.mirror(oldSeg), t.mirror(newSeg)

	// Phase 1 — optimistic scan, no locks: migration never mutates the old
	// segment, so each bucket is snapshotted seqlock-style (stable version
	// across the scan, like bucketSearchOpt). The whole segment is charged
	// as one streaming read up front — a sequential sweep of its lines,
	// exactly what the hardware prefetcher would serve — and the per-word
	// loads are quiet (one-charge-per-line).
	p.TouchRead(oldSeg, segmentSize)
	sc := splitScanPool.Get().(*splitScan)
	sc.cand = sc.cand[:0]
	for bi := 0; bi < normalBuckets; bi++ {
		ba := segBucket(oldSeg, bi)
		va := ba.Add(bkOffVersion)
		for {
			v := p.QuietLoadU64(va)
			if v&1 != 0 {
				runtime.Gosched()
				continue
			}
			m := p.QuietLoadU64(ba.Add(bkOffMeta))
			n0 := len(sc.cand)
			moved := uint64(0)
			for slot := 0; slot < slotsPerBucket; slot++ {
				if !metaSlotUsed(m, slot) {
					continue
				}
				ra := recordAddr(ba, slot)
				w0 := p.QuietLoadU64(ra)
				rp := hashfn.Split(recHash(pmem.KV{Key: w0, Value: p.QuietLoadU64(ra.Add(8))}, t.seed))
				if rp.DepthBit(l) {
					moved |= 1 << uint(slot)
					sc.cand = append(sc.cand, splitCand{
						w0: w0, rec: ra, meta: ba.Add(bkOffMeta),
						slot: slot, home: int(rp.BucketIndex(bucketBits)), rp: rp,
					})
				}
			}
			if p.QuietLoadU64(va) == v {
				sc.ver[bi], sc.moved[bi] = v, moved
				break
			}
			sc.cand = sc.cand[:n0] // torn snapshot; rescan this bucket
		}
	}

	// Phase 2 — copy, grouped by destination home pair, under the sibling's
	// pair locks only. The protocol needs no old-segment locks: every
	// sibling-claimed mutation mirrors itself into the sibling under these
	// same locks (assist*), so re-verifying the source slot while holding
	// them is race-free — a slot that still carries the key cannot lose it
	// until we unlock, and one that changed was handled by its writer's
	// assist. Copies are not persisted individually; the publish makes the
	// whole sibling durable with one flush+fence.
	var cnt [normalBuckets + 1]int
	for _, c := range sc.cand {
		cnt[c.home+1]++
	}
	for h := 1; h <= normalBuckets; h++ {
		cnt[h] += cnt[h-1]
	}
	if cap(sc.grouped) < len(sc.cand) {
		sc.grouped = make([]splitCand, len(sc.cand))
	}
	grouped := sc.grouped[:len(sc.cand)]
	pos := cnt
	for _, c := range sc.cand {
		grouped[pos[c.home]] = c
		pos[c.home]++
	}
	for h := 0; h < normalBuckets; h++ {
		if cnt[h+1] > cnt[h] {
			h2 := (h + 1) % normalBuckets
			lockPair(p, newMir, newSeg, h, h2)
			for _, c := range grouped[cnt[h]:cnt[h+1]] {
				// Re-verify under the sibling lock; both loads share lines
				// the scan already charged. Identity is the scanned word 0
				// for inline records; for indirect records it is the stored
				// hash — a copy-on-write update flips word 0 to a new blob
				// but keeps the hash, and copying the *current* words below
				// picks up exactly that freshest blob.
				w0 := p.QuietLoadU64(c.rec)
				w1 := p.QuietLoadU64(c.rec.Add(8))
				if !metaSlotUsed(p.QuietLoadU64(c.meta), c.slot) || !recSameIdentity(c.w0, w0, w1, c.rp.Hash) {
					continue // deleted or replaced; its writer's assist covered the sibling
				}
				// Freshest value: an update between scan and copy either
				// already landed (read here) or will assist after we unlock.
				kv := pmem.KV{Key: w0, Value: w1}
				if t.splitAssists.Load() != a0 {
					var pk probeKey
					pk, sc.keyBuf = probeOfRecord(t.vlog, kv, c.rp, sc.keyBuf)
					if _, dup := segFindLocked(p, t.vlog, newSeg, &pk); dup {
						continue
					}
				}
				if !segInsertLocked(p, newMir, newSeg, c.rp, kv, true, false, t.seed) {
					unlockPair(p, newMir, newSeg, h, h2)
					return sc, false
				}
			}
			unlockPair(p, newMir, newSeg, h, h2)
		}
		if t.hookMidMigrate != nil {
			t.hookMidMigrate(oldSeg, h)
		}
	}

	// Phase 3 — stash records; these mutate under their home bucket's lock,
	// so each is copied under its old-segment home pair plus the sibling
	// pair (this is the one place migration still takes old-segment locks,
	// bounded by the stash's 28 slots).
	for j := 0; j < stashBuckets; j++ {
		sa := segBucket(oldSeg, normalBuckets+j)
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !t.splitCopyStashSlot(oldMir, newMir, oldSeg, newSeg, sa, slot, l, a0) {
				return sc, false
			}
		}
		if t.hookMidMigrate != nil {
			t.hookMidMigrate(oldSeg, normalBuckets+j)
		}
	}
	return sc, true
}

// splitCopyStashSlot migrates one stash slot of oldSeg. Stash records
// mutate only under their home bucket's lock, so the slot's key is read
// optimistically, its home pair locked, and the slot re-verified under the
// locks; a slot that changed identity in between is retried with the new
// key (bounded in practice: slots change only while writers win the race).
func (t *Table) splitCopyStashSlot(oldMir, newMir *segMirror, oldSeg, newSeg, sa pmem.Addr, slot int, l uint8, a0 uint64) bool {
	p := t.pool
	for {
		m := p.LoadU64(sa.Add(bkOffMeta))
		if !metaSlotUsed(m, slot) {
			return true
		}
		kv0 := p.ReadKV(recordAddr(sa, slot))
		rp := recSplitParts(kv0, t.seed)
		hb := int(rp.BucketIndex(bucketBits))
		hb2 := (hb + 1) % normalBuckets
		lockPair(p, oldMir, oldSeg, hb, hb2)
		m = p.LoadU64(sa.Add(bkOffMeta))
		kv := p.ReadKV(recordAddr(sa, slot))
		if !metaSlotUsed(m, slot) || !recSameIdentity(kv0.Key, kv.Key, kv.Value, rp.Hash) {
			unlockPair(p, oldMir, oldSeg, hb, hb2)
			continue
		}
		ok := true
		if rp.DepthBit(l) {
			lockPair(p, newMir, newSeg, hb, hb2)
			dup := false
			if t.splitAssists.Load() != a0 {
				pk, _ := probeOfRecord(t.vlog, kv, rp, nil)
				_, dup = segFindLocked(p, t.vlog, newSeg, &pk)
			}
			if !dup {
				ok = segInsertLocked(p, newMir, newSeg, rp, kv, true, false, t.seed)
			}
			unlockPair(p, newMir, newSeg, hb, hb2)
		}
		unlockPair(p, oldMir, oldSeg, hb, hb2)
		return ok
	}
}

// splitPublish is the split's only stop-the-world step, and it is short:
// every bucket lock of oldSeg is taken (excluding writers and spinning out
// optimistic readers), the finished sibling becomes durable with a single
// whole-segment flush+fence, the directory entries flip under dirMu
// (doubling first when the segment's depth has caught up with the global
// depth), oldSeg's metadata bumps together with the marker clear in one
// header persist, the moved records are swept with one persist per touched
// bucket, and the DRAM directory cache is written through — only then do
// the locks release. The stall this window causes is accumulated in
// splitStallNS.
func (t *Table) splitPublish(oldSeg, newSeg pmem.Addr, l uint8, pat uint64, sc *splitScan) error {
	p := t.pool
	oldMir := t.mirror(oldSeg)
	begin := time.Now()
	for i := 0; i < totalBuckets; i++ {
		lockBucket(p, oldMir, segBucket(oldSeg, i), i)
	}
	defer func() {
		for i := 0; i < totalBuckets; i++ {
			unlockBucket(p, oldMir, segBucket(oldSeg, i), i)
		}
		stall := time.Since(begin).Nanoseconds()
		t.splitStallNS.Add(stall)
		t.met.splitPublishStallNS.Record(stall)
	}()

	// All writers are excluded now (assists run under bucket locks), so the
	// sibling is finished and this one flush+fence replaces the per-record
	// persists of the old copy loop.
	segPersist(p, newSeg)
	if t.hookAfterSegPersist != nil {
		t.hookAfterSegPersist()
	}

	t.dirMu.Lock()
	defer t.dirMu.Unlock()

	dir := pmem.Addr(p.LoadU64(rootAddr.Add(rootOffDir)))
	g := dirDepth(p, dir)
	if l == g {
		newDir, err := t.alloc(dirSize(g + 1))
		if err != nil {
			// Nothing is published yet: roll back like a migration
			// failure. The sibling is leaked, its mirror dropped.
			p.StoreU64(oldSeg.Add(segOffSplit), 0)
			p.Persist(oldSeg.Add(segOffSplit), 8)
			t.mirrorDrop(newSeg)
			t.fr.Record(obs.EvSplitRollback, obs.TagNone, uint64(oldSeg), uint64(newSeg))
			return err
		}
		dirInitDoubled(p, newDir, dir)
		p.StoreU64(rootAddr.Add(rootOffDir), uint64(newDir))
		p.Persist(rootAddr.Add(rootOffDir), 8)
		old, oldSize := dir, dirSize(g)
		t.em.Retire(func() { t.freePush(old, oldSize) })
		dir = newDir
		g++
		t.cacheDouble(newDir)
		t.fr.Record(obs.EvDirDouble, obs.TagNone, uint64(g), 0)
	}

	estart, span := dirCoverage(g, l, pat)
	half := span >> 1
	for i := estart + half; i < estart+span; i++ {
		dirStoreEntry(p, dir, i, newSeg)
		p.Persist(dirEntryAddr(dir, i), 8)
		if t.hookMidPublish != nil && i == estart+half {
			t.hookMidPublish()
		}
	}
	if t.hookAfterPublish != nil {
		t.hookAfterPublish()
	}
	t.fr.Record(obs.EvSplitPublish, obs.TagNone, uint64(oldSeg), uint64(newSeg))

	// Metadata bump and marker clear share the header line and persist
	// once. The directory already routes the moved half to the sibling, so
	// from here a crash rolls forward through recovery's directory-driven
	// reconciliation.
	p.StoreU64(oldSeg.Add(segOffSplit), 0)
	segSetMeta(p, oldMir, oldSeg, l+1, pat<<1)
	// Sweep by the scan's moved-slot bitmaps wherever the bucket's seqlock
	// version proves it unchanged since the scan (+1 is our own lock);
	// mutated buckets and the stash are re-scanned.
	for bi := 0; bi < totalBuckets; bi++ {
		sc.kvalid[bi] = bi < normalBuckets &&
			p.QuietLoadU64(segBucket(oldSeg, bi).Add(bkOffVersion)) == sc.ver[bi]+1
		if sc.kvalid[bi] {
			sc.known[bi] = sc.moved[bi]
		}
	}
	segSweepBatched(p, oldMir, oldSeg, t.seed, func(rp hashfn.Parts, _ pmem.KV) bool {
		return rp.DepthBit(l)
	}, sc.known[:], sc.kvalid[:], t.hookMidSweep)
	t.fr.Record(obs.EvSplitSweep, obs.TagNone, uint64(oldSeg), uint64(time.Since(begin).Nanoseconds()))
	// Write-through before the deferred bucket unlocks: once writers can
	// get past the locks, the cache already routes the moved half to
	// newSeg.
	t.cachePublishSplit(oldSeg, newSeg, l+1, estart, span)
	t.splits.Add(1)
	return nil
}

// splitSibling returns the sibling of an in-flight split of seg when that
// sibling claims the key's hash, or null. The caller holds the key's bucket
// locks in seg: a split cannot publish (which is what retires the marker)
// without those locks, so a non-null sibling stays valid until they are
// released.
func (t *Table) splitSibling(seg pmem.Addr, parts hashfn.Parts) pmem.Addr {
	st := segSplitState(t.pool, seg)
	if st&splitStateInFlight == 0 {
		return pmem.Null
	}
	sib := splitStateSibling(st)
	if sib.IsNull() || !segClaims(t.pool, sib, parts) {
		return pmem.Null
	}
	return sib
}

// assistInsert mirrors a fresh insert into the unpublished sibling of an
// in-flight split, under the sibling's bucket-pair locks (always acquired
// after the old segment's — the same two-level order the migrator uses).
// Reports false when the sibling cannot absorb the copy, i.e. the split is
// overflowing pathologically. Durability is deferred to the publish's
// whole-segment persist, like every pre-publish sibling write.
func (t *Table) assistInsert(sib pmem.Addr, pk *probeKey, kv pmem.KV) bool {
	// Count before touching the sibling: the migrator reads the counter
	// under bucket locks ordered after this store, so a nonzero delta is
	// visible before any duplicate can be.
	t.splitAssists.Add(1)
	p := t.pool
	sibMir := t.mirror(sib)
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	lockPair(p, sibMir, sib, b, b2)
	// The key is fresh table-wide, but its sibling copy may already exist:
	// if this insert reused a source slot the migration scan captured under
	// the same key (delete + reinsert ABA), the migrator's locked re-verify
	// cannot tell old from new and may have copied it before our counter
	// bump reached its duplicate gate. Both races resolve through this pair
	// lock's handoff: whichever of us inserts first, the other's probe sees
	// it here — so probe before inserting.
	ok := true
	if _, dup := segFindLocked(p, t.vlog, sib, pk); !dup {
		ok = segInsertLocked(p, sibMir, sib, parts, kv, true, false, t.seed)
	}
	unlockPair(p, sibMir, sib, b, b2)
	return ok
}

// assistDelete mirrors a delete into the sibling of an in-flight split: if
// the migrator already copied the record, the copy must die too or the key
// would resurrect when the split publishes.
func (t *Table) assistDelete(sib pmem.Addr, pk *probeKey) {
	p := t.pool
	sibMir := t.mirror(sib)
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	lockPair(p, sibMir, sib, b, b2)
	if loc, found := segFindLocked(p, t.vlog, sib, pk); found {
		segDeleteAt(p, sibMir, sib, parts, loc, true, false)
	}
	unlockPair(p, sibMir, sib, b, b2)
}

// assistUpdate mirrors a value update into the sibling of an in-flight
// split, so an already-migrated copy does not revive the old value at
// publish: the sibling copy's record words are overwritten with kv (for an
// inline record that is just the value word; for a copy-on-write update it
// is the new blob's word 0, word 1 — the hash — being unchanged). A copy
// the migrator has not made yet needs nothing: the migrator copies the
// record's *current* words under the home bucket's lock, and its sibling
// critical section serializes with this one.
func (t *Table) assistUpdate(sib pmem.Addr, pk *probeKey, kv pmem.KV) {
	p := t.pool
	sibMir := t.mirror(sib)
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	lockPair(p, sibMir, sib, b, b2)
	if loc, found := segFindLocked(p, t.vlog, sib, pk); found {
		ra := recordAddr(segBucket(sib, loc.bucket), loc.slot)
		p.StoreU64(ra.Add(8), kv.Value)
		p.StoreU64(ra, kv.Key)
		if sibMir != nil {
			sibMir.recWord(loc.bucket, loc.slot, 1).Store(kv.Value)
			sibMir.recWord(loc.bucket, loc.slot, 0).Store(kv.Key)
		}
	}
	unlockPair(p, sibMir, sib, b, b2)
}

// assistConvert mirrors a representation conversion (inline → indirect
// update) into the sibling: an upsert — overwrite the already-migrated
// copy, or insert the converted record if the migrator has not reached it
// yet (the migrator will then skip the old slot, whose word 0 no longer
// matches its scan, or dedupe against this copy through the assist
// counter's gate). Reports false when the sibling cannot absorb an insert.
func (t *Table) assistConvert(sib pmem.Addr, pk *probeKey, kv pmem.KV) bool {
	t.splitAssists.Add(1) // before touching the sibling, like assistInsert
	p := t.pool
	sibMir := t.mirror(sib)
	parts := pk.parts
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	lockPair(p, sibMir, sib, b, b2)
	ok := true
	if loc, found := segFindLocked(p, t.vlog, sib, pk); found {
		ra := recordAddr(segBucket(sib, loc.bucket), loc.slot)
		p.StoreU64(ra.Add(8), kv.Value)
		p.StoreU64(ra, kv.Key)
		if sibMir != nil {
			sibMir.recWord(loc.bucket, loc.slot, 1).Store(kv.Value)
			sibMir.recWord(loc.bucket, loc.slot, 0).Store(kv.Key)
		}
	} else {
		ok = segInsertLocked(p, sibMir, sib, parts, kv, true, false, t.seed)
	}
	unlockPair(p, sibMir, sib, b, b2)
	return ok
}

// recoverLazy reconciles the table image with O(directory) work only. The
// directory is the source of truth: every segment's true coverage — and from
// it, its local depth and pattern — is re-derived by letting deeper segments
// claim their canonical entry ranges first. This completes a partially
// published split (the new segment was fully durable before the first entry
// flip) and rolls an unpublished one back to a harmless leak; version locks
// are reset and split markers cleared in the same per-segment pass (a small
// constant per segment, so still O(directory)). The O(data) work — record
// sweeps, dedupe, count derivation, mirror installs, the record-log sweep —
// is deferred: recoverLazy builds the lazyRecovery side table and returns.
// After a clean shutdown the image needs none of that reconciliation (the
// passes are cheap no-ops, run anyway for their validation) and the count
// comes straight from the root.
func (t *Table) recoverLazy(clean bool) error {
	p := t.pool
	rstart := obs.Now()
	dir := pmem.Addr(p.ReadU64(rootAddr.Add(rootOffDir)))
	if dir.IsNull() {
		return ErrNotATable
	}
	g := dirDepth(p, dir)
	n := uint64(1) << g

	type segInfo struct {
		addr pmem.Addr
		l    uint8
		pat  uint64
	}
	entries := make([]pmem.Addr, n)
	var segs []segInfo
	seen := make(map[pmem.Addr]bool)
	for i := uint64(0); i < n; i++ {
		e := dirLoadEntry(p, dir, i)
		entries[i] = e
		if e.IsNull() {
			return fmt.Errorf("core: recovery: null directory entry %d", i)
		}
		if !seen[e] {
			seen[e] = true
			l, pat := segDepth(p, e), segPattern(p, e)
			if l > g {
				return fmt.Errorf("core: recovery: segment %#x deeper (%d) than directory (%d)", e, l, g)
			}
			segs = append(segs, segInfo{addr: e, l: l, pat: pat})
		}
	}

	// Deepest-first claiming: a new segment (depth L+1) takes its canonical
	// half before the stale old segment (still claiming depth L) takes the
	// remainder, which completes any half-flipped publish.
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].l > segs[j].l })
	fixed := make([]pmem.Addr, n)
	for _, s := range segs {
		start, span := dirCoverage(g, s.l, s.pat)
		for i := start; i < start+span; i++ {
			if fixed[i].IsNull() {
				fixed[i] = s.addr
			}
		}
	}
	changed := false
	for i := uint64(0); i < n; i++ {
		if fixed[i].IsNull() {
			return fmt.Errorf("core: recovery: directory entry %d unclaimed", i)
		}
		if fixed[i] != entries[i] {
			dirStoreEntry(p, dir, i, fixed[i])
			changed = true
		}
	}
	if changed {
		p.Persist(dirEntryAddr(dir, 0), 8*n)
	}

	// Re-derive each segment's (depth, pattern) from its actual coverage and
	// reset every bucket's version lock. Coverage ranges are contiguous by
	// construction, so one pass over fixed collects first/count for every
	// segment.
	type cover struct{ first, count uint64 }
	covers := make(map[pmem.Addr]*cover, len(segs))
	for i := uint64(0); i < n; i++ {
		if c := covers[fixed[i]]; c != nil {
			c.count++
		} else {
			covers[fixed[i]] = &cover{first: i, count: 1}
		}
	}
	for _, s := range segs {
		first, count := uint64(0), uint64(0)
		if c := covers[s.addr]; c != nil {
			first, count = c.first, c.count
		}
		if count == 0 || count&(count-1) != 0 {
			return fmt.Errorf("core: recovery: segment %#x covers %d entries", s.addr, count)
		}
		l := g - uint8(bits.TrailingZeros64(count))
		pat := first >> (g - l)
		if l != s.l || pat != s.pat {
			segSetMeta(p, nil, s.addr, l, pat)
		}
		for i := 0; i < totalBuckets; i++ {
			p.StoreU64(segBucket(s.addr, i).Add(bkOffVersion), 0)
		}
		// Clear any split-progress marker, finishing or rolling back the
		// half-migrated split it describes. If the marker's sibling made it
		// into the directory, the claiming pass above already completed the
		// flips and metadata and the record sweeps below drop the moved
		// records' leftovers — the split rolls forward. Otherwise the
		// sibling was never published: the directory still routes every key
		// to this segment (which kept all its records; migration only
		// reads), so the marker clear rolls the split back and the sibling
		// block is leaked, like an unpublished block under the old
		// protocol.
		if p.LoadU64(s.addr.Add(segOffSplit)) != 0 {
			p.StoreU64(s.addr.Add(segOffSplit), 0)
			p.Persist(s.addr.Add(segOffSplit), 8)
		}
	}

	// Validate the record log's chunk chain and snapshot the sweep frontier
	// (O(#chunks)); the blob-level sweep itself is the background pass. Then
	// mirror the reconciled directory into the DRAM cache — the last
	// O(directory) step — and build the deferred-work side table.
	if clean {
		t.count.Store(int64(p.ReadU64(rootAddr.Add(rootOffCount))))
	}
	if err := t.vlog.RecoverChunks(); err != nil {
		return err
	}
	t.cacheRebuild()

	lr := &lazyRecovery{
		clean:   clean,
		g:       g,
		fixed:   fixed,
		openAt:  rstart,
		pending: make(map[pmem.Addr]*segRecoverState, len(segs)),
		order:   make([]pmem.Addr, 0, len(segs)),
		refs:    make(map[pmem.Addr]struct{}),
	}
	for _, s := range segs {
		lr.pending[s.addr] = &segRecoverState{}
		lr.order = append(lr.order, s.addr)
	}
	lr.remaining.Store(int64(len(segs)))
	t.lazy.Store(lr)
	end := obs.Now()
	t.recordRecoveryPhase(phaseDir, obs.PhaseDirectory, rstart, end)
	t.met.recoveryOpenNS.Store(end - rstart)
	return nil
}

// dedupeSegment removes all but the first copy of any key appearing twice
// in the segment, comparing *canonical* keys (an inline record's 8-byte
// little-endian key, an indirect record's blob key bytes): an interrupted
// displacement duplicates a record verbatim, but an interrupted
// representation-converting update leaves the same user key once inline
// and once as a blob pointer. segSweep's scan order matches lookup order
// (normal buckets ascending, then stash), so the surviving copy is the one
// lookups would return. This is the one recovery pass that dereferences
// blobs — recovery is already O(data).
func (t *Table) dedupeSegment(seg pmem.Addr) {
	seenKeys := make(map[string]bool)
	var buf [8]byte
	segSweep(t.pool, seg, t.seed, func(_ hashfn.Parts, kv pmem.KV) bool {
		var k string
		if recIsIndirect(kv.Key) {
			k = string(t.vlog.KeyBytes(recBlobAddr(kv.Key)))
		} else {
			binary.LittleEndian.PutUint64(buf[:], kv.Key)
			k = string(buf[:])
		}
		if seenKeys[k] {
			return true
		}
		seenKeys[k] = true
		return false
	})
}

// sweepStashGhosts deletes stash records that no home bucket references:
// neither a tracking slot nor a positive overflow count points at them, so
// no lookup can ever see them and the slot would leak forever.
func (t *Table) sweepStashGhosts(seg pmem.Addr) {
	p := t.pool
	for j := 0; j < stashBuckets; j++ {
		sa := segBucket(seg, normalBuckets+j)
		m := p.LoadU64(sa.Add(bkOffMeta))
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			parts := recSplitParts(p.ReadKV(recordAddr(sa, slot)), t.seed)
			home := segBucket(seg, int(parts.BucketIndex(bucketBits)))
			if findTrackedSlot(p, home, parts.FP, j) >= 0 {
				continue
			}
			if metaOvCount(p.QuietLoadU64(home.Add(bkOffMeta))) > 0 {
				continue
			}
			bucketDeleteLocked(p, nil, sa, normalBuckets+j, slot, true)
		}
	}
}
