package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"dash/internal/pmem"
)

func varKey(i int, klen int) []byte {
	k := make([]byte, klen)
	binary.LittleEndian.PutUint64(k, uint64(i))
	for j := 8; j < klen; j++ {
		k[j] = byte(i * 31 / (j + 1))
	}
	return k
}

func varVal(i int, vlen int) []byte {
	v := make([]byte, vlen)
	for j := range v {
		v[j] = byte(i + j*7)
	}
	return v
}

// TestVarRoundtrip inserts records across the 16–128B key/value range,
// forcing multiple splits, and verifies every record's exact bytes, then
// deletes half and re-verifies.
func TestVarRoundtrip(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{})
	const n = 4000
	for i := 0; i < n; i++ {
		klen := 16 + i%113
		vlen := 16 + (i*37)%113
		if err := tbl.InsertB(varKey(i, klen), varVal(i, vlen)); err != nil {
			t.Fatalf("InsertB %d: %v", i, err)
		}
	}
	if got := tbl.Count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if s := tbl.Stats(); s.Splits == 0 || s.LogLiveBlobs != n {
		t.Fatalf("expected splits and %d live blobs, got %+v", n, s)
	}
	for i := 0; i < n; i++ {
		klen := 16 + i%113
		vlen := 16 + (i*37)%113
		v, ok := tbl.GetB(varKey(i, klen))
		if !ok {
			t.Fatalf("GetB %d: missing", i)
		}
		if !bytes.Equal(v, varVal(i, vlen)) {
			t.Fatalf("GetB %d: wrong value", i)
		}
	}
	if _, ok := tbl.GetB(varKey(n+1, 40)); ok {
		t.Fatal("GetB found a never-inserted key")
	}
	for i := 0; i < n; i += 2 {
		if !tbl.DeleteB(varKey(i, 16+i%113)) {
			t.Fatalf("DeleteB %d: missing", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := tbl.GetB(varKey(i, 16+i%113))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after deletes, GetB(%d) = %v, want %v", i, ok, want)
		}
	}
	if got, want := tbl.Count(), int64(n/2); got != want {
		t.Fatalf("count after deletes = %d, want %d", got, want)
	}
}

// TestVarUpdateCOW updates variable records with values of different
// lengths (copy-on-write with length change) and checks freed blobs are
// recycled through the log's free list.
func TestVarUpdateCOW(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{})
	const n = 500
	for i := 0; i < n; i++ {
		if err := tbl.InsertB(varKey(i, 24), varVal(i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= 3; round++ {
		for i := 0; i < n; i++ {
			nv := varVal(i+round*1000, 16+(i+round)%100)
			ok, err := tbl.UpdateB(varKey(i, 24), nv)
			if err != nil || !ok {
				t.Fatalf("UpdateB %d round %d = %v, %v", i, round, ok, err)
			}
			if got, ok := tbl.GetB(varKey(i, 24)); !ok || !bytes.Equal(got, nv) {
				t.Fatalf("GetB %d after update: ok=%v", i, ok)
			}
		}
	}
	if ok, err := tbl.UpdateB(varKey(n+5, 24), []byte("x")); ok || err != nil {
		t.Fatalf("UpdateB of absent key = %v, %v", ok, err)
	}
	tbl.Close() // drain epochs so retired blobs reach the free list
	if s := tbl.Stats(); s.LogLiveBlobs != n || s.LogFreeBytes == 0 {
		t.Fatalf("after COW churn: %+v, want %d live blobs and a non-empty free list", s, n)
	}
}

// TestVarU64Interop drives the same keys through both APIs: a uint64 key
// and its 8-byte little-endian encoding are one key, whatever
// representation the record currently uses.
func TestVarU64Interop(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{})

	// Inline-inserted record, read/updated through the []byte API.
	if err := tbl.Insert(42, 4242); err != nil {
		t.Fatal(err)
	}
	k42 := make([]byte, 8)
	binary.LittleEndian.PutUint64(k42, 42)
	if v, ok := tbl.GetB(k42); !ok || binary.LittleEndian.Uint64(v) != 4242 {
		t.Fatalf("GetB(le(42)) = %x, %v", v, ok)
	}
	if err := tbl.InsertB(k42, []byte("whatever")); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("InsertB duplicate of inline key: %v", err)
	}
	// 8-byte update stays inline; long update converts the representation.
	if ok, err := tbl.UpdateB(k42, []byte("eight_by")); !ok || err != nil {
		t.Fatalf("8B UpdateB: %v %v", ok, err)
	}
	if v, _ := tbl.Get(42); v != binary.LittleEndian.Uint64([]byte("eight_by")) {
		t.Fatalf("Get(42) after 8B update = %#x", v)
	}
	long := bytes.Repeat([]byte{0xAB}, 60)
	if ok, err := tbl.UpdateB(k42, long); !ok || err != nil {
		t.Fatalf("converting UpdateB: %v %v", ok, err)
	}
	if v, ok := tbl.GetB(k42); !ok || !bytes.Equal(v, long) {
		t.Fatal("GetB after conversion lost the value")
	}
	if v, ok := tbl.Get(42); !ok || v != binary.LittleEndian.Uint64(long[:8]) {
		t.Fatalf("Get(42) fixed-width view after conversion = %#x, %v", v, ok)
	}
	// Back to a u64-sized value via the u64 API: copy-on-write, record
	// stays indirect, both views agree.
	if ok, err := tbl.Update(42, 777); !ok || err != nil {
		t.Fatal("u64 Update on indirect record reported missing")
	}
	if v, ok := tbl.Get(42); !ok || v != 777 {
		t.Fatalf("Get(42) = %d, %v", v, ok)
	}
	if !tbl.Delete(42) {
		t.Fatal("Delete(42) reported missing")
	}
	if _, ok := tbl.GetB(k42); ok {
		t.Fatal("GetB found deleted key")
	}

	// Bit-63 uint64 keys route through the log transparently.
	hi := uint64(1)<<63 | 12345
	if err := tbl.Insert(hi, 99); err != nil {
		t.Fatal(err)
	}
	if v, ok := tbl.Get(hi); !ok || v != 99 {
		t.Fatalf("Get(bit63 key) = %d, %v", v, ok)
	}
	if ok, err := tbl.Update(hi, 100); !ok || err != nil {
		t.Fatal("Update(bit63 key) missing")
	}
	if v, _ := tbl.Get(hi); v != 100 {
		t.Fatalf("Get(bit63 key) after update = %d", v)
	}
	khi := make([]byte, 8)
	binary.LittleEndian.PutUint64(khi, hi)
	if v, ok := tbl.GetB(khi); !ok || binary.LittleEndian.Uint64(v) != 100 {
		t.Fatalf("GetB(le(bit63 key)) = %x, %v", v, ok)
	}
	if !tbl.Delete(hi) {
		t.Fatal("Delete(bit63 key) missing")
	}

	// An 8/8 InsertB with bit 63 clear takes the inline representation and
	// is visible through the u64 API.
	kb := make([]byte, 8)
	binary.LittleEndian.PutUint64(kb, 7777)
	vb := make([]byte, 8)
	binary.LittleEndian.PutUint64(vb, 8888)
	if err := tbl.InsertB(kb, vb); err != nil {
		t.Fatal(err)
	}
	if v, ok := tbl.Get(7777); !ok || v != 8888 {
		t.Fatalf("Get(7777) = %d, %v", v, ok)
	}
	if err := tbl.Insert(7777, 1); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("Insert duplicate of InsertB key: %v", err)
	}
	tbl.Close() // drain epochs so the deleted records' blob frees land
	if s := tbl.Stats(); s.LogLiveBlobs != 0 {
		t.Fatalf("inline-only table holds %d live blobs", s.LogLiveBlobs)
	}
}

func TestVarRecordTooLarge(t *testing.T) {
	tbl := newTestTable(t, 8<<20, Options{})
	cases := []struct{ k, v []byte }{
		{nil, []byte("v")},
		{make([]byte, pmem.MaxVarKeyLen+1), []byte("v")},
		{[]byte("key"), make([]byte, pmem.MaxVarValueLen+1)},
	}
	for i, c := range cases {
		if err := tbl.InsertB(c.k, c.v); !errors.Is(err, ErrRecordTooLarge) {
			t.Fatalf("case %d: InsertB err = %v, want ErrRecordTooLarge", i, err)
		}
	}
	if err := tbl.InsertB([]byte("fits"), make([]byte, pmem.MaxVarValueLen)); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
	if ok, err := tbl.UpdateB([]byte("fits"), make([]byte, pmem.MaxVarValueLen+1)); ok || !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized UpdateB = %v, %v", ok, err)
	}
	if v, ok := tbl.GetB([]byte("fits")); !ok || len(v) != pmem.MaxVarValueLen {
		t.Fatalf("record damaged by rejected update: ok=%v len=%d", ok, len(v))
	}
	if got := tbl.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

// TestVarCrashReopen closes the loop persistence-wise: a table full of
// variable records survives Snapshot/Open with exact bytes.
func TestVarCrashReopen(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 32 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tbl.InsertB(varKey(i, 16+i%100), varVal(i, 16+i%100)); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash()
	tbl2, err := Open(pool)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer tbl2.Close()
	if got := tbl2.Count(); got != n {
		t.Fatalf("recovered count = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, ok := tbl2.GetB(varKey(i, 16+i%100))
		if !ok || !bytes.Equal(v, varVal(i, 16+i%100)) {
			t.Fatalf("record %d damaged across crash (ok=%v)", i, ok)
		}
	}
}

// TestVarConcurrent hammers the variable-length path from several
// goroutines (inserts, reads, updates, deletes over disjoint key ranges
// with shared readers) — primarily a -race exercise of the lock-free blob
// dereference and epoch-deferred blob reuse.
func TestVarConcurrent(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{})
	const (
		workers = 4
		perW    = 1200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * 1_000_000
			for i := 0; i < perW; i++ {
				id := base + i
				k := varKey(id, 16+id%100)
				if err := tbl.InsertB(k, varVal(id, 20)); err != nil {
					t.Errorf("InsertB %d: %v", id, err)
					return
				}
				if i%3 == 0 {
					if ok, err := tbl.UpdateB(k, varVal(id+7, 16+i%90)); !ok || err != nil {
						t.Errorf("UpdateB %d: %v %v", id, ok, err)
						return
					}
				}
				if i%5 == 0 {
					if !tbl.DeleteB(k) {
						t.Errorf("DeleteB %d: missing", id)
						return
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			var buf []byte
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := (r*31 + i) % (workers * 1_000_000)
				var ok bool
				buf, ok = tbl.GetBAppend(buf[:0], varKey(id, 16+id%100))
				_ = ok
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	want := int64(workers * (perW - (perW+4)/5))
	if got := tbl.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			id := w*1_000_000 + i
			v, ok := tbl.GetB(varKey(id, 16+id%100))
			if i%5 == 0 {
				if ok {
					t.Fatalf("deleted key %d still visible", id)
				}
				continue
			}
			if !ok {
				t.Fatalf("key %d lost", id)
			}
			want := varVal(id, 20)
			if i%3 == 0 {
				want = varVal(id+7, 16+i%90)
			}
			if !bytes.Equal(v, want) {
				t.Fatalf("key %d has wrong value", id)
			}
		}
	}
}

// TestVarSplitMigration fills one initial segment's hash subtree with
// variable records so it must split repeatedly, checking no blob-backed
// record is lost or corrupted by migration (which copies slot words only).
func TestVarSplitMigration(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{InitialDepth: 1})
	inserted := map[int]bool{}
	for i, done := 0, 0; done < slotsPerSegment+300 && i < 1<<22; i++ {
		k := varKey(i, 16+i%64)
		pk := tbl.probeBytes(k)
		if pk.parts.DirIndex(1) != 0 {
			continue
		}
		if err := tbl.InsertB(k, varVal(i, 48)); err != nil {
			t.Fatalf("InsertB %d: %v", i, err)
		}
		inserted[i] = true
		done++
	}
	if s := tbl.Stats(); s.Splits == 0 {
		t.Fatal("fill never split")
	}
	for i := range inserted {
		v, ok := tbl.GetB(varKey(i, 16+i%64))
		if !ok || !bytes.Equal(v, varVal(i, 48)) {
			t.Fatalf("record %d damaged by split (ok=%v)", i, ok)
		}
	}
}

func BenchmarkVarInsertB(b *testing.B) {
	tbl, err := New(1<<30, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var k, v []byte
	for i := 0; i < b.N; i++ {
		k = append(k[:0], varKey(i, 16+i%100)...)
		v = append(v[:0], varVal(i, 16+i%100)...)
		if err := tbl.InsertB(k, v); err != nil {
			b.Fatal(err)
		}
	}
}
