package core

import (
	"dash/internal/pmem"
)

// Directory layer (§4.3, §4.7). The directory is one PM block: a header
// cacheline holding the global depth, followed by 2^depth segment pointers.
// It is the crash-consistent source of truth for routing — written through
// on every split publish and doubling, read back by recovery — but it is
// not the hot path: operations route through the DRAM-resident mirror in
// dircache.go and consult this block only to validate or repair a route.
// Indexing uses the hash's most-significant bits, so all entries covering
// one segment are contiguous — the property that lets a split publish its
// new segment by flipping the upper half of a contiguous entry range, and
// lets recovery re-derive every segment's coverage from the directory alone.
//
// The global depth lives inside the block rather than in the table root so
// that doubling is a single atomic root-pointer flip: the new block (new
// depth + duplicated entries) is fully persisted before the root's dirAddr
// is switched, making the depth and the entries change together or not at
// all across a crash.
const (
	dirHeaderSize = 64
	dirOffDepth   = 0
)

func dirSize(depth uint8) uint64 {
	return dirHeaderSize + uint64(8)<<depth
}

func dirDepth(p *pmem.Pool, dir pmem.Addr) uint8 {
	return uint8(p.LoadU64(dir.Add(dirOffDepth)))
}

func dirEntryAddr(dir pmem.Addr, idx uint64) pmem.Addr {
	return dir.Add(dirHeaderSize + 8*idx)
}

func dirLoadEntry(p *pmem.Pool, dir pmem.Addr, idx uint64) pmem.Addr {
	return pmem.Addr(p.LoadU64(dirEntryAddr(dir, idx)))
}

func dirStoreEntry(p *pmem.Pool, dir pmem.Addr, idx uint64, seg pmem.Addr) {
	p.StoreU64(dirEntryAddr(dir, idx), uint64(seg))
}

// dirInitFresh formats a directory block over the given segments and
// persists it.
func dirInitFresh(p *pmem.Pool, dir pmem.Addr, depth uint8, segs []pmem.Addr) {
	p.StoreU64(dir.Add(dirOffDepth), uint64(depth))
	for i, s := range segs {
		dirStoreEntry(p, dir, uint64(i), s)
	}
	p.Persist(dir, dirSize(depth))
}

// dirInitDoubled formats newDir as oldDir with depth+1: every old entry is
// duplicated so each segment initially covers twice the entries, leaving
// every segment's local depth unchanged. Persists the whole block; the
// caller then flips the root pointer.
func dirInitDoubled(p *pmem.Pool, newDir, oldDir pmem.Addr) {
	depth := dirDepth(p, oldDir)
	p.StoreU64(newDir.Add(dirOffDepth), uint64(depth)+1)
	n := uint64(1) << depth
	for i := uint64(0); i < n; i++ {
		seg := dirLoadEntry(p, oldDir, i)
		dirStoreEntry(p, newDir, 2*i, seg)
		dirStoreEntry(p, newDir, 2*i+1, seg)
	}
	p.Persist(newDir, dirSize(depth+1))
}

// dirCoverage returns the contiguous entry range [start, start+span) that a
// segment with the given local depth and pattern owns under global depth.
func dirCoverage(global, local uint8, pattern uint64) (start, span uint64) {
	shift := uint(global - local)
	return pattern << shift, uint64(1) << shift
}
