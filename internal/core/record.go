package core

import (
	"encoding/binary"

	"dash/internal/hashfn"
	"dash/internal/pmem"
)

// Record representation (§4.1's long-key scheme). A bucket slot is still
// one fixed 16-byte record — the layout, bitmap commit point and
// fingerprint probe are untouched — but the two words now carry one of two
// formats, discriminated by bit 63 of word 0:
//
//	inline   (bit 63 = 0): word 0 = 8-byte key, word 1 = 8-byte value —
//	         the original fast path, kept for uint64 records whose key has
//	         bit 63 clear.
//	indirect (bit 63 = 1): word 0 = blob address in the PM record log
//	         (16-aligned, so its low 4 bits are free) packed with a 4-bit
//	         key-length class; word 1 = the key's full 64-bit hash.
//
// The indirect word 1 is what keeps every routing decision — split
// migration, sweeps, recovery — free of blob dereferences: a record's
// hash parts come from the record words alone (recSplitParts), so resize
// cost is independent of record size. Lookups dereference a blob only
// after the one-byte fingerprint AND the full stored hash match, i.e.
// essentially only on true hits.
//
// The key-length class is an extra pre-dereference filter: the exact key
// length when it fits in 4 bits (1..15), 0 meaning "16 bytes or longer".
//
// Because an inline record always has bit 63 clear and a uint64 key with
// bit 63 set therefore cannot be stored inline, such keys route through
// the log as 8-byte blobs; both representations of an 8-byte key are
// found by every probe, so the uint64 and []byte APIs are two views of
// one keyspace (a uint64 key is its 8-byte little-endian encoding, and
// hashfn guarantees HashU64(k) == Hash64(le(k))).

const (
	recIndirectBit = uint64(1) << 63
	recClassMask   = uint64(0xF)
	recBlobMask    = ^(recIndirectBit | recClassMask)
)

func recIsIndirect(w0 uint64) bool { return w0&recIndirectBit != 0 }

// recPack builds an indirect record's word 0 from a blob address and the
// key length.
func recPack(blob pmem.Addr, klen int) uint64 {
	return recIndirectBit | uint64(blob) | uint64(klenClass(klen))
}

func recBlobAddr(w0 uint64) pmem.Addr { return pmem.Addr(w0 & recBlobMask) }

func recClass(w0 uint64) int { return int(w0 & recClassMask) }

// klenClass compresses a key length into the 4-bit slot-word class: the
// exact length when it fits, else 0 ("long").
func klenClass(klen int) int {
	if klen < 16 {
		return klen
	}
	return 0
}

// recSameIdentity reports whether a record currently holding words (w0, w1)
// is still the logical record a lock-free scan captured as scannedW0 with
// hash scannedHash: exact word equality for inline records, stored-hash
// equality for indirect ones — a copy-on-write update flips an indirect
// record's word 0 to a new blob but never changes its key or hash, and the
// caller copies the current words, so identity must survive the flip.
func recSameIdentity(scannedW0, w0, w1, scannedHash uint64) bool {
	if !recIsIndirect(scannedW0) {
		return w0 == scannedW0
	}
	return recIsIndirect(w0) && w1 == scannedHash
}

// recHash returns the full hash of the record held in kv: read from the
// record itself for indirect records, recomputed from the inline key
// otherwise. This is the routing contract that keeps splits and sweeps
// from ever dereferencing blobs.
func recHash(kv pmem.KV, seed uint64) uint64 {
	if recIsIndirect(kv.Key) {
		return kv.Value
	}
	return hashfn.HashU64(kv.Key, seed)
}

// recSplitParts is recHash split into the engine's routing parts.
func recSplitParts(kv pmem.KV, seed uint64) hashfn.Parts {
	return hashfn.Split(recHash(kv, seed))
}

// probeKey is a representation-agnostic lookup key: precomputed hash parts
// plus the canonical key in whichever form the caller holds it. kb == nil
// is the uint64 fast path (canonically the 8-byte little-endian encoding
// of u); it materializes no byte slice — inline records compare words and
// indirect records compare through VarLog.KeyEqualsU64.
type probeKey struct {
	parts hashfn.Parts
	kb    []byte // canonical key bytes; nil for the uint64 fast path
	u     uint64 // the key when kb == nil
	path  uint8  // obs path tag: which tier served the probe (searchOpt)
}

func (t *Table) probeU64(key uint64) probeKey {
	return probeKey{parts: t.parts(key), u: key}
}

func (t *Table) probeBytes(key []byte) probeKey {
	return probeKey{parts: hashfn.Split(hashfn.Hash64(key, t.seed)), kb: key}
}

// keyBytes returns the probe's canonical key bytes, using buf for the
// uint64 fast path.
func (pk *probeKey) keyBytes(buf *[8]byte) []byte {
	if pk.kb != nil {
		return pk.kb
	}
	binary.LittleEndian.PutUint64(buf[:], pk.u)
	return buf[:]
}

func (pk *probeKey) keyLen() int {
	if pk.kb != nil {
		return len(pk.kb)
	}
	return 8
}

// recProbe checks the record at ra against pk and returns the record words
// on a match. The word-0 load is charged (it pays for the record's
// cacheline, as the fixed-format probe did); word 1 shares that line. The
// blob dereference — reached only when fingerprint, stored hash and length
// class all match — is charged inside the VarLog accessors.
func recProbe(p *pmem.Pool, vl *pmem.VarLog, ra pmem.Addr, pk *probeKey) (pmem.KV, bool) {
	w0 := p.ReadKey(ra)
	if !recIsIndirect(w0) {
		match := false
		if pk.kb == nil {
			match = w0 == pk.u
		} else if len(pk.kb) == 8 {
			match = binary.LittleEndian.Uint64(pk.kb) == w0
		}
		if !match {
			return pmem.KV{}, false
		}
		return pmem.KV{Key: w0, Value: p.QuietLoadU64(ra.Add(8))}, true
	}
	w1 := p.QuietLoadU64(ra.Add(8))
	if w1 != pk.parts.Hash {
		return pmem.KV{}, false
	}
	if c := recClass(w0); c != 0 && c != klenClass(pk.keyLen()) {
		return pmem.KV{}, false
	}
	blob := recBlobAddr(w0)
	if pk.kb == nil {
		if !vl.KeyEqualsU64(blob, pk.u) {
			return pmem.KV{}, false
		}
	} else if !vl.KeyEquals(blob, pk.kb) {
		return pmem.KV{}, false
	}
	return pmem.KV{Key: w0, Value: w1}, true
}

// mirRecMatch is recProbe against mirrored record words — the hash-filter
// hook of the segment filter mirror (segfilter.go). Inline records compare
// entirely in DRAM; an indirect candidate is pre-filtered by the mirrored
// full key hash and length class (also DRAM) and only then verified against
// the blob's key bytes, which remains a PM read: a 64-bit hash match is not
// key equality, and skipping the byte compare would return wrong records on
// hash collisions. That one dereference uses KeyEqualsPrefetch, charging
// the whole blob as a single streaming read; blobHot=true tells the caller
// the value bytes are already paid for (extract with recValueU64Opt /
// recAppendValueOpt).
func mirRecMatch(vl *pmem.VarLog, w0, w1 uint64, pk *probeKey) (pmem.KV, bool, bool) {
	if !recIsIndirect(w0) {
		match := false
		if pk.kb == nil {
			match = w0 == pk.u
		} else if len(pk.kb) == 8 {
			match = binary.LittleEndian.Uint64(pk.kb) == w0
		}
		if !match {
			return pmem.KV{}, false, false
		}
		return pmem.KV{Key: w0, Value: w1}, false, true
	}
	if w1 != pk.parts.Hash {
		return pmem.KV{}, false, false
	}
	if c := recClass(w0); c != 0 && c != klenClass(pk.keyLen()) {
		return pmem.KV{}, false, false
	}
	blob := recBlobAddr(w0)
	if pk.kb == nil {
		if !vl.KeyEqualsPrefetchU64(blob, pk.u) {
			return pmem.KV{}, false, false
		}
	} else if !vl.KeyEqualsPrefetch(blob, pk.kb) {
		return pmem.KV{}, false, false
	}
	return pmem.KV{Key: w0, Value: w1}, true, true
}

// recValueU64 extracts the uint64 view of a matched record's value.
func recValueU64(vl *pmem.VarLog, kv pmem.KV) uint64 {
	if recIsIndirect(kv.Key) {
		return vl.ValueU64(recBlobAddr(kv.Key))
	}
	return kv.Value
}

// recAppendValue appends a matched record's value bytes to dst (the
// little-endian encoding for inline records).
func recAppendValue(vl *pmem.VarLog, dst []byte, kv pmem.KV) []byte {
	if recIsIndirect(kv.Key) {
		return vl.AppendValue(dst, recBlobAddr(kv.Key))
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], kv.Value)
	return append(dst, buf[:]...)
}

// recValueU64Opt is recValueU64 aware of a prefetched blob: blobHot means
// the probe already charged the whole blob, so extraction is quiet.
func recValueU64Opt(vl *pmem.VarLog, kv pmem.KV, blobHot bool) uint64 {
	if recIsIndirect(kv.Key) {
		if blobHot {
			return vl.QuietValueU64(recBlobAddr(kv.Key))
		}
		return vl.ValueU64(recBlobAddr(kv.Key))
	}
	return kv.Value
}

// recAppendValueOpt is recAppendValue aware of a prefetched blob.
func recAppendValueOpt(vl *pmem.VarLog, dst []byte, kv pmem.KV, blobHot bool) []byte {
	if recIsIndirect(kv.Key) {
		if blobHot {
			return vl.QuietAppendValue(dst, recBlobAddr(kv.Key))
		}
		return vl.AppendValue(dst, recBlobAddr(kv.Key))
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], kv.Value)
	return append(dst, buf[:]...)
}

// probeOfRecord rebuilds a probeKey for a record already stored in the
// table — the migration duplicate check probes the sibling by user key,
// which for indirect records means reading the blob's key bytes (rare:
// only when writer assists raced the copy loop). buf is reused scratch.
func probeOfRecord(vl *pmem.VarLog, kv pmem.KV, parts hashfn.Parts, buf []byte) (probeKey, []byte) {
	if !recIsIndirect(kv.Key) {
		return probeKey{parts: parts, u: kv.Key}, buf
	}
	buf = append(buf[:0], vl.KeyBytes(recBlobAddr(kv.Key))...)
	return probeKey{parts: parts, kb: buf}, buf
}
