package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"dash/internal/obs"
	"dash/internal/pmem"
)

// TestTraceSplitLifecycle drives a seeded insert run past several splits and
// reconstructs at least one complete lifecycle from the flight recorder:
// trigger → CAS → migrate → publish → sweep for the same source segment,
// with non-decreasing timestamps (the PR's acceptance criterion).
func TestTraceSplitLifecycle(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{})
	for k := uint64(0); k < 20_000; k++ {
		if err := tbl.Insert(k, k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if tbl.Stats().Splits == 0 {
		t.Fatal("run produced no splits; grow the insert count")
	}

	ev := tbl.TraceSnapshot()
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("trace not time-ordered at %d: %v after %v", i, ev[i], ev[i-1])
		}
	}

	// Walk the ordered trace advancing a per-segment stage machine; a
	// segment reaching stage 5 saw the full lifecycle in order. (The control
	// lane holds thousands of slots, so none of these rare events wrapped.)
	want := []obs.EventType{
		obs.EvSplitTrigger, obs.EvSplitCAS, obs.EvSplitMigrate,
		obs.EvSplitPublish, obs.EvSplitSweep,
	}
	stage := map[uint64]int{}
	complete := 0
	for _, e := range ev {
		switch e.Type {
		case obs.EvSplitTrigger, obs.EvSplitCAS, obs.EvSplitMigrate,
			obs.EvSplitPublish, obs.EvSplitSweep:
			if want[stage[e.A]%len(want)] == e.Type {
				stage[e.A]++
				if stage[e.A]%len(want) == 0 {
					complete++
				}
			}
		}
	}
	if complete == 0 {
		t.Fatalf("no complete split lifecycle in %d events", len(ev))
	}

	// The registry saw the same splits the trace did.
	snap := tbl.Metrics().Snapshot()
	if snap.Gauges["split.completed"] != int64(tbl.Stats().Splits) {
		t.Fatalf("registry split.completed = %d, stats = %d",
			snap.Gauges["split.completed"], tbl.Stats().Splits)
	}
	if snap.Hists["split.migrate_ns"].Count != uint64(tbl.Stats().Splits) {
		t.Fatalf("split.migrate_ns count = %d, want %d",
			snap.Hists["split.migrate_ns"].Count, tbl.Stats().Splits)
	}
}

// TestObsConcurrentWithWriters runs Stats(), TraceSnapshot() and registry
// snapshots concurrently with a live insert/read/delete mix — the -race
// proof that observing the table never requires quiescing it.
func TestObsConcurrentWithWriters(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w) << 32; !stop.Load(); k++ {
				if err := tbl.Insert(k, k); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				tbl.Get(k)
				if k%4 == 0 {
					tbl.Delete(k)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		st := tbl.Stats()
		if st.Count < 0 {
			t.Errorf("negative count %d", st.Count)
		}
		ev := tbl.TraceSnapshot()
		for j := 1; j < len(ev); j++ {
			if ev[j].TS < ev[j-1].TS {
				t.Errorf("trace not ordered under load")
			}
		}
		tbl.Metrics().Snapshot()
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced, the registry and Stats() must agree: one source of truth.
	st, snap := tbl.Stats(), tbl.Metrics().Snapshot()
	if snap.Counters["dircache.hits"] != st.DirCacheHits {
		t.Fatalf("dircache.hits: registry %d, stats %d", snap.Counters["dircache.hits"], st.DirCacheHits)
	}
	if snap.Counters["epoch.retired"] != st.EpochRetired {
		t.Fatalf("epoch.retired: registry %d, stats %d", snap.Counters["epoch.retired"], st.EpochRetired)
	}
	if uint64(snap.Gauges["table.count"]) != uint64(st.Count) {
		t.Fatalf("table.count: registry %d, stats %d", snap.Gauges["table.count"], st.Count)
	}
}

// TestReadPathTraceTags checks EvGet events carry the path that served them:
// mirror hits for present keys, DRAM-vouched negatives for absent ones.
func TestReadPathTraceTags(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{})
	for k := uint64(0); k < 100; k++ {
		if err := tbl.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		if _, ok := tbl.Get(k); !ok {
			t.Fatalf("key %d missing", k)
		}
		tbl.Get(k + 1<<40) // absent
	}
	var hit, neg int
	for _, e := range tbl.TraceSnapshot() {
		if e.Type != obs.EvGet {
			continue
		}
		switch e.Tag {
		case obs.PathMirrorHit:
			hit++
		case obs.PathMirrorNeg:
			neg++
		}
	}
	if hit < 100 || neg < 100 {
		t.Fatalf("EvGet tags: %d mirror hits, %d mirror negatives; want >= 100 each", hit, neg)
	}
}

// TestRecoveryPhaseTimings reopens a durable image and checks the recovery
// phases are timed, exposed through Stats(), the registry, and the trace.
func TestRecoveryPhaseTimings(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{})
	for k := uint64(0); k < 5000; k++ {
		if err := tbl.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Stats().RecoveryTotalNS != 0 {
		t.Fatal("freshly created table reports recovery time")
	}

	pool, err := pmem.OpenSnapshot(tbl.pool.Snapshot(), pmem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Count() != tbl.Count() {
		t.Fatalf("reopened count %d, want %d", rt.Count(), tbl.Count())
	}

	st := rt.Stats()
	if st.RecoveryTotalNS <= 0 {
		t.Fatal("recovery total not recorded")
	}
	phases := st.RecoveryDirNS + st.RecoverySegmentsNS + st.RecoveryLogNS + st.RecoveryMirrorsNS
	if phases <= 0 || phases > st.RecoveryTotalNS {
		t.Fatalf("phase sum %d vs total %d", phases, st.RecoveryTotalNS)
	}
	if g := rt.Metrics().Snapshot().Gauges["recovery.total_ns"]; g != st.RecoveryTotalNS {
		t.Fatalf("registry recovery.total_ns = %d, stats = %d", g, st.RecoveryTotalNS)
	}

	// The reopened table's trace starts with the four recovery phases.
	seen := map[uint8]bool{}
	for _, e := range rt.TraceSnapshot() {
		if e.Type == obs.EvRecovery {
			seen[e.Tag] = true
		}
	}
	for _, tag := range []uint8{obs.PhaseDirectory, obs.PhaseSegments, obs.PhaseLog, obs.PhaseMirrors} {
		if !seen[tag] {
			t.Fatalf("recovery phase %s missing from trace", obs.TagName(tag))
		}
	}
}

// TestMutatorOutcomeTags checks insert/update/delete completions carry their
// outcome tags.
func TestMutatorOutcomeTags(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{})
	if err := tbl.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(1, 2); err != ErrKeyExists {
		t.Fatalf("dup insert: %v", err)
	}
	if ok, _ := tbl.Update(2, 9); ok {
		t.Fatal("update of absent key succeeded")
	}
	if tbl.Delete(3) {
		t.Fatal("delete of absent key succeeded")
	}
	want := map[obs.EventType]uint8{
		obs.EvUpdate: obs.OutcomeMissing,
		obs.EvDelete: obs.OutcomeMissing,
	}
	var dup bool
	for _, e := range tbl.TraceSnapshot() {
		if e.Type == obs.EvInsert && e.Tag == obs.OutcomeExists {
			dup = true
		}
		if tag, ok := want[e.Type]; ok && e.Tag == tag {
			delete(want, e.Type)
		}
	}
	if !dup || len(want) != 0 {
		t.Fatalf("missing outcome tags: dup=%v remaining=%v", dup, want)
	}
}
