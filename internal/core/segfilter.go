package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"dash/internal/hashfn"
	"dash/internal/obs"
	"dash/internal/pmem"
)

// DRAM-resident per-segment filter mirror — the dirCache pattern (PR 3)
// pushed down one layer. The PM buckets remain the crash-consistent source
// of truth, but on the read path they are mostly metadata traffic: a lookup
// used to charge the home bucket's header line, one line per
// fingerprint-matched record, and often the neighbor bucket's lines too,
// before reaching the one thing that actually answers the query. All of
// that is reconstructible, so every segment carries a mirror of its buckets
// in ordinary Go memory:
//
//   - per bucket: a shadow of the seqlock version (odd while a locked
//     mutator is mid-flight), the meta word (allocation bitmap + overflow
//     tracking), both fingerprint words, and all 14 record word pairs —
//     for inline records the key and value themselves, for indirect
//     records the packed blob address and the stored full key hash;
//   - per segment: the header's (local depth, pattern) claim, which lets a
//     negative lookup validate its route without touching the PM directory
//     or segment header.
//
// Reads therefore probe entirely in DRAM and dereference PM only for
// record payloads that genuinely live there: an inline hit or any miss
// costs zero charged PM lines, and an indirect hit charges exactly one
// streaming read of its blob. Writers keep probing PM under their bucket
// locks (the mirror never becomes load-bearing for mutation decisions, so
// a poisoned mirror cannot corrupt PM) and write every mutation through to
// the mirror while the bucket's shadow version is odd.
//
// Coherence mirrors the dirCache discipline:
//
//   - write-through from every locked mutator (insert, delete, in-place
//     and copy-on-write update, displacement, stash spill and untrack,
//     the publish sweep, and the split metadata bump), all inside the
//     bucket's PM lock with the shadow version odd;
//   - a split's sibling gets its mirror installed before the split marker
//     is persisted, i.e. before any migrator or assisting writer can touch
//     the sibling, so the sibling's mirror is complete the moment the
//     publish makes the segment reachable;
//   - lock-free readers validate against the shadow seqlock: a scan is
//     trusted only if the bucket's shadow version was even and unchanged
//     across it, which makes a stable mirror scan exactly as consistent
//     as the PM scan it replaces;
//   - negatives additionally check the mirrored (depth, pattern) claim and
//     re-read the route afterwards — the DRAM equivalent of
//     validateRoute. If the DRAM state cannot vouch for a miss, the
//     operation falls back to the PM path; if PM then says the route was
//     fine, the mirror itself must be stale and is repaired in place
//     (mirrorRepair, the cacheRepair of this layer);
//   - Create installs mirrors segment by segment; Open installs none — each
//     segment's mirror is built at its first-touch recovery (lazyrec.go),
//     one streaming read per segment off the restart critical path, and the
//     nil-means-bypass fallback below covers the window in between;
//   - a hash-sampled cross-check (mirrorMaybeCheck) compares the home
//     bucket's mirror against PM on ~1/1024 of mirror-served reads, so
//     even a divergence with no detectable symptom (a poisoned bitmap
//     yielding silent false negatives) is found and healed while costing
//     well under one PM byte per operation.
const (
	mirBkVersion = 0 // shadow seqlock: odd while the bucket's PM lock is held
	mirBkMeta    = 1 // mirror of the PM meta word (bitmap + overflow tracking)
	mirBkFPLo    = 2 // mirror of fingerprint word 2
	mirBkFPHi    = 3 // mirror of fingerprint word 3 (incl. stash indexes)
	mirBkRecords = 4 // 2 words per slot: the record's word 0 and word 1
	mirBkWords   = mirBkRecords + 2*slotsPerBucket

	// mirrorSamplePeriod is the default sampling period of the PM
	// cross-check: one mirror-served read in this many (selected by key
	// hash, so the check adds no shared counter to the hot path) pays a
	// few PM lines to compare its home bucket against the mirror.
	mirrorSamplePeriod = 1024
)

// segMirror is the DRAM mirror of one segment. The object is permanent for
// its segment address: repairs rewrite it in place, so a writer that
// fetched the pointer before a repair keeps writing through to the object
// being healed — each bucket's PM lock serializes the two.
type segMirror struct {
	depth   atomic.Uint64 // mirror of the segment header's local depth
	pattern atomic.Uint64 // mirror of the segment header's pattern
	w       [totalBuckets * mirBkWords]atomic.Uint64
}

// segMirrorBytes is the DRAM footprint one mirror adds, for Stats.
var segMirrorBytes = uint64(unsafe.Sizeof(segMirror{}))

func (m *segMirror) word(bi, off int) *atomic.Uint64 {
	return &m.w[bi*mirBkWords+off]
}

func (m *segMirror) recWord(bi, slot, j int) *atomic.Uint64 {
	return &m.w[bi*mirBkWords+mirBkRecords+2*slot+j]
}

// mirClaims is segClaims against the mirrored header words: does this
// segment's (depth, pattern) claim the key? Pure DRAM.
func mirClaims(mir *segMirror, parts hashfn.Parts) bool {
	return hashfn.SegmentIndex(parts.Hash, uint8(mir.depth.Load())) == mir.pattern.Load()
}

// segFilters is the table's mirror registry plus its observability
// counters. All counters are goroutine-sharded obs.Counters registered in
// the table's obs.Registry (initObs) under segfilter.* names, so the
// every-read increments cannot become a cross-thread hotspot.
type segFilters struct {
	m     sync.Map      // pmem.Addr (segment) → *segMirror
	bytes atomic.Uint64 // DRAM held by installed mirrors

	hits   *obs.Counter // reads served by a mirror (positive or validated miss)
	misses *obs.Counter // mirror probes that fell back to the PM path
	bypass *obs.Counter // reads that found no mirror installed (expected 0)
	checks *obs.Counter // sampled mirror-vs-PM cross-checks run
	heals  *obs.Counter // mirrors rebuilt in place after a failed cross-check
}

// mirror returns seg's installed mirror, or nil (the PM fallback then
// serves the operation and counts a bypass).
func (t *Table) mirror(seg pmem.Addr) *segMirror {
	if v, ok := t.filters.m.Load(seg); ok {
		return v.(*segMirror)
	}
	return nil
}

// mirrorInstall registers a fresh zeroed mirror for seg carrying the given
// header claim. Callers install before the segment becomes reachable
// (Create formats unpublished segments; a split installs the sibling's
// mirror before persisting the split marker), so no concurrent writer can
// hold a previous object for this address.
func (t *Table) mirrorInstall(seg pmem.Addr, depth uint8, pattern uint64) *segMirror {
	mir := &segMirror{}
	mir.depth.Store(uint64(depth))
	mir.pattern.Store(pattern)
	if _, loaded := t.filters.m.Load(seg); !loaded {
		t.filters.bytes.Add(segMirrorBytes)
	}
	t.filters.m.Store(seg, mir)
	return mir
}

// mirrorDrop forgets seg's mirror — the rollback path of a failed split,
// whose sibling is leaked. An assisting writer that already fetched the
// pointer may keep writing into the orphaned object; that is harmless,
// since nothing ever routes to the leaked segment again.
func (t *Table) mirrorDrop(seg pmem.Addr) {
	if _, loaded := t.filters.m.Load(seg); loaded {
		t.filters.m.Delete(seg)
		t.filters.bytes.Add(^(segMirrorBytes - 1))
	}
}

// mirrorFillBucket copies one bucket's PM words into the mirror. The
// caller owns the bucket (its PM lock, or single-threaded recovery) and
// has charged the bucket's header line; record lines are charged here as
// one streaming read up to the highest used slot, like every bucket scan.
func mirrorFillBucket(p *pmem.Pool, mir *segMirror, seg pmem.Addr, bi int) {
	ba := segBucket(seg, bi)
	m := p.QuietLoadU64(ba.Add(bkOffMeta))
	mir.word(bi, mirBkMeta).Store(m)
	mir.word(bi, mirBkFPLo).Store(p.QuietLoadU64(ba.Add(bkOffFPLo)))
	mir.word(bi, mirBkFPHi).Store(p.QuietLoadU64(ba.Add(bkOffFPHi)))
	touchRecordLines(p, ba, m)
	for slot := 0; slot < slotsPerBucket; slot++ {
		if !metaSlotUsed(m, slot) {
			mir.recWord(bi, slot, 0).Store(0)
			mir.recWord(bi, slot, 1).Store(0)
			continue
		}
		ra := recordAddr(ba, slot)
		mir.recWord(bi, slot, 0).Store(p.QuietLoadU64(ra))
		mir.recWord(bi, slot, 1).Store(p.QuietLoadU64(ra.Add(8)))
	}
}

// mirrorRepair reconciles seg's mirror with PM truth in place, bucket by
// bucket under each bucket's PM lock — cacheRepair one layer down. The
// header claim is copied first, under bucket 0's lock: a publish mutates
// the header only while holding every bucket lock, so holding any one of
// them excludes it.
func (t *Table) mirrorRepair(seg pmem.Addr, mir *segMirror) {
	p := t.pool
	t.filters.heals.Inc()
	t.fr.Record(obs.EvMirrorHeal, obs.TagNone, uint64(seg), 0)
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(seg, bi)
		lockBucket(p, mir, ba, bi)
		if bi == 0 {
			mir.depth.Store(p.LoadU64(seg.Add(segOffDepth)))
			mir.pattern.Store(p.QuietLoadU64(seg.Add(segOffPattern)))
		}
		mirrorFillBucket(p, mir, seg, bi)
		unlockBucket(p, mir, ba, bi)
	}
}

// --- lock-free mirror probes (the read path) ---

// mirBucketSearch scans one mirrored bucket under its shadow seqlock, the
// DRAM twin of bucketSearchOpt: it loops until a scan completes under an
// unchanged even shadow version, so the returned record words — and the
// meta/fingerprint words handed back for overflow-probing decisions — form
// a consistent snapshot of the bucket. An indirect candidate's blob is
// verified (and fully charged) during the scan; a match through a slot
// that mutated mid-scan is discarded by the version recheck.
func mirBucketSearch(vl *pmem.VarLog, mir *segMirror, bi int, pk *probeKey) (kv pmem.KV, blobHot, found bool, m, hi uint64) {
	ver := mir.word(bi, mirBkVersion)
	for {
		v := ver.Load()
		if v&1 != 0 {
			runtime.Gosched()
			continue
		}
		m = mir.word(bi, mirBkMeta).Load()
		lo := mir.word(bi, mirBkFPLo).Load()
		hi = mir.word(bi, mirBkFPHi).Load()
		kv, blobHot, found = pmem.KV{}, false, false
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) || fpGet(lo, hi, slot) != pk.parts.FP {
				continue
			}
			w0 := mir.recWord(bi, slot, 0).Load()
			w1 := mir.recWord(bi, slot, 1).Load()
			if r, hot, ok := mirRecMatch(vl, w0, w1, pk); ok {
				kv, blobHot, found = r, hot, true
				break
			}
		}
		if ver.Load() == v {
			return
		}
	}
}

// mirSegSearch probes the mirrored segment like segSearchOpt: candidate
// pair fingerprint-first, then the home bucket's overflow metadata into the
// stash. Zero PM traffic except the blob read of an indirect hit.
func mirSegSearch(vl *pmem.VarLog, mir *segMirror, pk *probeKey) (pmem.KV, bool, bool) {
	b := int(pk.parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	kv, hot, found, m, hi := mirBucketSearch(vl, mir, b, pk)
	if found {
		return kv, hot, true
	}
	if kv2, hot2, f2, _, _ := mirBucketSearch(vl, mir, b2, pk); f2 {
		return kv2, hot2, true
	}
	for i := 0; i < maxOvSlots; i++ {
		if !metaOvSlotUsed(m, i) || metaOvFP(m, i) != pk.parts.FP {
			continue
		}
		j := ovIdxGet(hi, i)
		if kv2, hot2, f2, _, _ := mirBucketSearch(vl, mir, normalBuckets+j, pk); f2 {
			return kv2, hot2, true
		}
	}
	if metaOvCount(m) > 0 {
		for j := 0; j < stashBuckets; j++ {
			if kv2, hot2, f2, _, _ := mirBucketSearch(vl, mir, normalBuckets+j, pk); f2 {
				return kv2, hot2, true
			}
		}
	}
	return pmem.KV{}, false, false
}

// --- sampled self-check ---

// mirrorMaybeCheck cross-checks the probe's home bucket against PM on a
// hash-selected sample of mirror-served reads (~1/mirrorSamplePeriod; the
// selection uses hash bits disjoint from the routing bits so the sampled
// set spans buckets). This is the safety net for divergence with no
// hot-path symptom: a mirror that silently lost a slot answers misses that
// nothing else would ever question. A detected mismatch heals the whole
// segment's mirror.
func (t *Table) mirrorMaybeCheck(seg pmem.Addr, mir *segMirror, pk *probeKey) {
	if (pk.parts.Hash>>20)&t.mirrorSampleMask != 0 {
		return
	}
	t.filters.checks.Inc()
	if !t.mirrorBucketMatchesPM(seg, mir, int(pk.parts.BucketIndex(bucketBits))) {
		t.mirrorRepair(seg, mir)
	}
}

// mirrorBucketMatchesPM optimistically compares one bucket's mirror with
// PM: both sides are snapshotted under stable (even, unchanged) versions,
// which proves they describe the same quiescent state and are directly
// comparable. Any racing writer — or an unlocked single-word record store,
// which the seqlock deliberately does not cover — voids the comparison and
// reports a (possibly spurious) match; only a doubly-stable mismatch is
// real. PM reads are charged like any probe: the version load pays for the
// header line, record lines are one streaming touch.
func (t *Table) mirrorBucketMatchesPM(seg pmem.Addr, mir *segMirror, bi int) bool {
	p := t.pool
	ba := segBucket(seg, bi)
	va := ba.Add(bkOffVersion)
	pv := p.LoadU64(va)
	mv := mir.word(bi, mirBkVersion).Load()
	if pv&1 != 0 || mv&1 != 0 {
		return true
	}
	m := p.QuietLoadU64(ba.Add(bkOffMeta))
	lo := p.QuietLoadU64(ba.Add(bkOffFPLo))
	hi := p.QuietLoadU64(ba.Add(bkOffFPHi))
	ok := m == mir.word(bi, mirBkMeta).Load() &&
		lo == mir.word(bi, mirBkFPLo).Load() &&
		hi == mir.word(bi, mirBkFPHi).Load()
	if ok {
		touchRecordLines(p, ba, m)
		for slot := 0; slot < slotsPerBucket && ok; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			ra := recordAddr(ba, slot)
			ok = p.QuietLoadU64(ra) == mir.recWord(bi, slot, 0).Load() &&
				p.QuietLoadU64(ra.Add(8)) == mir.recWord(bi, slot, 1).Load()
		}
	}
	if p.QuietLoadU64(va) != pv || mir.word(bi, mirBkVersion).Load() != mv {
		return true // racing writer: nothing provable either way
	}
	return ok
}

// mirrorVerifySeg compares one segment's whole mirror against PM with
// quiet loads — the quiescent-state debugging/test oracle behind the
// coherence tests. Returns the number of mismatching buckets (header
// claims count as bucket 0). Only meaningful while no writer runs.
func (t *Table) mirrorVerifySeg(seg pmem.Addr) int {
	p := t.pool
	mir := t.mirror(seg)
	if mir == nil {
		return totalBuckets
	}
	bad := 0
	if mir.depth.Load() != p.QuietLoadU64(seg.Add(segOffDepth)) ||
		mir.pattern.Load() != p.QuietLoadU64(seg.Add(segOffPattern)) {
		bad++
	}
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(seg, bi)
		m := p.QuietLoadU64(ba.Add(bkOffMeta))
		ok := m == mir.word(bi, mirBkMeta).Load() &&
			p.QuietLoadU64(ba.Add(bkOffFPLo)) == mir.word(bi, mirBkFPLo).Load() &&
			p.QuietLoadU64(ba.Add(bkOffFPHi)) == mir.word(bi, mirBkFPHi).Load()
		for slot := 0; slot < slotsPerBucket && ok; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			ra := recordAddr(ba, slot)
			ok = p.QuietLoadU64(ra) == mir.recWord(bi, slot, 0).Load() &&
				p.QuietLoadU64(ra.Add(8)) == mir.recWord(bi, slot, 1).Load()
		}
		if !ok {
			bad++
		}
	}
	return bad
}

// mirrorVerifyAll is mirrorVerifySeg over every directory-reachable
// segment; the quiescent coherence oracle for tests.
func (t *Table) mirrorVerifyAll() int {
	v := t.cache.view.Load()
	seen := make(map[pmem.Addr]bool)
	bad := 0
	for i := range v.entries {
		seg, _ := unpackEntry(v.entries[i].Load())
		if seg.IsNull() || seen[seg] {
			continue
		}
		seen[seg] = true
		bad += t.mirrorVerifySeg(seg)
	}
	return bad
}
