package core

import (
	"errors"
	"sync/atomic"

	"dash/internal/obs"
)

// Observability wiring: every Table owns an obs.Registry (named meters) and
// an obs.Flight (event recorder), both always on — the hot-path cost is a
// goroutine-sharded counter add and, per operation, one ring-buffer event.
// initObs is the single place a meter name exists, so the registry is the
// authoritative list of what the engine measures; Stats() and the dashbench
// schema read these same counters rather than keeping parallel state.

// meters holds the obs handles the table's code paths record into (the
// layer-owned counters live on dirCache/segFilters/epoch.Manager/VarLog
// themselves; these are the table-level ones).
type meters struct {
	// Split phase durations: migrate (concurrent copy phase) and the
	// publish stall (all bucket locks held, the tail-latency window).
	splitMigrateNS      *obs.Histogram
	splitPublishStallNS *obs.Histogram

	// Recovery phase wall times, indexed phaseDir..phaseMirrors; zero on a
	// freshly created table. phaseDir is stored once by Open; the lazy
	// phases (segments/mirrors/log) accumulate as first-touch recoveries
	// and the background sweep run, converging to the eager totals.
	recoveryNS      [4]atomic.Int64
	recoveryTotalNS atomic.Int64

	// Lazy-recovery meters: Open's O(directory) wall time (time-to-first-op),
	// the Open→sweep-done wall time (time-to-fully-recovered), per-segment
	// first-touch latencies, and counters for recovered segments and blobs
	// the background sweep free-listed.
	recoveryOpenNS atomic.Int64
	recoveryFullNS atomic.Int64
	lazySegNS      *obs.Histogram
	lazySegs       *obs.Counter
	lazySweepFreed *obs.Counter
}

const (
	phaseDir = iota
	phaseSegments
	phaseLog
	phaseMirrors
)

// initObs builds the registry and flight recorder and hands every layer its
// counters. Called by Create/Open after the pool, epoch manager and record
// log exist but before any operation (or recovery) runs.
func (t *Table) initObs() {
	reg := obs.NewRegistry()
	t.reg = reg
	t.fr = obs.NewFlight()

	// Directory-cache routing.
	t.cache.hits = reg.Counter("dircache.hits")
	t.cache.misses = reg.Counter("dircache.misses")
	t.cache.rebuilds = reg.Counter("dircache.rebuilds")

	// Per-segment filter mirrors.
	t.filters.hits = reg.Counter("segfilter.hits")
	t.filters.misses = reg.Counter("segfilter.misses")
	t.filters.bypass = reg.Counter("segfilter.bypass")
	t.filters.checks = reg.Counter("segfilter.checks")
	t.filters.heals = reg.Counter("segfilter.heals")
	reg.Gauge("segfilter.bytes", func() int64 { return int64(t.filters.bytes.Load()) })

	// Per-path read outcome, the §5-style breakdown: which tier served a
	// read. Derived views over the tier counters — the per-op resolution
	// lives in the flight recorder's EvGet tags.
	reg.Gauge("read.path.mirror_served", func() int64 { return int64(t.filters.hits.Total()) })
	reg.Gauge("read.path.pm_fallback", func() int64 {
		return int64(t.filters.misses.Total() + t.filters.bypass.Total())
	})
	reg.Gauge("read.path.heal", func() int64 { return int64(t.filters.heals.Total()) })
	reg.Gauge("read.path.dircache_miss", func() int64 { return int64(t.cache.misses.Total()) })

	// Splits: lifecycle counters stay on the Table (splitAssists is
	// load-bearing for the migrator's duplicate gate), exposed as gauges;
	// the phase durations are histograms.
	reg.Gauge("split.completed", func() int64 { return int64(t.splits.Load()) })
	reg.Gauge("split.stall_ns", func() int64 { return t.splitStallNS.Load() })
	reg.Gauge("split.assists", func() int64 { return int64(t.splitAssists.Load()) })
	t.met.splitMigrateNS = reg.Histogram("split.migrate_ns")
	t.met.splitPublishStallNS = reg.Histogram("split.publish_stall_ns")

	// Epoch reclamation: retire→free lag is the latency cost of a stalled
	// reader; pending is the space cost.
	t.em.Retired = reg.Counter("epoch.retired")
	t.em.Reclaimed = reg.Counter("epoch.reclaimed")
	t.em.ReclaimLagNS = reg.Histogram("epoch.reclaim_lag_ns")
	t.em.Trace = t.fr
	reg.Gauge("epoch.pending", func() int64 { return int64(t.em.Pending()) })

	// Record log: free-list hit rate plus the space accounting.
	t.vlog.FreeHits = reg.Counter("varlog.free_hits")
	t.vlog.FreeMisses = reg.Counter("varlog.free_misses")
	reg.Gauge("varlog.live_bytes", func() int64 { return int64(t.vlog.Stats().LiveBytes) })
	reg.Gauge("varlog.free_bytes", func() int64 { return int64(t.vlog.Stats().FreeBytes) })

	// Recovery phase wall times (Open only; zero after Create).
	reg.Gauge("recovery.directory_ns", func() int64 { return t.met.recoveryNS[phaseDir].Load() })
	reg.Gauge("recovery.segments_ns", func() int64 { return t.met.recoveryNS[phaseSegments].Load() })
	reg.Gauge("recovery.log_ns", func() int64 { return t.met.recoveryNS[phaseLog].Load() })
	reg.Gauge("recovery.mirrors_ns", func() int64 { return t.met.recoveryNS[phaseMirrors].Load() })
	reg.Gauge("recovery.total_ns", func() int64 { return t.met.recoveryTotalNS.Load() })

	// Lazy recovery: restart latency split into time-to-first-op (Open's
	// O(directory) work) and time-to-fully-recovered (background sweep
	// done), plus the first-touch machinery's own meters.
	reg.Gauge("recovery.open_ns", func() int64 { return t.met.recoveryOpenNS.Load() })
	reg.Gauge("recovery.full_ns", func() int64 { return t.met.recoveryFullNS.Load() })
	reg.Gauge("recovery.lazy.pending", func() int64 { return t.recoveryPending() })
	t.met.lazySegNS = reg.Histogram("recovery.lazy.seg_ns")
	t.met.lazySegs = reg.Counter("recovery.lazy.segments")
	t.met.lazySweepFreed = reg.Counter("recovery.lazy.sweep_freed")

	// Table shape.
	reg.Gauge("table.count", func() int64 { return t.count.Load() })
	reg.Gauge("table.global_depth", func() int64 { return int64(t.GlobalDepth()) })

	// PM traffic, alongside the engine meters.
	t.pool.RegisterMetrics(reg)
}

// Metrics returns the table's metrics registry — the one source of truth
// Stats(), the bench harness and the live endpoint (obs.Serve) all read.
func (t *Table) Metrics() *obs.Registry { return t.reg }

// TraceSnapshot dumps the flight recorder: every retained event (op
// completions, split lifecycle transitions, heals, epoch advances, recovery
// phases) merged across goroutine shards into one time-ordered log. Safe to
// call concurrently with live traffic; events overwritten mid-read are
// dropped, never torn.
func (t *Table) TraceSnapshot() []obs.Event { return t.fr.Snapshot() }

// recordRecoveryPhase stores one phase duration and logs it to the control
// lane, so a trace of a reopened table starts with its recovery timeline.
func (t *Table) recordRecoveryPhase(phase int, tag uint8, start, end int64) {
	t.met.recoveryNS[phase].Store(end - start)
	t.fr.RecordAt(start, obs.EvRecovery, tag, 0, uint64(end-start))
}

// insOutcome maps an insert error to its flight-recorder tag.
func insOutcome(err error) uint8 {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, ErrKeyExists):
		return obs.OutcomeExists
	case errors.Is(err, ErrSegmentOverflow):
		return obs.OutcomeOverflow
	case errors.Is(err, ErrRecordTooLarge):
		return obs.OutcomeTooLarge
	}
	return obs.OutcomeErr
}

// updOutcome maps an update result to its flight-recorder tag.
func updOutcome(found bool, err error) uint8 {
	if err != nil {
		return insOutcome(err)
	}
	if !found {
		return obs.OutcomeMissing
	}
	return obs.OutcomeOK
}

// delOutcome maps a delete result to its flight-recorder tag.
func delOutcome(found bool) uint8 {
	if found {
		return obs.OutcomeOK
	}
	return obs.OutcomeMissing
}
