package core

import (
	"dash/internal/pmem"
)

// Table-shape introspection for the benchmark harness and tests: everything
// an observer needs to reason about load factor, directory growth and stash
// pressure without reaching into the layer internals.

// TableStats is a point-in-time structural snapshot of a Table.
//
// Taken concurrently with writers it is approximate — per-bucket occupancy
// words are read atomically but not mutually consistently — which is the
// right trade for a monitoring surface: it never blocks the data path.
type TableStats struct {
	// Count is the number of live records (exact, from the table's counter).
	Count int64
	// GlobalDepth is the directory's depth; the directory holds 2^GlobalDepth
	// segment pointers.
	GlobalDepth uint8
	// Segments is the number of distinct segments the directory references.
	Segments int
	// SlotCapacity is Segments × slots per segment: the record capacity at
	// the current shape.
	SlotCapacity int64
	// LoadFactor is Count / SlotCapacity.
	LoadFactor float64
	// StashRecords is the number of records living in stash buckets.
	StashRecords int64
	// StashShare is StashRecords over the records observed by the walk — the
	// fraction of lookups' worst-case extra probes the stash is absorbing.
	StashShare float64
	// AllocatedBytes is the PM consumed by the bump allocator (segments,
	// directories, including retired-but-reusable blocks).
	AllocatedBytes uint64
}

// Stats walks the directory and every segment's bucket headers and returns
// the table's shape. It runs under an epoch guard like every directory
// traversal, uses quiet (unaccounted) loads so observing the table does not
// perturb the PM-traffic counters or the cost model mid-benchmark, and takes
// no locks.
func (t *Table) Stats() TableStats {
	g := t.em.Enter()
	defer g.Exit()
	p := t.pool

	dir := pmem.Addr(p.QuietLoadU64(rootAddr.Add(rootOffDir)))
	depth := uint8(p.QuietLoadU64(dir.Add(dirOffDepth)))
	n := uint64(1) << depth

	seen := make(map[pmem.Addr]bool)
	var walked, stash int64
	for i := uint64(0); i < n; i++ {
		seg := pmem.Addr(p.QuietLoadU64(dirEntryAddr(dir, i)))
		if seg.IsNull() || seen[seg] {
			continue
		}
		seen[seg] = true
		for bi := 0; bi < totalBuckets; bi++ {
			m := p.QuietLoadU64(segBucket(seg, bi).Add(bkOffMeta))
			used := int64(slotsPerBucket - metaFreeSlots(m))
			walked += used
			if bi >= normalBuckets {
				stash += used
			}
		}
	}

	st := TableStats{
		Count:          t.count.Load(),
		GlobalDepth:    depth,
		Segments:       len(seen),
		SlotCapacity:   int64(len(seen)) * slotsPerSegment,
		StashRecords:   stash,
		AllocatedBytes: p.QuietLoadU64(rootAddr.Add(rootOffAllocNxt)) - allocStart,
	}
	if st.SlotCapacity > 0 {
		st.LoadFactor = float64(st.Count) / float64(st.SlotCapacity)
	}
	if walked > 0 {
		st.StashShare = float64(stash) / float64(walked)
	}
	return st
}
