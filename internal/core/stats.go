package core

import (
	"dash/internal/pmem"
)

// Table-shape introspection for the benchmark harness and tests: everything
// an observer needs to reason about load factor, directory growth and stash
// pressure without reaching into the layer internals.

// TableStats is a point-in-time structural snapshot of a Table.
//
// Taken concurrently with writers it is approximate — per-bucket occupancy
// words are read atomically but not mutually consistently — which is the
// right trade for a monitoring surface: it never blocks the data path.
type TableStats struct {
	// Count is the number of live records (exact, from the table's counter).
	Count int64
	// GlobalDepth is the directory's depth; the directory holds 2^GlobalDepth
	// segment pointers.
	GlobalDepth uint8
	// Segments is the number of distinct segments the directory references.
	Segments int
	// SlotCapacity is Segments × slots per segment: the record capacity at
	// the current shape.
	SlotCapacity int64
	// LoadFactor is Count / SlotCapacity.
	LoadFactor float64
	// StashRecords is the number of records living in stash buckets.
	StashRecords int64
	// StashShare is StashRecords over the records observed by the walk — the
	// fraction of lookups' worst-case extra probes the stash is absorbing.
	StashShare float64
	// AllocatedBytes is the PM consumed by the bump allocator (segments,
	// directories, including retired-but-reusable blocks).
	AllocatedBytes uint64

	// DirCacheHits and DirCacheMisses count cached-route outcomes. A hit is
	// a route that served its operation — either a seqlock-stable positive
	// Get (trusted without consulting the PM directory; that skip is the
	// point of the cache) or a route that validateRoute confirmed against
	// PM (negative reads, writers after locking). A miss is a stale route
	// caught by a failed validation, forcing a repair + retry.
	DirCacheHits, DirCacheMisses uint64
	// DirCacheHitRate is DirCacheHits over all route outcomes (1 when
	// idle). Counters are cumulative since Create/Open; windowed consumers
	// (internal/bench) subtract a baseline snapshot.
	DirCacheHitRate float64
	// DirCacheRebuilds counts full O(directory) cache reconstructions
	// (Create/Open plus any recovery rebuild; doublings are not rebuilds).
	DirCacheRebuilds uint64
	// DirCacheBytes approximates the cache's DRAM footprint: 8 bytes per
	// directory entry.
	DirCacheBytes uint64

	// Record-log (varlog) space accounting, for variable-length records:
	// pool bytes held by log chunks, capacity of live (committed,
	// referenced) blobs and their count, and capacity parked on the DRAM
	// free list awaiting reuse.
	LogChunkBytes uint64
	LogLiveBytes  uint64
	LogLiveBlobs  int64
	LogFreeBytes  uint64

	// Segment filter mirror (segfilter.go) accounting. SegFilterBytes is the
	// DRAM held by installed per-segment mirrors. Hits are reads fully served
	// by a mirror (positive, or a miss the mirror could vouch for); Misses
	// are probes that fell back to the PM path; Bypass counts reads that
	// found no mirror installed (expected 0 outside recovery windows).
	// Checks counts sampled mirror-vs-PM cross-checks, Heals in-place mirror
	// repairs (sampled check or validation disagreement). Counters are
	// cumulative since Create/Open; windowed consumers subtract a baseline.
	SegFilterBytes  uint64
	SegFilterHits   uint64
	SegFilterMisses uint64
	SegFilterBypass uint64
	// SegFilterHitRate is SegFilterHits over all mirror probe outcomes
	// (1 when idle).
	SegFilterHitRate float64
	SegFilterChecks  uint64
	SegFilterHeals   uint64

	// Splits counts completed segment splits since Create/Open. Windowed
	// consumers (internal/bench) subtract a baseline snapshot.
	Splits uint64
	// SplitStallNS is the cumulative wall time split publishes held every
	// bucket lock of their segment (including any directory doubling): the
	// table-freeze exposure that remains now that migration is incremental.
	SplitStallNS int64
	// SplitAssists counts writer operations mirrored into an in-flight
	// split's unpublished sibling (the writer-side cost of not freezing the
	// segment during migration).
	SplitAssists uint64

	// Epoch reclamation accounting: objects handed to Retire, objects
	// actually freed, and objects still pending. Cumulative like the other
	// counters; the retire→free lag distribution lives in the registry
	// ("epoch.reclaim_lag_ns").
	EpochRetired   uint64
	EpochReclaimed uint64
	EpochPending   uint64

	// Record-log free-list outcome counts: blob allocations served by
	// exact-capacity reuse vs. fresh bump allocations.
	LogFreeHits   uint64
	LogFreeMisses uint64

	// Recovery phase wall times from the Open that produced this table
	// (zero after Create): directory rebuild (stored once by Open), segment
	// reconcile, record-log sweep, and the per-segment filter-mirror
	// installs. Under lazy recovery the last three accumulate as first
	// touches and the background sweep run, converging to the eager totals.
	RecoveryDirNS      int64
	RecoverySegmentsNS int64
	RecoveryLogNS      int64
	RecoveryMirrorsNS  int64
	RecoveryTotalNS    int64

	// Lazy-recovery restart latency split: RecoveryOpenNS is Open's
	// O(directory) wall time (time-to-first-op); RecoveryFullNS is
	// Open→background-sweep-done (time-to-fully-recovered, 0 until it
	// completes); RecoveryPendingSegments counts segments still awaiting
	// first touch.
	RecoveryOpenNS          int64
	RecoveryFullNS          int64
	RecoveryPendingSegments int64
}

// Stats walks the DRAM directory cache for the segment set — observing the
// shape costs no PM directory traffic at all — and every segment's bucket
// headers via quiet (unaccounted) loads, so observing the table does not
// perturb the PM-traffic counters or the cost model mid-benchmark. It takes
// no locks; the epoch guard keeps the walk well-defined against concurrent
// structural changes.
func (t *Table) Stats() TableStats {
	g := t.em.Enter()
	defer g.Exit()
	p := t.pool

	v := t.cache.view.Load()
	seen := make(map[pmem.Addr]bool)
	var walked, stash int64
	for i := range v.entries {
		seg, _ := unpackEntry(v.entries[i].Load())
		if seg.IsNull() || seen[seg] {
			continue
		}
		seen[seg] = true
		for bi := 0; bi < totalBuckets; bi++ {
			m := p.QuietLoadU64(segBucket(seg, bi).Add(bkOffMeta))
			used := int64(slotsPerBucket - metaFreeSlots(m))
			walked += used
			if bi >= normalBuckets {
				stash += used
			}
		}
	}

	hits, misses := t.cache.hits.Total(), t.cache.misses.Total()
	fhits, fmisses, fbypass := t.filters.hits.Total(), t.filters.misses.Total(), t.filters.bypass.Total()
	lg := t.vlog.Stats()
	st := TableStats{
		Count:            t.count.Load(),
		GlobalDepth:      v.depth,
		Segments:         len(seen),
		SlotCapacity:     int64(len(seen)) * slotsPerSegment,
		StashRecords:     stash,
		AllocatedBytes:   p.QuietLoadU64(rootAddr.Add(rootOffAllocNxt)) - allocStart,
		DirCacheHits:     hits,
		DirCacheMisses:   misses,
		DirCacheHitRate:  1,
		DirCacheRebuilds: t.cache.rebuilds.Total(),
		DirCacheBytes:    8 * uint64(len(v.entries)),
		SegFilterBytes:   t.filters.bytes.Load(),
		SegFilterHits:    fhits,
		SegFilterMisses:  fmisses,
		SegFilterBypass:  fbypass,
		SegFilterHitRate: 1,
		SegFilterChecks:  t.filters.checks.Total(),
		SegFilterHeals:   t.filters.heals.Total(),
		LogChunkBytes:    lg.ChunkBytes,
		LogLiveBytes:     lg.LiveBytes,
		LogLiveBlobs:     lg.LiveBlobs,
		LogFreeBytes:     lg.FreeBytes,
		Splits:           t.splits.Load(),
		SplitStallNS:     t.splitStallNS.Load(),
		SplitAssists:     t.splitAssists.Load(),

		EpochRetired:   t.em.Retired.Total(),
		EpochReclaimed: t.em.Reclaimed.Total(),
		EpochPending:   t.em.Pending(),
		LogFreeHits:    t.vlog.FreeHits.Total(),
		LogFreeMisses:  t.vlog.FreeMisses.Total(),

		RecoveryDirNS:      t.met.recoveryNS[phaseDir].Load(),
		RecoverySegmentsNS: t.met.recoveryNS[phaseSegments].Load(),
		RecoveryLogNS:      t.met.recoveryNS[phaseLog].Load(),
		RecoveryMirrorsNS:  t.met.recoveryNS[phaseMirrors].Load(),
		RecoveryTotalNS:    t.met.recoveryTotalNS.Load(),

		RecoveryOpenNS:          t.met.recoveryOpenNS.Load(),
		RecoveryFullNS:          t.met.recoveryFullNS.Load(),
		RecoveryPendingSegments: t.recoveryPending(),
	}
	if hits+misses > 0 {
		st.DirCacheHitRate = float64(hits) / float64(hits+misses)
	}
	if n := fhits + fmisses + fbypass; n > 0 {
		st.SegFilterHitRate = float64(fhits) / float64(n)
	}
	if st.SlotCapacity > 0 {
		st.LoadFactor = float64(st.Count) / float64(st.SlotCapacity)
	}
	if walked > 0 {
		st.StashShare = float64(stash) / float64(walked)
	}
	return st
}
