package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"dash/internal/pmem"
)

// Crash-point fuzzing: replay one seeded op history and simulate power loss
// at every Kth flush boundary — the exact set of points where a real machine
// can lose a cacheline — then reopen, lazily touch every segment through the
// public read path, and require state equivalence against an oracle map.
//
// The acceptance contract at each crash point:
//   - every acknowledged op is fully visible (exact values, exact absences);
//   - the single in-flight op is atomic: the key reads as its old state or
//     its new state, never anything else (no torn values, no ghosts);
//   - Count, re-derived from bucket popcounts at first touch, matches the
//     observed live set (duplicates or leaked slots would shift it);
//   - after the background sweep, the record log's live set equals the set
//     of blobs the slots reference (no leak, no double-free).
//
// Flush boundaries within one prefix of the history are deterministic (the
// table is single-threaded here and owns every flush), so "the Kth flush"
// names a reproducible machine state.

// fuzzOp is one step of the seeded history: kind 'i'/'d'/'u', on the inline
// u64 path or (varK) the indirect variable-length path.
type fuzzOp struct {
	kind byte
	varK bool
	id   uint64
	val  uint64
}

func fuzzVarKey(id uint64) []byte {
	return []byte(fmt.Sprintf("crash-fuzz-key-%05d%s", id, "xyz"[:id%3]))
}

// fuzzVarVal pads values to 16..~96 bytes so blobs span one to several
// cachelines — crash points inside multi-line appends are the interesting
// ones.
func fuzzVarVal(val uint64) []byte {
	return []byte(fmt.Sprintf("val-%d-%s", val, strings.Repeat("v", int(val%80))))
}

// genCrashHistory builds a deterministic, self-consistent op sequence: it
// simulates presence while generating, so every insert targets an absent key
// and every delete/update a present one. Replaying a prefix therefore never
// hits ErrKeyExists or a missing-key failure.
func genCrashHistory(seed int64, n int) []fuzzOp {
	rng := rand.New(rand.NewSource(seed))
	presU := map[uint64]bool{}
	presV := map[uint64]bool{}
	ops := make([]fuzzOp, 0, n)
	for len(ops) < n {
		varK := rng.Intn(4) == 0
		pres, id := presU, uint64(rng.Intn(1600))
		if varK {
			pres, id = presV, uint64(rng.Intn(250))
		}
		switch {
		case !pres[id]:
			ops = append(ops, fuzzOp{'i', varK, id, rng.Uint64()})
			pres[id] = true
		case rng.Intn(3) == 0:
			ops = append(ops, fuzzOp{'d', varK, id, 0})
			delete(pres, id)
		default:
			ops = append(ops, fuzzOp{'u', varK, id, rng.Uint64()})
		}
	}
	return ops
}

// crashOracle replays an acknowledged prefix into plain maps.
func crashOracle(ops []fuzzOp) (mU, mV map[uint64]uint64) {
	mU, mV = map[uint64]uint64{}, map[uint64]uint64{}
	for _, op := range ops {
		m := mU
		if op.varK {
			m = mV
		}
		switch op.kind {
		case 'i', 'u':
			m[op.id] = op.val
		case 'd':
			delete(m, op.id)
		}
	}
	return mU, mV
}

func applyCrashOp(tbl *Table, op fuzzOp) error {
	if op.varK {
		k := fuzzVarKey(op.id)
		switch op.kind {
		case 'i':
			return tbl.InsertB(k, fuzzVarVal(op.val))
		case 'd':
			if !tbl.DeleteB(k) {
				return fmt.Errorf("deleteB %q: not found", k)
			}
		case 'u':
			if ok, err := tbl.UpdateB(k, fuzzVarVal(op.val)); err != nil || !ok {
				return fmt.Errorf("updateB %q: %v %v", k, ok, err)
			}
		}
		return nil
	}
	switch op.kind {
	case 'i':
		return tbl.Insert(op.id, op.val)
	case 'd':
		if !tbl.Delete(op.id) {
			return fmt.Errorf("delete %d: not found", op.id)
		}
	case 'u':
		if ok, err := tbl.Update(op.id, op.val); err != nil || !ok {
			return fmt.Errorf("update %d: %v %v", op.id, ok, err)
		}
	}
	return nil
}

// runToCrash replays ops against a fresh table, simulating power loss at the
// crashAt-th flush (crashAt <= 0 disables the crash and just counts). The
// hook fires before the flushed line can reach media; the sentinel panic
// unwinds the in-flight op, and Crash() then reverts every line stored but
// not flushed — including stores issued by deferred cleanups on the unwound
// stack, which never flush. Returns the pool (its durable image IS the crash
// state), the number of fully acknowledged ops, whether the crash fired, and
// the total flush count observed.
func runToCrash(t *testing.T, ops []fuzzOp, crashAt int) (pool *pmem.Pool, acked int, crashed bool, flushes int) {
	t.Helper()
	pool, err := pmem.NewPool(pmem.Options{Size: 64 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool.SetFlushHook(func() {
		flushes++
		if flushes == crashAt {
			panic(crashNow{})
		}
	})
	crashed = func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashNow); !ok {
					panic(r)
				}
				c = true
			}
		}()
		for i := range ops {
			if err := applyCrashOp(tbl, ops[i]); err != nil {
				t.Fatalf("op %d (%+v): %v", i, ops[i], err)
			}
			acked = i + 1
		}
		return false
	}()
	pool.SetFlushHook(nil)
	if crashed {
		pool.Crash()
	}
	return pool, acked, crashed, flushes
}

// verifyCrashPoint reopens a crashed pool and checks the full acceptance
// contract described at the top of the file. The oracle probes double as the
// lazy first touches: every live key is read through the gated public path
// before RecoverAll forces the remainder.
func verifyCrashPoint(t *testing.T, pool *pmem.Pool, ops []fuzzOp, acked, crashAt int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("crash point %d (op %d %+v): %s", crashAt, acked, ops[acked], fmt.Sprintf(format, args...))
	}
	mU, mV := crashOracle(ops[:acked])
	inFlight := ops[acked]

	tbl, err := Open(pool)
	if err != nil {
		fail("Open: %v", err)
	}
	for id, want := range mU {
		if !inFlight.varK && id == inFlight.id {
			continue
		}
		if v, ok := tbl.Get(id); !ok || v != want {
			fail("acked key %d = %d,%v want %d", id, v, ok, want)
		}
	}
	for id, want := range mV {
		if inFlight.varK && id == inFlight.id {
			continue
		}
		v, ok := tbl.GetB(fuzzVarKey(id))
		if !ok || !bytes.Equal(v, fuzzVarVal(want)) {
			fail("acked var key %d = %q,%v want %q", id, v, ok, fuzzVarVal(want))
		}
	}
	for k := uint64(1 << 50); k < 1<<50+16; k++ {
		if _, ok := tbl.Get(k); ok {
			fail("phantom key %d", k)
		}
	}

	// The in-flight op is allowed exactly two outcomes: its old state or its
	// new state.
	var (
		got       uint64
		gotB      []byte
		inPresent bool
		oldVal    uint64
	)
	if inFlight.varK {
		gotB, inPresent = tbl.GetB(fuzzVarKey(inFlight.id))
		oldVal = mV[inFlight.id]
	} else {
		got, inPresent = tbl.Get(inFlight.id)
		oldVal = mU[inFlight.id]
	}
	matches := func(val uint64) bool {
		if inFlight.varK {
			return bytes.Equal(gotB, fuzzVarVal(val))
		}
		return got == val
	}
	switch inFlight.kind {
	case 'i':
		if inPresent && !matches(inFlight.val) {
			fail("in-flight insert: torn value %d/%q", got, gotB)
		}
	case 'd':
		if inPresent && !matches(oldVal) {
			fail("in-flight delete: torn value %d/%q", got, gotB)
		}
	case 'u':
		if !inPresent {
			fail("in-flight update dropped the key")
		}
		if !matches(oldVal) && !matches(inFlight.val) {
			fail("in-flight update: torn value %d/%q (old %d new %d)", got, gotB, oldVal, inFlight.val)
		}
	}

	// Force the rest of recovery (untouched segments + the log sweep), then
	// check the global invariants the per-key probes cannot see.
	tbl.RecoverAll()
	expected := len(mU) + len(mV)
	if inFlight.kind == 'i' && inPresent {
		expected++
	}
	if inFlight.kind == 'd' && !inPresent {
		expected--
	}
	if got := tbl.Count(); got != int64(expected) {
		fail("Count = %d, want %d (duplicate or leaked slots)", got, expected)
	}
	if err := tbl.verifyLogLive(); err != nil {
		fail("log live-set invariant: %v", err)
	}
	tbl.Close()
}

// TestCrashPointFuzz sweeps >= 200 evenly spaced crash points across the
// seeded history by default; DASH_CRASH_SWEEP=full crashes at every single
// flush boundary (slow — minutes, not for the default `go test` budget).
func TestCrashPointFuzz(t *testing.T) {
	withLazyGates(t)
	ops := genCrashHistory(8, slotsPerSegment+slotsPerSegment/2)

	// Dry run: count the history's flush boundaries and prove it completes.
	_, acked, crashed, total := runToCrash(t, ops, 0)
	if crashed || acked != len(ops) {
		t.Fatalf("dry run: crashed=%v acked=%d/%d", crashed, acked, len(ops))
	}
	if total < 400 {
		t.Fatalf("history produced only %d flush boundaries; too few to sweep", total)
	}

	const target = 200
	stride := total / target
	if os.Getenv("DASH_CRASH_SWEEP") == "full" {
		stride = 1
	}
	points := 0
	for crashAt := 1; crashAt <= total; crashAt += stride {
		pool, acked, crashed, _ := runToCrash(t, ops, crashAt)
		if !crashed {
			t.Fatalf("crash point %d never fired (total %d)", crashAt, total)
		}
		verifyCrashPoint(t, pool, ops, acked, crashAt)
		points++
	}
	if points < target {
		t.Fatalf("swept only %d crash points, want >= %d", points, target)
	}
	t.Logf("swept %d crash points across %d flush boundaries (%d ops)", points, total, len(ops))
}
