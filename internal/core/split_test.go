package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dash/internal/pmem"
)

// splitTestTimeout bounds the cross-goroutine waits below: generous enough
// for a loaded -race CI box, far below the package test timeout.
const splitTestTimeout = 30 * time.Second

// fillPrefix inserts ascending keys whose top-two hash bits equal prefix,
// starting the key scan at start, until n inserts succeeded. Returns the
// next unscanned key. The prefix pins every key to the subtree of one
// initial-depth-2 segment, whatever the global depth grows to.
func fillPrefix(t *testing.T, tbl *Table, prefix uint64, start, n uint64) uint64 {
	t.Helper()
	k := start
	for done := uint64(0); done < n; k++ {
		if tbl.parts(k).DirIndex(2) != prefix {
			continue
		}
		if err := tbl.Insert(k, k^0xABCD); err != nil {
			t.Fatalf("fill insert %d: %v", k, err)
		}
		done++
	}
	return k
}

// TestConcurrentSplitsDistinctSegments proves splits of distinct segments
// proceed in parallel: the first split to reach mid-migration blocks until a
// split of a *different* segment also reaches mid-migration. Under the old
// table-wide split mutex the second split could never start and this test
// would time out; with per-segment split ownership both arrive.
func TestConcurrentSplitsDistinctSegments(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{InitialDepth: 2})

	var (
		mu      sync.Mutex
		inMig   = make(map[pmem.Addr]bool)
		both    = make(chan struct{})
		closed  bool
		timeout atomic.Bool
	)
	tbl.hookMidMigrate = func(seg pmem.Addr, bucket int) {
		if bucket != normalBuckets/2 {
			return
		}
		mu.Lock()
		inMig[seg] = true
		if len(inMig) >= 2 && !closed {
			closed = true
			close(both)
		}
		mu.Unlock()
		select {
		case <-both:
		case <-time.After(splitTestTimeout):
			timeout.Store(true)
		}
	}

	// Two goroutines, each filling its own initial segment's key prefix
	// until that segment must have split at least once (a segment holds at
	// most slotsPerSegment records).
	var wg sync.WaitGroup
	for _, prefix := range []uint64{0, 2} {
		wg.Add(1)
		go func(prefix uint64) {
			defer wg.Done()
			fillPrefix(t, tbl, prefix, prefix*1<<40, slotsPerSegment+200)
		}(prefix)
	}
	wg.Wait()

	if timeout.Load() {
		t.Fatal("second segment's split never reached migration: splits are serialized")
	}
	if s := tbl.Stats().Splits; s < 2 {
		t.Fatalf("expected >= 2 completed splits, got %d", s)
	}
}

// TestReaderDuringSplitMigration pauses the first split mid-migration —
// half the buckets copied, half not, directory untouched — and has a reader
// sweep every acknowledged key. Records on both sides of the migration
// front must stay readable with their exact values: the split must be
// invisible to readers until it publishes.
func TestReaderDuringSplitMigration(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{InitialDepth: 1})

	acked := make(map[uint64]uint64)
	paused := make(chan struct{})  // closed when the split reaches mid-migration
	release := make(chan struct{}) // closed when the reader is done
	var once sync.Once
	tbl.hookMidMigrate = func(_ pmem.Addr, bucket int) {
		if bucket != normalBuckets/2 {
			return
		}
		once.Do(func() {
			close(paused)
			select {
			case <-release:
			case <-time.After(splitTestTimeout):
				t.Error("reader never released the paused split")
			}
		})
	}

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		<-paused
		// The inserter is parked inside the split hook, so acked is frozen;
		// the channel close orders our reads after its last write.
		for pass := 0; pass < 3; pass++ {
			for k, want := range acked {
				v, ok := tbl.Get(k)
				if !ok {
					t.Errorf("mid-split: key %d missing", k)
					close(release)
					return
				}
				if v != want {
					t.Errorf("mid-split: key %d = %d, want %d (torn read)", k, v, want)
					close(release)
					return
				}
			}
		}
		close(release)
	}()

	// Insert until the split (and with it the reader) has run. 2 segments
	// hold at most 2*slotsPerSegment records, so this fill must split.
	for k := uint64(0); k < 3*slotsPerSegment; k++ {
		if err := tbl.Insert(k, k*7+3); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		acked[k] = k*7 + 3
	}
	select {
	case <-readerDone:
	case <-time.After(splitTestTimeout):
		t.Fatal("reader did not finish")
	}

	// And after everything settles, the table is intact.
	for k, want := range acked {
		if v, ok := tbl.Get(k); !ok || v != want {
			t.Fatalf("post-split: key %d = %d,%v want %d", k, v, ok, want)
		}
	}
}

// TestWritersDuringSplitMigration pauses the first split mid-migration and
// drives concurrent inserts, deletes and updates against the splitting
// segment from other goroutines — the writer-assist path: sibling-claimed
// mutations must be mirrored into the unpublished sibling (and duplicates
// deduped by the migrator) or records would be lost, resurrected or stale
// once the split publishes.
func TestWritersDuringSplitMigration(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{InitialDepth: 1})

	paused := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	tbl.hookMidMigrate = func(_ pmem.Addr, bucket int) {
		if bucket != normalBuckets/2 {
			return
		}
		once.Do(func() {
			close(paused)
			select {
			case <-release:
			case <-time.After(splitTestTimeout):
				t.Error("writers never released the paused split")
			}
		})
	}

	state := make(map[uint64]uint64) // expected value; deleted keys removed
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		<-paused
		// The splitting inserter is parked, so state is ours alone here.
		// Mutate existing keys on both sides of the migration front: delete
		// every 5th, update every 7th, delete+reinsert every 11th. A
		// reinsert always finds the slot its delete just freed in the
		// key's bucket pair, so none of these operations can trigger (and
		// then wait on) the paused split — while sibling-claimed keys
		// exercise assistDelete/assistUpdate/assistInsert, including the
		// migrator's duplicate probe when it later reaches a reinserted
		// record's bucket.
		var keys []uint64
		for k := range state {
			keys = append(keys, k)
		}
		for _, k := range keys {
			switch {
			case k%5 == 0:
				if !tbl.Delete(k) {
					t.Errorf("mid-split delete %d reported missing", k)
				}
				delete(state, k)
			case k%7 == 0:
				if ok, err := tbl.Update(k, k+1000000); !ok || err != nil {
					t.Errorf("mid-split update %d reported missing", k)
				}
				state[k] = k + 1000000
			case k%11 == 0:
				if !tbl.Delete(k) {
					t.Errorf("mid-split delete %d reported missing", k)
				}
				if err := tbl.Insert(k, k+2000000); err != nil {
					t.Errorf("mid-split reinsert %d: %v", k, err)
				}
				state[k] = k + 2000000
			}
		}
		close(release)
	}()

	for k := uint64(0); k < 3*slotsPerSegment; k++ {
		if err := tbl.Insert(k, k*3+1); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if _, dup := state[k]; dup {
			t.Fatalf("key %d generated twice", k)
		}
		// Only record keys inserted before the pause is possible to matter;
		// the map is shared but the writer goroutine touches it only while
		// this loop's inserter is parked inside the split hook.
		state[k] = k*3 + 1
	}
	select {
	case <-writersDone:
	case <-time.After(splitTestTimeout):
		t.Fatal("mid-split writers did not finish")
	}

	for k, want := range state {
		if v, ok := tbl.Get(k); !ok || v != want {
			t.Fatalf("key %d = %d,%v want %d", k, v, ok, want)
		}
	}
	if got, want := tbl.Count(), int64(len(state)); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// The fixed seed makes the key→segment mapping deterministic: a quarter
	// of the mid-split mutations hit the splitting segment's sibling-claimed
	// half, so assists must have been exercised.
	if a := tbl.Stats().SplitAssists; a == 0 {
		t.Fatal("mid-split writers never exercised the assist path")
	}
}

// --- crash injection at the new publish points ---

// TestCrashAfterSplitMarker: power loss right after the split-progress
// marker is persisted, before any record is migrated. Recovery must clear
// the marker and roll the split back; the old segment still owns everything.
func TestCrashAfterSplitMarker(t *testing.T) {
	pool, acked := crashAtHook(t, func(tbl *Table, _ *pmem.Pool, fire func()) {
		tbl.hookAfterMarker = fire
	})
	verifyCrashRecovery(t, pool, acked)
}

// TestCrashMidSplitMigration: power loss halfway through the incremental
// copy — the sibling holds an unflushed partial copy, the directory knows
// nothing. Recovery must roll back via the marker; no acknowledged record
// may be lost (migration only reads the old segment).
func TestCrashMidSplitMigration(t *testing.T) {
	pool, acked := crashAtHook(t, func(tbl *Table, _ *pmem.Pool, fire func()) {
		tbl.hookMidMigrate = func(_ pmem.Addr, bucket int) {
			if bucket == normalBuckets/2 {
				fire()
			}
		}
	})
	verifyCrashRecovery(t, pool, acked)
}

// TestCrashMidSweep: power loss after the directory flips and the old
// segment's metadata bump, with only the first bucket of the moved-record
// sweep persisted. Recovery must finish the sweep from the directory image
// (the remaining leftover copies route elsewhere and are dropped).
func TestCrashMidSweep(t *testing.T) {
	pool, acked := crashAtHook(t, func(tbl *Table, _ *pmem.Pool, fire func()) {
		tbl.hookMidSweep = fire
	})
	verifyCrashRecovery(t, pool, acked)
}
