package core

import (
	"errors"
	"sync"
	"testing"
)

func TestTableStats(t *testing.T) {
	tb, err := New(16<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	const n = 3000 // enough to force several splits from depth 1
	for i := uint64(0); i < n; i++ {
		if err := tb.Insert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}

	st := tb.Stats()
	if st.Count != n || st.Count != tb.Count() {
		t.Errorf("Count = %d, want %d", st.Count, n)
	}
	if st.GlobalDepth != tb.GlobalDepth() {
		t.Errorf("GlobalDepth = %d, want %d", st.GlobalDepth, tb.GlobalDepth())
	}
	if st.Segments < 2 {
		t.Errorf("Segments = %d, want >= 2 after %d inserts", st.Segments, n)
	}
	if st.Segments > 1<<st.GlobalDepth {
		t.Errorf("Segments = %d exceeds directory capacity 2^%d", st.Segments, st.GlobalDepth)
	}
	if st.SlotCapacity != int64(st.Segments)*slotsPerSegment {
		t.Errorf("SlotCapacity = %d, want Segments×%d = %d", st.SlotCapacity, slotsPerSegment, int64(st.Segments)*slotsPerSegment)
	}
	if st.LoadFactor <= 0 || st.LoadFactor > 1 {
		t.Errorf("LoadFactor = %f, want in (0, 1]", st.LoadFactor)
	}
	want := float64(st.Count) / float64(st.SlotCapacity)
	if st.LoadFactor != want {
		t.Errorf("LoadFactor = %f, want %f", st.LoadFactor, want)
	}
	if st.StashRecords < 0 || st.StashRecords > st.Count {
		t.Errorf("StashRecords = %d out of range", st.StashRecords)
	}
	if st.StashShare < 0 || st.StashShare > 1 {
		t.Errorf("StashShare = %f, want in [0, 1]", st.StashShare)
	}
	if st.AllocatedBytes < uint64(st.Segments)*segmentSize {
		t.Errorf("AllocatedBytes = %d, want >= %d segments × %d", st.AllocatedBytes, st.Segments, segmentSize)
	}

	// Deletes are reflected.
	for i := uint64(0); i < 100; i++ {
		if !tb.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if got := tb.Stats().Count; got != n-100 {
		t.Errorf("Count after deletes = %d, want %d", got, n-100)
	}
}

// TestTableStatsConcurrent exercises Stats against live writers under -race:
// the snapshot must stay lock-free, race-clean and internally sane while the
// table is mutating and splitting underneath it.
func TestTableStatsConcurrent(t *testing.T) {
	tb, err := New(32<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := tb.Insert(base|i, i); err != nil {
					// Fast machines can exhaust the pool before the Stats
					// loop finishes; that ends this writer, not the test.
					if !errors.Is(err, ErrPoolFull) {
						t.Error(err)
					}
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		st := tb.Stats()
		if st.Segments < 1 || st.SlotCapacity < int64(st.Segments) {
			t.Errorf("implausible snapshot: %+v", st)
			break
		}
	}
	close(stop)
	wg.Wait()
}
