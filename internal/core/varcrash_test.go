package core

import (
	"bytes"
	"testing"

	"dash/internal/pmem"
)

// Crash injection for the variable-length record path, extending the
// split-protocol crash matrix (split_test.go / crash_test.go) to the
// record log's three commit points:
//
//  1. after a blob's bytes persist but before its commit word
//     (hookVarAppended) — the blob must be reclaimed, the insert rolled
//     back entirely;
//  2. after the commit word but before any bucket slot references the blob
//     (hookVarCommitted) — same outcome: a committed-but-unreferenced
//     blob is reclaimed, never resurrected as a record;
//  3. mid-copy-on-write update (hookVarMidUpdate): new blob committed, old
//     slot word not yet flipped — the OLD value must survive, the new
//     blob must be reclaimed.
//
// In every case Open must be deterministic: acknowledged records readable
// with their exact bytes, no ghost records, and the orphaned blob parked
// on the log's free list (observable as LogFreeBytes) rather than leaked.

// varCrashTable builds a crash-tracked table preloaded with variable
// records and returns it with its pool and the acked contents.
func varCrashTable(t *testing.T, n int) (*pmem.Pool, *Table, map[int][]byte) {
	t.Helper()
	pool, err := pmem.NewPool(pmem.Options{Size: 32 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[int][]byte)
	for i := 0; i < n; i++ {
		v := varVal(i, 16+i%100)
		if err := tbl.InsertB(varKey(i, 16+i%100), v); err != nil {
			t.Fatal(err)
		}
		acked[i] = v
	}
	return pool, tbl, acked
}

// verifyVarCrashRecovery reopens the crashed image and checks the
// acceptance contract: every acknowledged record intact byte-for-byte, the
// count exact, the orphan blob reclaimed (free list non-empty), and the
// table fully functional for further variable inserts.
func verifyVarCrashRecovery(t *testing.T, pool *pmem.Pool, acked map[int][]byte, wantOrphanFree bool) {
	t.Helper()
	tbl, err := Open(pool)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer tbl.Close()
	for i, want := range acked {
		v, ok := tbl.GetB(varKey(i, 16+i%100))
		if !ok {
			t.Fatalf("acknowledged record %d lost after crash", i)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("record %d = %x after crash, want %x", i, v, want)
		}
	}
	if got, want := tbl.Count(), int64(len(acked)); got != want {
		t.Fatalf("recovered count = %d, want %d", got, want)
	}
	st := tbl.Stats()
	if got, want := st.LogLiveBlobs, int64(len(acked)); got != want {
		t.Fatalf("recovered live blobs = %d, want %d (ghost or lost blob)", got, want)
	}
	if wantOrphanFree && st.LogFreeBytes == 0 {
		t.Fatal("orphaned blob was not reclaimed onto the free list")
	}
	// The table keeps functioning, reusing reclaimed log space.
	for i := 1 << 20; i < 1<<20+500; i++ {
		if err := tbl.InsertB(varKey(i, 32), varVal(i, 32)); err != nil {
			t.Fatalf("post-recovery InsertB %d: %v", i, err)
		}
	}
	for i := 1 << 20; i < 1<<20+500; i++ {
		if v, ok := tbl.GetB(varKey(i, 32)); !ok || !bytes.Equal(v, varVal(i, 32)) {
			t.Fatalf("post-recovery GetB %d = %v", i, ok)
		}
	}
}

// crashVarHook arms one varlog hook, runs one more InsertB (which must
// crash inside it), and returns the pool for verification.
func crashVarHook(t *testing.T, arm func(tbl *Table, fire func())) (*pmem.Pool, map[int][]byte) {
	t.Helper()
	pool, tbl, acked := varCrashTable(t, 400)
	fire := func() {
		pool.Crash()
		panic(crashNow{})
	}
	arm(tbl, fire)
	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashNow); !ok {
					panic(r)
				}
				c = true
			}
		}()
		if err := tbl.InsertB(varKey(1<<30, 48), varVal(7, 48)); err != nil {
			t.Fatalf("crashing InsertB returned: %v", err)
		}
		return false
	}()
	if !crashed {
		t.Fatal("InsertB finished without triggering the crash hook")
	}
	return pool, acked
}

// TestCrashAfterBlobAppend: power loss between the blob's payload persist
// and its commit word. The blob is uncommitted on media; Open reclaims it
// and the unacknowledged insert vanishes without a trace.
func TestCrashAfterBlobAppend(t *testing.T) {
	pool, acked := crashVarHook(t, func(tbl *Table, fire func()) {
		tbl.hookVarAppended = fire
	})
	verifyVarCrashRecovery(t, pool, acked, true)
}

// TestCrashAfterBlobCommit: power loss between the blob's commit word and
// the bucket-slot publish. The blob is committed but unreferenced; Open
// must reclaim it — deterministically, not leak it — and must not
// resurrect it as a record.
func TestCrashAfterBlobCommit(t *testing.T) {
	pool, acked := crashVarHook(t, func(tbl *Table, fire func()) {
		tbl.hookVarCommitted = fire
	})
	verifyVarCrashRecovery(t, pool, acked, true)
}

// TestCrashMidUpdateCOW: power loss after a copy-on-write update committed
// its new blob but before the slot word flipped. The old value must
// survive; the new blob is reclaimed.
func TestCrashMidUpdateCOW(t *testing.T) {
	pool, tbl, acked := varCrashTable(t, 400)
	fire := func() {
		pool.Crash()
		panic(crashNow{})
	}
	tbl.hookVarMidUpdate = fire
	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashNow); !ok {
					panic(r)
				}
				c = true
			}
		}()
		if ok, err := tbl.UpdateB(varKey(7, 16+7%100), varVal(999, 77)); !ok || err != nil {
			t.Fatalf("crashing UpdateB returned: %v %v", ok, err)
		}
		return false
	}()
	if !crashed {
		t.Fatal("UpdateB finished without triggering the crash hook")
	}
	// acked still holds the OLD value for key 7 — exactly what recovery
	// must serve.
	verifyVarCrashRecovery(t, pool, acked, true)
}

// TestCrashMidConvertUpdate: the representation-converting flavor of the
// same window — an inline record updated to a long value crashes after the
// new indirect record was inserted but potentially before the old inline
// slot was deleted. Recovery dedupes by canonical key, so the key exists
// exactly once afterwards, with either the old or the new value (the
// update was never acknowledged).
func TestCrashMidConvertUpdate(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 32 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tbl.Insert(uint64(i), uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	newVal := varVal(5, 60)
	tbl.hookVarMidUpdate = func() {
		pool.Crash()
		panic(crashNow{})
	}
	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashNow); !ok {
					panic(r)
				}
				c = true
			}
		}()
		kb := varKey(5, 8)
		if ok, err := tbl.UpdateB(kb, newVal); !ok || err != nil {
			t.Fatalf("crashing UpdateB returned: %v %v", ok, err)
		}
		return false
	}()
	if !crashed {
		t.Fatal("converting UpdateB finished without crashing")
	}
	tbl2, err := Open(pool)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer tbl2.Close()
	if got := tbl2.Count(); got != 200 {
		t.Fatalf("count after conversion crash = %d, want 200 (no ghost duplicate)", got)
	}
	v, ok := tbl2.Get(5)
	if !ok {
		t.Fatal("key 5 lost across conversion crash")
	}
	if v != 15 {
		t.Fatalf("key 5 = %d after crash-before-flip, want old value 15", v)
	}
	for i := 0; i < 200; i++ {
		if i == 5 {
			continue
		}
		if got, ok := tbl2.Get(uint64(i)); !ok || got != uint64(i)*3 {
			t.Fatalf("key %d = %d, %v", i, got, ok)
		}
	}
}
