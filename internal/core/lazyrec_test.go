package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dash/internal/pmem"
)

// Tests for the lazy O(directory) recovery protocol (lazyrec.go): the clean
// fast path, the crash path's first-touch gates under concurrency, and the
// single-use clean marker.

// withLazyGates disables the background recovery driver for the duration of
// one test, so segments stay unrecovered until the test itself touches them.
// Tests in this package run sequentially, so flipping the package-level knob
// is safe.
func withLazyGates(t *testing.T) {
	t.Helper()
	disableBackgroundRecovery.Store(true)
	t.Cleanup(func() { disableBackgroundRecovery.Store(false) })
}

// reopenImage restarts a durable pool image, modeling power-up.
func reopenImage(t *testing.T, img []byte) (*Table, *pmem.Pool) {
	t.Helper()
	pool, err := pmem.OpenSnapshot(img, pmem.Options{TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(pool)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return tbl, pool
}

func lazyVarKey(i int) []byte { return []byte(fmt.Sprintf("lazy-var-key-%04d", i)) }
func lazyVarVal(i int) []byte { return []byte(fmt.Sprintf("lazy-var-val-%d-%d", i, i*31)) }

// TestLazyCleanShutdownFastPath: after Close persisted the clean marker and
// the count, Open must restore Count straight from the root — before any
// segment is touched — and leave every segment pending; reads then recover
// segments through the gates, and RecoverAll finishes the rest.
func TestLazyCleanShutdownFastPath(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 64 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	const nU, nV = 2000, 300
	for k := uint64(0); k < nU; k++ {
		if err := tbl.Insert(k, k*5+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nV; i++ {
		if err := tbl.InsertB(lazyVarKey(i), lazyVarVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 200; k++ { // deletes so count != inserts
		if !tbl.Delete(k * 7) {
			t.Fatalf("delete %d", k*7)
		}
	}
	want := tbl.Count()
	tbl.Close()
	img := pool.Snapshot()

	withLazyGates(t)
	tbl2, pool2 := reopenImage(t, img)
	st := tbl2.Stats()
	if st.Count != want {
		t.Fatalf("clean open Count = %d, want %d (root-restored, no segment touched)", st.Count, want)
	}
	if st.RecoveryPendingSegments != int64(st.Segments) || st.Segments < 2 {
		t.Fatalf("pending = %d, want every one of %d segments", st.RecoveryPendingSegments, st.Segments)
	}
	if st.RecoveryOpenNS <= 0 {
		t.Fatal("RecoveryOpenNS not recorded")
	}
	for k := uint64(0); k < nU; k++ { // reads through the first-touch gates
		v, ok := tbl2.Get(k)
		if k%7 == 0 && k/7 < 200 {
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
			continue
		}
		if !ok || v != k*5+1 {
			t.Fatalf("key %d = %d,%v want %d", k, v, ok, k*5+1)
		}
	}
	tbl2.RecoverAll()
	st = tbl2.Stats()
	if st.RecoveryPendingSegments != 0 {
		t.Fatalf("still %d pending after RecoverAll", st.RecoveryPendingSegments)
	}
	if st.RecoveryFullNS < st.RecoveryOpenNS {
		t.Fatalf("FullNS %d < OpenNS %d", st.RecoveryFullNS, st.RecoveryOpenNS)
	}
	if got := tbl2.Count(); got != want {
		t.Fatalf("recovered Count = %d, want %d", got, want)
	}
	for i := 0; i < nV; i++ {
		v, ok := tbl2.GetB(lazyVarKey(i))
		if !ok || !bytes.Equal(v, lazyVarVal(i)) {
			t.Fatalf("var key %d = %q,%v", i, v, ok)
		}
	}
	if bad := tbl2.mirrorVerifyAll(); bad != 0 {
		t.Fatalf("mirror diverges in %d buckets after lazy recovery", bad)
	}
	if err := tbl2.verifyLogLive(); err != nil {
		t.Fatal(err)
	}

	// The clean marker is single-use: Open consumed (cleared and persisted)
	// it, so crashing now and reopening must take the crash path and still
	// converge to the same state.
	pool2.Crash()
	tbl3, _ := reopenImage(t, pool2.Snapshot())
	tbl3.RecoverAll()
	if got := tbl3.Count(); got != want {
		t.Fatalf("post-marker-consumption crash reopen Count = %d, want %d", got, want)
	}
	tbl3.Close()
}

// TestLazyFirstTouchConcurrent is the -race workout for the first-touch
// gate: a crash image is reopened with the background driver disabled, then
// 8 goroutines race Get/Insert/Delete/Update onto the same unrecovered
// segments. Each segment must recover exactly once (the lazy.segments
// counter equals the open-time segment count), no acknowledged record may be
// lost or duplicated, and the mirrors must be coherent after the gates
// release.
func TestLazyFirstTouchConcurrent(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 64 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	const nOld = 2*slotsPerSegment + 300
	const nVar = 200
	for k := uint64(0); k < nOld; k++ {
		if err := tbl.Insert(k, k*7+3); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nVar; i++ {
		if err := tbl.InsertB(lazyVarKey(i), lazyVarVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	img := pool.Snapshot() // no Close: crash-path image

	withLazyGates(t)
	tbl2, _ := reopenImage(t, img)
	segs0 := tbl2.Stats().Segments
	if segs0 < 3 {
		t.Fatalf("only %d segments; the gate race needs several", segs0)
	}
	if got := tbl2.recoveryPending(); got != int64(segs0) {
		t.Fatalf("pending = %d, want %d", got, segs0)
	}

	// Old key k's fate is owned by worker k%workers: k%3==0 deleted,
	// k%3==1 updated to k*7+4, k%3==2 left alone. Non-owners read the key
	// concurrently and must see a state consistent with that fate. Every
	// worker also inserts fresh keys, forcing splits to race the gates.
	const workers = 8
	const freshPerWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for k := uint64(0); k < nOld; k++ {
				old, upd := k*7+3, k*7+4
				if k%workers == w {
					switch k % 3 {
					case 0:
						if !tbl2.Delete(k) {
							t.Errorf("owner delete %d: not found", k)
							return
						}
					case 1:
						if ok, err := tbl2.Update(k, upd); err != nil || !ok {
							t.Errorf("owner update %d: %v %v", k, ok, err)
							return
						}
					default:
						if v, ok := tbl2.Get(k); !ok || v != old {
							t.Errorf("owner get %d = %d,%v want %d", k, v, ok, old)
							return
						}
					}
					continue
				}
				v, ok := tbl2.Get(k)
				switch k % 3 {
				case 0: // racing a delete: present-with-old or absent
					if ok && v != old {
						t.Errorf("key %d mid-delete = %d, want %d or absent", k, v, old)
						return
					}
				case 1: // racing an update: old or new, never absent
					if !ok || (v != old && v != upd) {
						t.Errorf("key %d mid-update = %d,%v want %d or %d", k, v, ok, old, upd)
						return
					}
				default:
					if !ok || v != old {
						t.Errorf("key %d = %d,%v want %d", k, v, ok, old)
						return
					}
				}
				if k < nVar {
					b, okB := tbl2.GetB(lazyVarKey(int(k)))
					if !okB || !bytes.Equal(b, lazyVarVal(int(k))) {
						t.Errorf("var key %d = %q,%v", k, b, okB)
						return
					}
				}
			}
			base := uint64(1<<40) | (w << 20)
			for i := uint64(0); i < freshPerWorker; i++ {
				if err := tbl2.Insert(base|i, base+i); err != nil {
					t.Errorf("fresh insert %#x: %v", base|i, err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	tbl2.RecoverAll()

	// Exactly-once recovery: every open-time segment through the gate once;
	// split siblings born after Open are never counted.
	if got := tbl2.Metrics().Snapshot().Counters["recovery.lazy.segments"]; got != uint64(segs0) {
		t.Fatalf("recovery.lazy.segments = %d, want exactly %d", got, segs0)
	}
	if got := tbl2.Stats().RecoveryPendingSegments; got != 0 {
		t.Fatalf("%d segments still pending", got)
	}

	deleted := int64(0)
	for k := uint64(0); k < nOld; k++ {
		v, ok := tbl2.Get(k)
		switch k % 3 {
		case 0:
			if ok {
				t.Fatalf("deleted key %d survived as %d", k, v)
			}
			deleted++
		case 1:
			if !ok || v != k*7+4 {
				t.Fatalf("updated key %d = %d,%v want %d", k, v, ok, k*7+4)
			}
		default:
			if !ok || v != k*7+3 {
				t.Fatalf("key %d = %d,%v want %d", k, v, ok, k*7+3)
			}
		}
	}
	for w := uint64(0); w < workers; w++ {
		base := uint64(1<<40) | (w << 20)
		for i := uint64(0); i < freshPerWorker; i++ {
			if v, ok := tbl2.Get(base | i); !ok || v != base+i {
				t.Fatalf("fresh key %#x = %d,%v", base|i, v, ok)
			}
		}
	}
	wantCount := int64(nOld) - deleted + int64(nVar) + workers*freshPerWorker
	if got := tbl2.Count(); got != wantCount {
		t.Fatalf("Count = %d, want %d (ghost or duplicate slots)", got, wantCount)
	}
	if bad := tbl2.mirrorVerifyAll(); bad != 0 {
		t.Fatalf("mirror diverges in %d buckets after gated recovery", bad)
	}
	if err := tbl2.verifyLogLive(); err != nil {
		t.Fatal(err)
	}
}

// TestLazyCloseAfterCrashOpen: Close on a lazily opened table must force
// full recovery and persist the count + clean marker, so the next reopen
// takes the clean fast path with the exact count.
func TestLazyCloseAfterCrashOpen(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 32 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	for k := uint64(0); k < n; k++ {
		if err := tbl.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	img := pool.Snapshot() // crash image

	withLazyGates(t)
	tbl2, pool2 := reopenImage(t, img)
	tbl2.Close() // forces RecoverAll, then persists count + clean marker

	tbl3, _ := reopenImage(t, pool2.Snapshot())
	if got := tbl3.Stats().Count; got != n {
		t.Fatalf("clean reopen Count = %d, want %d", got, n)
	}
	for k := uint64(0); k < n; k += 97 {
		if v, ok := tbl3.Get(k); !ok || v != k+1 {
			t.Fatalf("key %d = %d,%v", k, v, ok)
		}
	}
	tbl3.Close()
}
