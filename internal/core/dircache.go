package core

import (
	"sync/atomic"

	"dash/internal/hashfn"
	"dash/internal/obs"
	"dash/internal/pmem"
)

// DRAM-resident directory cache. The PM directory block (directory.go) stays
// the crash-consistent source of truth, but on the hot paths it is pure
// overhead: every Get/Insert/Delete/Update used to pay three charged PM reads
// (root pointer, directory depth, directory entry) plus two more for the
// segment-header pattern check before touching a single bucket. All of that
// state is reconstructible, so — following the paper's goal of a probe
// costing ~one segment access (§4.3, §4.7) — a dirCache mirrors it in
// ordinary Go memory:
//
//   - the global depth and the mirrored directory block's address,
//   - one packed word per directory entry: the segment's 256-aligned PM
//     address OR'd with its local depth in the low byte (the segment's
//     pattern needs no slot of its own: pattern = entryIndex >> (global −
//     local)). The hot route() path needs only the address; the mirrored
//     local depth is what the coherence checks (and any future shape
//     introspection) read without touching PM segment headers.
//
// Operations route through the cache first and touch PM metadata only to
// validate (validateRoute) or repair (cacheRepair). Coherence is
// write-through: split publish and directory doubling update the cache under
// dirMu before the splitting segment's bucket locks are released, so the
// cache is stale only while a structural change is in flight. Correctness
// never depends on that freshness — a stale route can only produce a failed
// validation (readers re-check against the PM directory before trusting a
// miss; writers validate after locking, and a seqlock-stable positive hit is
// valid wherever the route came from, because a key's record is physically
// present only in segments the directory routes it to, the copy/sweep window
// of a split being covered by the segment's bucket locks). A failed
// validation falls back to the PM path via cacheRepair and retries.
//
// Open and Create build the cache with one O(directory) pass; nothing about
// it is persisted.
type dirCache struct {
	// view is an immutable-shape snapshot: the entries slice is fixed at
	// 2^depth and only ever swapped wholesale (doubling, rebuild). Entry
	// values mutate in place through the atomics.
	view atomic.Pointer[dirView]

	// hits counts routes that served their operation (a seqlock-stable
	// positive read, or a route validateRoute confirmed against PM);
	// misses counts stale routes that forced a repair + retry. Both are
	// goroutine-sharded obs.Counters so the every-operation increment
	// cannot make one counter cacheline a table-wide hotspot at real
	// thread counts. rebuilds counts full O(directory) reconstructions
	// (Create, Open, and the belt-and-braces depth-mismatch path of
	// cacheRepair) — rare, but registered the same way for uniformity.
	// All three live in the table's obs.Registry (initObs) under
	// dircache.* names.
	hits     *obs.Counter
	misses   *obs.Counter
	rebuilds *obs.Counter
}

type dirView struct {
	depth   uint8
	dir     pmem.Addr // the PM directory block this view mirrors
	entries []atomic.Uint64
}

// entryDepthBits is the low-bit budget for the local depth packed into an
// entry word; segment addresses are allocAlign-aligned so these bits are
// always zero in the address.
const entryDepthBits = allocAlign - 1

func packEntry(seg pmem.Addr, local uint8) uint64 {
	return uint64(seg) | uint64(local)
}

func unpackEntry(e uint64) (seg pmem.Addr, local uint8) {
	return pmem.Addr(e &^ entryDepthBits), uint8(e & entryDepthBits)
}

// route returns the cached segment and local depth for the key's directory
// slot. Pure DRAM: no PM traffic, no locks. The result may be stale while a
// split or doubling is in flight; callers validate before trusting it.
func (c *dirCache) route(parts hashfn.Parts) (seg pmem.Addr, local uint8) {
	v := c.view.Load()
	return unpackEntry(v.entries[parts.DirIndex(v.depth)].Load())
}

// cacheRebuild reconstructs the whole view from the PM directory in one
// O(directory) pass — the Open/Create path, and the recovery path for a view
// that no longer matches the PM directory's shape. Single-threaded callers
// (Create, recover) call it directly; concurrent callers must hold dirMu
// so the swap cannot race a doubling.
func (t *Table) cacheRebuild() {
	p := t.pool
	dir := pmem.Addr(p.LoadU64(rootAddr.Add(rootOffDir)))
	depth := dirDepth(p, dir)
	n := uint64(1) << depth
	v := &dirView{depth: depth, dir: dir, entries: make([]atomic.Uint64, n)}
	depths := make(map[pmem.Addr]uint8)
	for i := uint64(0); i < n; i++ {
		seg := dirLoadEntry(p, dir, i)
		l, ok := depths[seg]
		if !ok {
			l = segDepth(p, seg)
			depths[seg] = l
		}
		v.entries[i].Store(packEntry(seg, l))
	}
	t.cache.view.Store(v)
	t.cache.rebuilds.Inc()
}

// cacheRepair refreshes the key's route from the PM directory after a failed
// validation. It serializes on dirMu so it cannot race the write-through
// of an in-flight split publish or doubling (and taking the mutex also means
// a repair naturally waits out the directory change that made the route
// stale). If the view no longer mirrors the current directory block — which
// write-through should make impossible, but a cache poisoned by a bug or a
// test must still heal — the whole view is rebuilt.
func (t *Table) cacheRepair(parts hashfn.Parts) {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	t.fr.Record(obs.EvRouteRepair, obs.TagNone, parts.Hash, 0)
	p := t.pool
	v := t.cache.view.Load()
	dir := pmem.Addr(p.LoadU64(rootAddr.Add(rootOffDir)))
	if dir != v.dir || dirDepth(p, dir) != v.depth {
		t.cacheRebuild()
		return
	}
	idx := parts.DirIndex(v.depth)
	seg := dirLoadEntry(p, dir, idx)
	v.entries[idx].Store(packEntry(seg, segDepth(p, seg)))
}

// cachePublishSplit write-through: mirror a completed split of the entry
// range [start, start+span) — lower half keeps oldSeg, upper half routes to
// newSeg, both now at newLocal. The caller holds dirMu and every bucket
// lock of oldSeg, so this lands before any operation can observe the
// post-split segment metadata.
func (t *Table) cachePublishSplit(oldSeg, newSeg pmem.Addr, newLocal uint8, start, span uint64) {
	v := t.cache.view.Load()
	half := span >> 1
	for i := start; i < start+half; i++ {
		v.entries[i].Store(packEntry(oldSeg, newLocal))
	}
	for i := start + half; i < start+span; i++ {
		v.entries[i].Store(packEntry(newSeg, newLocal))
	}
}

// cacheDouble write-through: install the doubled view right after the PM
// root pointer flipped to newDir. Every old entry is duplicated, preserving
// each segment's packed local depth (doubling changes no segment's
// coverage). The caller holds dirMu.
func (t *Table) cacheDouble(newDir pmem.Addr) {
	old := t.cache.view.Load()
	n := uint64(len(old.entries))
	v := &dirView{depth: old.depth + 1, dir: newDir, entries: make([]atomic.Uint64, 2*n)}
	for i := uint64(0); i < n; i++ {
		e := old.entries[i].Load()
		v.entries[2*i].Store(e)
		v.entries[2*i+1].Store(e)
	}
	t.cache.view.Store(v)
}
