package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dash/internal/pmem"
)

// TestConcurrentMixedOps runs mixed Insert/Get/Delete/Update from 8 writer
// goroutines plus 2 pure-reader goroutines. Readers go through the
// optimistic path only — no reader ever takes a bucket lock — so running
// this under `go test -race` checks both the locking protocol and the
// seqlock read validation, across segment splits and directory doublings.
func TestConcurrentMixedOps(t *testing.T) {
	const (
		writers   = 8
		readers   = 2
		perWriter = 2500
		keyStride = uint64(1) << 32 // disjoint key space per writer
	)
	tbl := newTestTable(t, 32<<20, Options{})

	var wg, rwg sync.WaitGroup
	var done atomic.Bool
	var insertErrs atomic.Int64

	// Pure readers: hammer Get over the whole key space while the structure
	// splits and doubles underneath them.
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				w := uint64(rng.Intn(writers))
				i := uint64(rng.Intn(perWriter))
				key := w*keyStride + i
				if v, ok := tbl.Get(key); ok && v != key+1 && v != key+2 {
					t.Errorf("reader saw impossible value %d for key %d", v, key)
					return
				}
			}
		}(int64(r))
	}

	// Writers: each owns a disjoint key range. Insert everything, update a
	// third, delete a third, with interleaved reads of its own keys.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			base := w * keyStride
			for i := uint64(0); i < perWriter; i++ {
				key := base + i
				if err := tbl.Insert(key, key+1); err != nil {
					insertErrs.Add(1)
					return
				}
				if i%7 == 0 {
					if v, ok := tbl.Get(key); !ok || v != key+1 {
						t.Errorf("writer %d lost own key %d (%d,%v)", w, key, v, ok)
						return
					}
				}
			}
			for i := uint64(0); i < perWriter; i++ {
				key := base + i
				switch i % 3 {
				case 0:
					if !tbl.Delete(key) {
						t.Errorf("writer %d: Delete(%d) reported missing", w, key)
						return
					}
				case 1:
					if ok, err := tbl.Update(key, key+2); !ok || err != nil {
						t.Errorf("writer %d: Update(%d) reported missing", w, key)
						return
					}
				}
			}
		}(uint64(w))
	}

	// Stop readers once writers finish.
	wg.Wait()
	done.Store(true)
	rwg.Wait()

	if n := insertErrs.Load(); n != 0 {
		t.Fatalf("%d inserts failed", n)
	}

	// Single-threaded verification of the final deterministic state.
	var want int64
	for w := uint64(0); w < writers; w++ {
		for i := uint64(0); i < perWriter; i++ {
			key := w*keyStride + i
			v, ok := tbl.Get(key)
			switch i % 3 {
			case 0:
				if ok {
					t.Fatalf("deleted key %d still present", key)
				}
			case 1:
				if !ok || v != key+2 {
					t.Fatalf("updated key %d = %d,%v want %d", key, v, ok, key+2)
				}
				want++
			case 2:
				if !ok || v != key+1 {
					t.Fatalf("inserted key %d = %d,%v want %d", key, v, ok, key+1)
				}
				want++
			}
		}
	}
	if got := tbl.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// TestConcurrentSameKeys aims writers at the *same* keys so bucket-lock
// contention, duplicate-insert detection and delete/insert races on one
// slot all get exercised. Invariant: a key is either absent or carries a
// value some writer actually wrote for it.
func TestConcurrentSameKeys(t *testing.T) {
	const (
		workers = 8
		keys    = 512
		iters   = 400
	)
	tbl := newTestTable(t, 16<<20, Options{})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				key := uint64(rng.Intn(keys))
				switch rng.Intn(4) {
				case 0:
					err := tbl.Insert(key, key*10)
					if err != nil && err != ErrKeyExists {
						t.Errorf("insert %d: %v", key, err)
						return
					}
				case 1:
					tbl.Delete(key)
				case 2:
					tbl.Update(key, key*10) // racing mutator; outcome observed via Get below
				case 3:
					if v, ok := tbl.Get(key); ok && v != key*10 {
						t.Errorf("key %d has impossible value %d", key, v)
						return
					}
				}
			}
		}(int64(w) * 7919)
	}
	wg.Wait()

	var live int64
	for k := uint64(0); k < keys; k++ {
		if v, ok := tbl.Get(k); ok {
			live++
			if v != k*10 {
				t.Fatalf("key %d = %d, want %d", k, v, k*10)
			}
		}
	}
	if got := tbl.Count(); got != live {
		t.Fatalf("count = %d, live keys = %d", got, live)
	}
}

// TestConcurrentWithCrashTracking combines the two hard modes: a
// crash-tracked pool under concurrent writers (Flush must snapshot lines
// atomically while neighbors' lock words change), then power loss and
// recovery of everything the writers were acknowledged.
func TestConcurrentWithCrashTracking(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 16 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				key := w<<32 + i
				if err := tbl.Insert(key, key+9); err != nil {
					t.Errorf("insert %d: %v", key, err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()

	pool.Crash()
	tbl2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(0); w < workers; w++ {
		for i := uint64(0); i < per; i++ {
			key := w<<32 + i
			if v, ok := tbl2.Get(key); !ok || v != key+9 {
				t.Fatalf("after crash Get(%d) = %d,%v", key, v, ok)
			}
		}
	}
	if got := tbl2.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}
