package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dash/internal/hashfn"
	"dash/internal/obs"
	"dash/internal/pmem"
)

// Lazy per-segment recovery (§4.6): Open does only the O(directory) work —
// entry claims, segment metadata fixes, lock resets, chunk-chain validation,
// dirCache rebuild — and defers everything O(data) to first touch. Every
// directory-reachable segment starts "unrecovered" in a DRAM side table; the
// first operation routed to it wins a CAS gate (the split-claim idiom) and
// runs the per-segment reconcile — misroute/duplicate/ghost sweeps, count
// re-derivation, filter-mirror install — while losers spin the winner out.
// The record-log sweep runs as an incremental background pass once every
// segment has recovered (it needs the complete reference set), free-listing
// dead blobs in small batches under epoch guards.
//
// After a *clean* shutdown (Close persisted the root's clean marker) the
// per-segment sweeps and the count derivation are skipped entirely — the
// image is reconciled by construction — but first touch still installs the
// segment's mirror and contributes its blob references, and the background
// pass still runs to rebuild the record log's DRAM free list.

const (
	segRecPending uint32 = iota
	segRecInFlight
	segRecDone
)

// segRecoverState is one segment's first-touch gate. Pointer-stable: the
// pending map is built once in Open and read-only afterwards.
type segRecoverState struct {
	state atomic.Uint32
}

// lazyRecovery is the DRAM side table describing what Open deferred. The
// Table drops its pointer once the background pass finishes, restoring the
// ungated hot path.
type lazyRecovery struct {
	clean  bool        // clean-shutdown image: skip sweeps and count derivation
	g      uint8       // global depth at Open
	fixed  []pmem.Addr // reconciled directory image at Open, for misroute checks
	openAt int64       // obs.Now() at Open, base of time-to-fully-recovered

	// pending maps every directory-reachable segment at Open to its gate.
	// Segments created after Open (split siblings) are absent — born
	// recovered. order is the deterministic iteration for driveRecovery.
	pending   map[pmem.Addr]*segRecoverState
	order     []pmem.Addr
	remaining atomic.Int64

	// refs accumulates the blob addresses referenced by recovered segments'
	// slots, captured inside each segment's exclusive gate. Complete once
	// remaining hits zero; the background sweep then reads it without the
	// mutex (every insert happened-before the sweep's state observations).
	refMu sync.Mutex
	refs  map[pmem.Addr]struct{}

	// drvMu serializes driveRecovery (the background goroutine, RecoverAll
	// callers, Close). done flips after the log sweep completes.
	drvMu sync.Mutex
	done  atomic.Bool
}

// disableBackgroundRecovery, when set, stops Open from spawning the
// background recovery driver — tests that must observe segments in their
// unrecovered state (first-touch races, mid-sweep crashes) set it and drive
// recovery by hand. Package-private test knob, not part of the API.
var disableBackgroundRecovery atomic.Bool

// ensureRecovered gates one routed segment: a no-op once the table is fully
// recovered (single pointer load) or when seg was already handled. Called at
// the top of every op-loop iteration, before the segment's mirror or buckets
// are trusted.
func (t *Table) ensureRecovered(seg pmem.Addr) {
	lr := t.lazy.Load()
	if lr == nil {
		return
	}
	s := lr.pending[seg]
	if s == nil || s.state.Load() == segRecDone {
		return
	}
	t.firstTouch(lr, s, seg)
}

// firstTouch is the once-per-segment gate: the CAS winner recovers the
// segment, losers wait it out (no locks held at the call sites, so spinning
// is deadlock-free — the same shape as split's claim).
func (t *Table) firstTouch(lr *lazyRecovery, s *segRecoverState, seg pmem.Addr) {
	if s.state.CompareAndSwap(segRecPending, segRecInFlight) {
		t.recoverSegment(lr, seg)
		s.state.Store(segRecDone)
		lr.remaining.Add(-1)
		return
	}
	for s.state.Load() != segRecDone {
		runtime.Gosched()
	}
}

// recoverSegment runs the deferred per-segment work under the caller's
// exclusive gate: no operation can touch the segment's buckets until the
// gate releases, so the sweeps run single-threaded exactly as they did in
// eager recovery. A segment cannot split before it recovers (every mutator
// gates first), so lr.fixed/lr.g still describe its coverage.
func (t *Table) recoverSegment(lr *lazyRecovery, seg pmem.Addr) {
	p := t.pool
	start := obs.Now()
	if !lr.clean {
		segSweep(p, seg, t.seed, func(rp hashfn.Parts, _ pmem.KV) bool {
			return lr.fixed[rp.DirIndex(lr.g)] != seg
		})
		t.dedupeSegment(seg)
		t.sweepStashGhosts(seg)
		t.count.Add(int64(segCount(p, seg)))
	}
	segDone := obs.Now()

	// Mirror install + blob-reference capture in one streaming pass over the
	// reconciled buckets. The whole segment is charged as one sequential
	// read; the per-word loads inside mirrorFillBucket are quiet.
	mir := t.mirrorInstall(seg, segDepth(p, seg), segPattern(p, seg))
	var refs []pmem.Addr
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(seg, bi)
		p.TouchRead(ba, pmem.CachelineSize) // header line
		mirrorFillBucket(p, mir, seg, bi)
		m := mir.word(bi, mirBkMeta).Load()
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			if w0 := mir.recWord(bi, slot, 0).Load(); recIsIndirect(w0) {
				refs = append(refs, recBlobAddr(w0))
			}
		}
	}
	if len(refs) > 0 {
		lr.refMu.Lock()
		for _, a := range refs {
			lr.refs[a] = struct{}{}
		}
		lr.refMu.Unlock()
	}
	end := obs.Now()

	// Phase meters accumulate across first touches (the lazy analogue of the
	// eager one-shot phases); the per-segment latency histogram is what the
	// tail pays at first touch.
	t.met.recoveryNS[phaseSegments].Add(segDone - start)
	t.met.recoveryNS[phaseMirrors].Add(end - segDone)
	t.met.lazySegNS.Record(end - start)
	t.met.lazySegs.Inc()
	t.fr.RecordAt(start, obs.EvSegRecover, obs.PhaseSegments, uint64(seg), uint64(end-start))
}

// RecoverAll completes recovery synchronously: recovers every still-pending
// segment, then runs the record-log sweep to the end. Idempotent; a no-op on
// a fully recovered table. Exposed so callers that need exact global state
// (Count, Close, benchmarks measuring time-to-fully-recovered) can force the
// background work to happen now.
func (t *Table) RecoverAll() {
	if lr := t.lazy.Load(); lr != nil {
		t.driveRecovery(lr)
	}
}

// sweepStepBlobs bounds how many blobs one background sweep step classifies
// under a single epoch guard; between steps the driver yields so foreground
// operations never wait on more than one batch.
const sweepStepBlobs = 256

// driveRecovery is the incremental recovery driver: first-touch every
// pending segment (yielding between segments), then sweep the record log in
// bounded steps under epoch guards, free-listing blobs that existed at Open
// but no recovered segment references. Serialized by drvMu; both the
// background goroutine and synchronous RecoverAll callers funnel here.
func (t *Table) driveRecovery(lr *lazyRecovery) {
	lr.drvMu.Lock()
	defer lr.drvMu.Unlock()
	if lr.done.Load() {
		return
	}
	for _, seg := range lr.order {
		s := lr.pending[seg]
		if s.state.Load() != segRecDone {
			t.firstTouch(lr, s, seg)
			runtime.Gosched()
		}
	}

	// Every segment is recovered, so lr.refs is complete and frozen: each
	// insert into it happened-before the done-state load above. The sweep is
	// bounded to blobs that existed at Open (RecoverChunks snapshotted the
	// frontier), so a referenced blob freed-and-reused concurrently is
	// simply skipped — never double-freed, never handed out twice.
	lstart := obs.Now()
	sweep := t.vlog.SweepStart()
	referenced := func(a pmem.Addr) bool {
		_, ok := lr.refs[a]
		return ok
	}
	for {
		g := t.em.Enter()
		done, freed := sweep.Step(sweepStepBlobs, referenced)
		g.Exit()
		if freed > 0 {
			t.met.lazySweepFreed.Add(uint64(freed))
		}
		if done {
			break
		}
		runtime.Gosched()
	}
	lend := obs.Now()
	t.met.recoveryNS[phaseLog].Add(lend - lstart)
	t.fr.RecordAt(lstart, obs.EvRecovery, obs.PhaseLog, 0, uint64(lend-lstart))
	// Summarize the accumulated lazy phases into the trace (the eager
	// protocol's one-shot phase events), and report the total as the summed
	// phase work — the comparable of the old eager total, while FullNS is
	// the Open→done wall time foreground traffic actually experienced.
	segNS, mirNS := t.met.recoveryNS[phaseSegments].Load(), t.met.recoveryNS[phaseMirrors].Load()
	t.fr.RecordAt(lend, obs.EvRecovery, obs.PhaseSegments, 0, uint64(segNS))
	t.fr.RecordAt(lend, obs.EvRecovery, obs.PhaseMirrors, 0, uint64(mirNS))
	t.met.recoveryTotalNS.Store(t.met.recoveryNS[phaseDir].Load() + segNS + mirNS + t.met.recoveryNS[phaseLog].Load())
	t.met.recoveryFullNS.Store(lend - lr.openAt)
	lr.done.Store(true)
	t.lazy.Store(nil)
}

// recoveryPending reports how many segments still await first touch (0 on a
// fully recovered or freshly created table).
func (t *Table) recoveryPending() int64 {
	if lr := t.lazy.Load(); lr != nil {
		return lr.remaining.Load()
	}
	return 0
}

// verifyLogLive is the end-of-sweep invariant oracle: the record log's live
// set — committed blobs not parked on the free list — must equal the set of
// blobs the segments' slots reference. Quiescent-state test helper; it
// drains the epoch manager first so retired-but-unreclaimed frees settle,
// and requires recovery to have completed.
func (t *Table) verifyLogLive() error {
	if t.lazy.Load() != nil {
		return fmt.Errorf("core: verifyLogLive before recovery completed")
	}
	t.em.Drain()
	p := t.pool
	refs := make(map[pmem.Addr]struct{})
	v := t.cache.view.Load()
	seen := make(map[pmem.Addr]bool)
	for i := range v.entries {
		seg, _ := unpackEntry(v.entries[i].Load())
		if seg.IsNull() || seen[seg] {
			continue
		}
		seen[seg] = true
		for bi := 0; bi < totalBuckets; bi++ {
			ba := segBucket(seg, bi)
			m := p.QuietLoadU64(ba.Add(bkOffMeta))
			for slot := 0; slot < slotsPerBucket; slot++ {
				if !metaSlotUsed(m, slot) {
					continue
				}
				if w0 := p.QuietLoadU64(recordAddr(ba, slot)); recIsIndirect(w0) {
					refs[recBlobAddr(w0)] = struct{}{}
				}
			}
		}
	}
	free := t.vlog.FreeSpans()
	var bad []string
	t.vlog.WalkBlobs(func(a pmem.Addr, capBytes uint64, committed bool) {
		_, isRef := refs[a]
		_, isFree := free[a]
		live := committed && !isFree
		if live != isRef {
			bad = append(bad, fmt.Sprintf("blob %#x: committed=%v free=%v referenced=%v", a, committed, isFree, isRef))
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("core: log live set diverges from slot references: %v", bad)
	}
	return nil
}
