package core

import (
	"dash/internal/hashfn"
	"dash/internal/pmem"
)

// Segment layer (§4.2). A segment is a fixed array of 64 normal buckets
// followed by 2 stash buckets, prefixed by one header cacheline holding the
// segment's extendible-hashing state (local depth + pattern). Keys map to a
// target bucket b and may also live in its neighbor b+1 (balanced insert),
// migrate a neighbor's record one bucket over (displacement), or spill into
// a stash bucket with tracking metadata left in the home bucket so that
// negative lookups rarely touch the stash.
const (
	bucketBits    = 6
	normalBuckets = 1 << bucketBits // 64
	stashBuckets  = 2

	totalBuckets = normalBuckets + stashBuckets

	segHeaderSize = 64
	segOffDepth   = 0
	segOffPattern = 8

	segmentSize = segHeaderSize + totalBuckets*bucketSize

	slotsPerSegment = totalBuckets * slotsPerBucket
)

func segBucket(seg pmem.Addr, i int) pmem.Addr {
	return seg.Add(uint64(segHeaderSize + i*bucketSize))
}

func segDepth(p *pmem.Pool, seg pmem.Addr) uint8 {
	return uint8(p.LoadU64(seg.Add(segOffDepth)))
}

func segPattern(p *pmem.Pool, seg pmem.Addr) uint64 {
	return p.LoadU64(seg.Add(segOffPattern))
}

// segClaims reports whether seg's own header metadata claims key ownership:
// the key's top `local depth` hash bits equal the segment's pattern. Because
// the segments' (depth, pattern) pairs partition the hash space — and the
// transient windows where they do not are covered by the segment's bucket
// locks — a claiming segment is the directory owner of the key.
func segClaims(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts) bool {
	l := segDepth(p, seg)
	return hashfn.SegmentIndex(parts.Hash, l) == segPattern(p, seg)
}

// segSetMeta updates local depth and pattern and persists the header line.
func segSetMeta(p *pmem.Pool, seg pmem.Addr, depth uint8, pattern uint64) {
	p.StoreU64(seg.Add(segOffDepth), uint64(depth))
	p.StoreU64(seg.Add(segOffPattern), pattern)
	p.Persist(seg, segHeaderSize)
}

// segInit zeroes a freshly allocated segment and writes its header. The
// caller persists the whole range once it is fully populated; until then the
// segment is unpublished and invisible to every other goroutine.
func segInit(p *pmem.Pool, seg pmem.Addr, depth uint8, pattern uint64) {
	p.Zero(seg, segmentSize)
	p.StoreU64(seg.Add(segOffDepth), uint64(depth))
	p.StoreU64(seg.Add(segOffPattern), pattern)
}

func segPersist(p *pmem.Pool, seg pmem.Addr) {
	p.Flush(seg, segmentSize)
	p.Fence()
}

// lockPair acquires the two candidate buckets of a key in ascending index
// order; with every writer following the same order (normal buckets
// ascending, then stash buckets ascending, displacement targets only via
// trylock) the lock graph is acyclic.
func lockPair(p *pmem.Pool, seg pmem.Addr, b1, b2 int) {
	if b2 < b1 {
		b1, b2 = b2, b1
	}
	lockBucket(p, segBucket(seg, b1))
	lockBucket(p, segBucket(seg, b2))
}

func unlockPair(p *pmem.Pool, seg pmem.Addr, b1, b2 int) {
	unlockBucket(p, segBucket(seg, b1))
	unlockBucket(p, segBucket(seg, b2))
}

// recLoc names a record inside a segment.
type recLoc struct {
	bucket  int // index into the segment's bucket array (≥ normalBuckets = stash)
	slot    int
	tracked int // stash hits: tracking slot in the home bucket, or -1
}

func (l recLoc) inStash() bool { return l.bucket >= normalBuckets }

// segFindLocked locates key while the caller holds the home pair's locks.
// Stash buckets are scanned without their locks: records of this home cannot
// move (we hold the home lock, which every stash mutation of this home
// takes), and records of other homes can never alias our key.
func segFindLocked(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts, key uint64) (recLoc, bool) {
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	if slot := bucketFindLocked(p, segBucket(seg, b), parts.FP, key); slot >= 0 {
		return recLoc{bucket: b, slot: slot, tracked: -1}, true
	}
	if slot := bucketFindLocked(p, segBucket(seg, b2), parts.FP, key); slot >= 0 {
		return recLoc{bucket: b2, slot: slot, tracked: -1}, true
	}
	ba := segBucket(seg, b)
	m := p.LoadU64(ba.Add(bkOffMeta))
	hi := p.QuietLoadU64(ba.Add(bkOffFPHi))
	for i := 0; i < maxOvSlots; i++ {
		if !metaOvSlotUsed(m, i) || metaOvFP(m, i) != parts.FP {
			continue
		}
		j := ovIdxGet(hi, i)
		if slot := bucketFindLocked(p, segBucket(seg, normalBuckets+j), parts.FP, key); slot >= 0 {
			return recLoc{bucket: normalBuckets + j, slot: slot, tracked: i}, true
		}
	}
	if metaOvCount(m) > 0 {
		for j := 0; j < stashBuckets; j++ {
			if slot := bucketFindLocked(p, segBucket(seg, normalBuckets+j), parts.FP, key); slot >= 0 {
				return recLoc{bucket: normalBuckets + j, slot: slot, tracked: -1}, true
			}
		}
	}
	return recLoc{}, false
}

// segInsertLocked places a record, trying in order: the emptier of the two
// candidate buckets (balanced insert), displacing a neighbor-owned record
// one bucket over, then the stash. Returns false when the segment needs to
// split. With concurrent=true the caller holds the home pair's locks and
// this function takes the extra locks it needs (displacement target via
// trylock to stay deadlock-free, stash buckets in ascending order);
// concurrent=false is the single-owner path used on unpublished segments
// during migration.
func segInsertLocked(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts, kv pmem.KV, concurrent bool, seed uint64) bool {
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	ba, b2a := segBucket(seg, b), segBucket(seg, b2)

	// Balanced insert: prefer the bucket with more free slots, home on ties.
	f1, f2 := bucketFreeSlots(p, ba), bucketFreeSlots(p, b2a)
	if f1 >= f2 && f1 > 0 {
		return bucketInsertLocked(p, ba, parts.FP, kv)
	}
	if f2 > 0 {
		return bucketInsertLocked(p, b2a, parts.FP, kv)
	}

	// Displacement: make room in the probing bucket b2 by moving one of its
	// *own* records (home == b2, i.e. not itself displaced) to b2's probing
	// bucket b3. The moved key stays within its candidate pair, so readers
	// still find it; the copy-then-delete order means a crash can at worst
	// duplicate it, which recovery deduplicates.
	b3 := (b2 + 1) % normalBuckets
	b3a := segBucket(seg, b3)
	if !concurrent || tryLockBucket(p, b3a) {
		if bucketFreeSlots(p, b3a) > 0 {
			m := p.LoadU64(b2a.Add(bkOffMeta))
			for slot := 0; slot < slotsPerBucket; slot++ {
				if !metaSlotUsed(m, slot) {
					continue
				}
				vict := p.ReadKV(recordAddr(b2a, slot))
				vp := hashfn.Split(hashfn.HashU64(vict.Key, seed))
				if int(vp.BucketIndex(bucketBits)) != b2 {
					continue
				}
				bucketInsertLocked(p, b3a, vp.FP, vict)
				bucketDeleteLocked(p, b2a, slot)
				if concurrent {
					unlockBucket(p, b3a)
				}
				return bucketInsertLocked(p, b2a, parts.FP, kv)
			}
		}
		if concurrent {
			unlockBucket(p, b3a)
		}
	}

	// Stash: record goes to any stash bucket with room; the home bucket
	// (locked by us) learns about it via overflow metadata. Record first,
	// metadata second: a crash in between leaves an unreachable ghost that
	// recovery sweeps, never a dangling pointer.
	for j := 0; j < stashBuckets; j++ {
		sa := segBucket(seg, normalBuckets+j)
		if concurrent {
			lockBucket(p, sa)
		}
		ok := bucketInsertLocked(p, sa, parts.FP, kv)
		if concurrent {
			unlockBucket(p, sa)
		}
		if ok {
			bucketTrackOverflow(p, ba, parts.FP, j)
			return true
		}
	}
	return false
}

// segDeleteAt removes the record at loc, fixing the home bucket's overflow
// metadata when the record lived in the stash. Caller holds the home pair's
// locks (or owns the whole segment).
func segDeleteAt(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts, loc recLoc, concurrent bool) {
	sa := segBucket(seg, loc.bucket)
	if !loc.inStash() {
		bucketDeleteLocked(p, sa, loc.slot)
		return
	}
	if concurrent {
		lockBucket(p, sa)
	}
	bucketDeleteLocked(p, sa, loc.slot)
	if concurrent {
		unlockBucket(p, sa)
	}
	home := segBucket(seg, int(parts.BucketIndex(bucketBits)))
	bucketUntrackOverflow(p, home, loc.tracked)
}

// segSearchOpt is the lock-free read path: probe the candidate pair
// fingerprint-first, then follow the home bucket's overflow metadata into
// the stash. Each bucket scan is individually version-stable; cross-bucket
// races are caught by the table layer's directory revalidation.
func segSearchOpt(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts, key uint64) (uint64, bool) {
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	val, found, m, hi := bucketSearchOpt(p, segBucket(seg, b), parts.FP, key)
	if found {
		return val, true
	}
	if v2, f2, _, _ := bucketSearchOpt(p, segBucket(seg, b2), parts.FP, key); f2 {
		return v2, true
	}
	for i := 0; i < maxOvSlots; i++ {
		if !metaOvSlotUsed(m, i) || metaOvFP(m, i) != parts.FP {
			continue
		}
		j := ovIdxGet(hi, i)
		if v, f, _, _ := bucketSearchOpt(p, segBucket(seg, normalBuckets+j), parts.FP, key); f {
			return v, true
		}
	}
	if metaOvCount(m) > 0 {
		for j := 0; j < stashBuckets; j++ {
			if v, f, _, _ := bucketSearchOpt(p, segBucket(seg, normalBuckets+j), parts.FP, key); f {
				return v, true
			}
		}
	}
	return 0, false
}

// segMigrate copies every record whose split-deciding bit is 1 from src into
// the unpublished segment dst (single-owner insert path). Returns false in
// the pathological case that dst cannot absorb them.
func segMigrate(p *pmem.Pool, src, dst pmem.Addr, depth uint8, seed uint64) bool {
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(src, bi)
		m := p.LoadU64(ba.Add(bkOffMeta))
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			kv := p.ReadKV(recordAddr(ba, slot))
			parts := hashfn.Split(hashfn.HashU64(kv.Key, seed))
			if !parts.DepthBit(depth) {
				continue
			}
			if !segInsertLocked(p, dst, parts, kv, false, seed) {
				return false
			}
		}
	}
	return true
}

// segSweep deletes every record for which drop returns true, fixing stash
// tracking metadata as it goes. The caller owns every bucket of the segment
// (split cleanup holds all locks; recovery is single-threaded). Returns the
// number of records removed.
func segSweep(p *pmem.Pool, seg pmem.Addr, seed uint64, drop func(parts hashfn.Parts, kv pmem.KV) bool) int {
	removed := 0
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(seg, bi)
		m := p.LoadU64(ba.Add(bkOffMeta))
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			kv := p.ReadKV(recordAddr(ba, slot))
			parts := hashfn.Split(hashfn.HashU64(kv.Key, seed))
			if !drop(parts, kv) {
				continue
			}
			loc := recLoc{bucket: bi, slot: slot, tracked: -1}
			if loc.inStash() {
				home := segBucket(seg, int(parts.BucketIndex(bucketBits)))
				loc.tracked = findTrackedSlot(p, home, parts.FP, bi-normalBuckets)
			}
			segDeleteAt(p, seg, parts, loc, false)
			removed++
		}
	}
	return removed
}

// segCount returns the number of live records (allocation bitmap popcount).
func segCount(p *pmem.Pool, seg pmem.Addr) int {
	n := 0
	for bi := 0; bi < totalBuckets; bi++ {
		n += slotsPerBucket - bucketFreeSlots(p, segBucket(seg, bi))
	}
	return n
}
