package core

import (
	"math/bits"

	"dash/internal/hashfn"
	"dash/internal/pmem"
)

// Segment layer (§4.2). A segment is a fixed array of 64 normal buckets
// followed by 2 stash buckets, prefixed by one header cacheline holding the
// segment's extendible-hashing state (local depth + pattern). Keys map to a
// target bucket b and may also live in its neighbor b+1 (balanced insert),
// migrate a neighbor's record one bucket over (displacement), or spill into
// a stash bucket with tracking metadata left in the home bucket so that
// negative lookups rarely touch the stash.
const (
	bucketBits    = 6
	normalBuckets = 1 << bucketBits // 64
	stashBuckets  = 2

	totalBuckets = normalBuckets + stashBuckets

	segHeaderSize = 64
	segOffDepth   = 0
	segOffPattern = 8
	segOffSplit   = 16 // split-progress marker; see splitStateInFlight

	segmentSize = segHeaderSize + totalBuckets*bucketSize

	slotsPerSegment = totalBuckets * slotsPerBucket
)

// The split-state word at segOffSplit is both the runtime split-ownership
// claim and the persistent split-progress marker. Zero means no split is in
// flight. The low bit set means a split owns this segment; the remaining
// bits hold the sibling segment's (256-aligned) address once it has been
// allocated, or zero while the claim is still being set up. Recovery reads
// the marker to finish or roll back a half-migrated split (see
// Table.recover) and clears it, so — like the bucket version locks — the
// word never survives a restart.
const splitStateInFlight = 1

func segSplitState(p *pmem.Pool, seg pmem.Addr) uint64 {
	// The split word shares the header line that segClaims already charged
	// on this operation's validation, so the load is quiet
	// (one-charge-per-line discipline).
	return p.QuietLoadU64(seg.Add(segOffSplit))
}

// splitStateSibling extracts the sibling address from a split-state word
// (null while the split is claimed but the sibling not yet allocated).
func splitStateSibling(st uint64) pmem.Addr {
	return pmem.Addr(st &^ uint64(allocAlign-1))
}

func segBucket(seg pmem.Addr, i int) pmem.Addr {
	return seg.Add(uint64(segHeaderSize + i*bucketSize))
}

// touchRecordLines accounts one sequential read of the record cachelines a
// full bucket scan dereferences, so the per-record loads themselves can be
// quiet (one-charge-per-line: a scan streams the bucket's lines once; the
// header line, which also holds records 0 and 1, was already paid by the
// caller's lock acquisition or version load). Slots are allocated
// lowest-first, so only lines up to the highest used slot are charged.
func touchRecordLines(p *pmem.Pool, ba pmem.Addr, m uint64) {
	last := bits.Len64(m&slotMask) - 1 // highest used slot, -1 when empty
	if last < 2 {
		return // records 0 and 1 live in the header's cacheline
	}
	end := uint64(bkOffRecords + (last+1)*pmem.RecordSize)
	p.TouchRead(ba.Add(pmem.CachelineSize), end-pmem.CachelineSize)
}

func segDepth(p *pmem.Pool, seg pmem.Addr) uint8 {
	return uint8(p.LoadU64(seg.Add(segOffDepth)))
}

func segPattern(p *pmem.Pool, seg pmem.Addr) uint64 {
	return p.LoadU64(seg.Add(segOffPattern))
}

// segClaims reports whether seg's own header metadata claims key ownership:
// the key's top `local depth` hash bits equal the segment's pattern. Because
// the segments' (depth, pattern) pairs partition the hash space — and the
// transient windows where they do not are covered by the segment's bucket
// locks — a claiming segment is the directory owner of the key.
func segClaims(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts) bool {
	l := segDepth(p, seg)
	return hashfn.SegmentIndex(parts.Hash, l) == segPattern(p, seg)
}

// segSetMeta updates local depth and pattern and persists the header line,
// writing through to the segment's DRAM mirror when one is attached. The
// only concurrent caller is the split publish, which holds every bucket
// lock, so mirror readers cannot observe the claim mid-change.
func segSetMeta(p *pmem.Pool, mir *segMirror, seg pmem.Addr, depth uint8, pattern uint64) {
	p.StoreU64(seg.Add(segOffDepth), uint64(depth))
	p.StoreU64(seg.Add(segOffPattern), pattern)
	p.Persist(seg, segHeaderSize)
	if mir != nil {
		mir.depth.Store(uint64(depth))
		mir.pattern.Store(pattern)
	}
}

// segInit zeroes a freshly allocated segment and writes its header. The
// caller persists the whole range once it is fully populated; until then
// the segment is unpublished and invisible to every other goroutine — so
// the zeroing is quiet, its media traffic charged by that publishing flush.
func segInit(p *pmem.Pool, seg pmem.Addr, depth uint8, pattern uint64) {
	p.QuietZero(seg, segmentSize)
	p.StoreU64(seg.Add(segOffDepth), uint64(depth))
	p.StoreU64(seg.Add(segOffPattern), pattern)
}

func segPersist(p *pmem.Pool, seg pmem.Addr) {
	p.Flush(seg, segmentSize)
	p.Fence()
}

// lockPair acquires the two candidate buckets of a key in ascending index
// order; with every writer following the same order (normal buckets
// ascending, then stash buckets ascending, displacement targets only via
// trylock) the lock graph is acyclic.
func lockPair(p *pmem.Pool, mir *segMirror, seg pmem.Addr, b1, b2 int) {
	if b2 < b1 {
		b1, b2 = b2, b1
	}
	lockBucket(p, mir, segBucket(seg, b1), b1)
	lockBucket(p, mir, segBucket(seg, b2), b2)
}

func unlockPair(p *pmem.Pool, mir *segMirror, seg pmem.Addr, b1, b2 int) {
	unlockBucket(p, mir, segBucket(seg, b1), b1)
	unlockBucket(p, mir, segBucket(seg, b2), b2)
}

// recLoc names a record inside a segment.
type recLoc struct {
	bucket  int // index into the segment's bucket array (≥ normalBuckets = stash)
	slot    int
	tracked int // stash hits: tracking slot in the home bucket, or -1
}

func (l recLoc) inStash() bool { return l.bucket >= normalBuckets }

// segFindLocked locates the probe's key while the caller holds the home
// pair's locks. Stash buckets are scanned without their locks: records of
// this home cannot move (we hold the home lock, which every stash mutation
// of this home takes), and records of other homes can never alias our key.
func segFindLocked(p *pmem.Pool, vl *pmem.VarLog, seg pmem.Addr, pk *probeKey) (recLoc, bool) {
	b := int(pk.parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	if slot := bucketFindLocked(p, vl, segBucket(seg, b), pk); slot >= 0 {
		return recLoc{bucket: b, slot: slot, tracked: -1}, true
	}
	if slot := bucketFindLocked(p, vl, segBucket(seg, b2), pk); slot >= 0 {
		return recLoc{bucket: b2, slot: slot, tracked: -1}, true
	}
	ba := segBucket(seg, b)
	m := p.QuietLoadU64(ba.Add(bkOffMeta)) // header line paid by the caller's lock
	hi := p.QuietLoadU64(ba.Add(bkOffFPHi))
	for i := 0; i < maxOvSlots; i++ {
		if !metaOvSlotUsed(m, i) || metaOvFP(m, i) != pk.parts.FP {
			continue
		}
		j := ovIdxGet(hi, i)
		if slot := bucketFindLocked(p, vl, segBucket(seg, normalBuckets+j), pk); slot >= 0 {
			return recLoc{bucket: normalBuckets + j, slot: slot, tracked: i}, true
		}
	}
	if metaOvCount(m) > 0 {
		for j := 0; j < stashBuckets; j++ {
			if slot := bucketFindLocked(p, vl, segBucket(seg, normalBuckets+j), pk); slot >= 0 {
				return recLoc{bucket: normalBuckets + j, slot: slot, tracked: -1}, true
			}
		}
	}
	return recLoc{}, false
}

// segFindW0Locked locates the record whose word 0 equals w0 exactly — the
// physical-identity lookup the representation-conversion rollback needs to
// pick the *new* of two same-key records apart (word 0 is unique per
// record: an inline key exists at most once and a blob address is never
// shared between live records of one segment). Caller holds the home
// pair's locks; parts are the record's hash parts.
func segFindW0Locked(p *pmem.Pool, seg pmem.Addr, parts hashfn.Parts, w0 uint64) (recLoc, bool) {
	b := int(parts.BucketIndex(bucketBits))
	candidates := make([]int, 0, 2+stashBuckets)
	candidates = append(candidates, b, (b+1)%normalBuckets)
	for j := 0; j < stashBuckets; j++ {
		candidates = append(candidates, normalBuckets+j)
	}
	for ci, bi := range candidates {
		ba := segBucket(seg, bi)
		m := p.QuietLoadU64(ba.Add(bkOffMeta))
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) || p.QuietLoadU64(recordAddr(ba, slot)) != w0 {
				continue
			}
			loc := recLoc{bucket: bi, slot: slot, tracked: -1}
			if ci >= 2 {
				loc.tracked = findTrackedSlot(p, segBucket(seg, b), parts.FP, bi-normalBuckets)
			}
			return loc, true
		}
	}
	return recLoc{}, false
}

// segInsertLocked places a record, trying in order: the emptier of the two
// candidate buckets (balanced insert), displacing a neighbor-owned record
// one bucket over, then the stash. Returns false when the segment needs to
// split. With concurrent=true the caller holds the home pair's locks and
// this function takes the extra locks it needs (displacement target via
// trylock to stay deadlock-free, stash buckets in ascending order);
// concurrent=false is the single-owner path used by recovery. persist=false
// defers durability to a whole-segment flush (unpublished split siblings;
// see bucketInsertLocked).
func segInsertLocked(p *pmem.Pool, mir *segMirror, seg pmem.Addr, parts hashfn.Parts, kv pmem.KV, concurrent, persist bool, seed uint64) bool {
	b := int(parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	ba, b2a := segBucket(seg, b), segBucket(seg, b2)

	// Balanced insert: prefer the bucket with more free slots, home on ties.
	f1, f2 := bucketFreeSlots(p, ba), bucketFreeSlots(p, b2a)
	if f1 >= f2 && f1 > 0 {
		return bucketInsertLocked(p, mir, ba, b, parts.FP, kv, persist)
	}
	if f2 > 0 {
		return bucketInsertLocked(p, mir, b2a, b2, parts.FP, kv, persist)
	}

	// Displacement: make room in the probing bucket b2 by moving one of its
	// *own* records (home == b2, i.e. not itself displaced) to b2's probing
	// bucket b3. The moved key stays within its candidate pair, so readers
	// still find it; the copy-then-delete order means a crash can at worst
	// duplicate it, which recovery deduplicates. Disabled while a split of
	// this segment is in flight: a displacement could hop a record over the
	// migration front (out of a not-yet-copied bucket into an already-copied
	// one), and unlike a plain insert there is no assisting writer mirroring
	// the victim into the sibling.
	b3 := (b2 + 1) % normalBuckets
	b3a := segBucket(seg, b3)
	if !concurrent || tryLockBucket(p, mir, b3a, b3) {
		// The split-marker check must follow the b3 lock acquisition: the
		// migrator copies a bucket only under that bucket's lock and only
		// after storing the marker, so reading no marker through the locks
		// we hold (b, b2, b3) proves none of the three buckets has been
		// migrated yet — the displacement stays on the unmigrated side of
		// the front, where the migrator will still find its result.
		if segSplitState(p, seg)&splitStateInFlight == 0 && bucketFreeSlots(p, b3a) > 0 {
			m := p.QuietLoadU64(b2a.Add(bkOffMeta)) // b2's header line paid by its lock
			for slot := 0; slot < slotsPerBucket; slot++ {
				if !metaSlotUsed(m, slot) {
					continue
				}
				vict := p.ReadKV(recordAddr(b2a, slot))
				vp := recSplitParts(vict, seed)
				if int(vp.BucketIndex(bucketBits)) != b2 {
					continue
				}
				bucketInsertLocked(p, mir, b3a, b3, vp.FP, vict, persist)
				bucketDeleteLocked(p, mir, b2a, b2, slot, persist)
				if concurrent {
					unlockBucket(p, mir, b3a, b3)
				}
				return bucketInsertLocked(p, mir, b2a, b2, parts.FP, kv, persist)
			}
		}
		if concurrent {
			unlockBucket(p, mir, b3a, b3)
		}
	}

	// Stash: record goes to any stash bucket with room; the home bucket
	// (locked by us) learns about it via overflow metadata. Record first,
	// metadata second: a crash in between leaves an unreachable ghost that
	// recovery sweeps, never a dangling pointer.
	for j := 0; j < stashBuckets; j++ {
		sa := segBucket(seg, normalBuckets+j)
		if concurrent {
			lockBucket(p, mir, sa, normalBuckets+j)
		}
		ok := bucketInsertLocked(p, mir, sa, normalBuckets+j, parts.FP, kv, persist)
		if concurrent {
			unlockBucket(p, mir, sa, normalBuckets+j)
		}
		if ok {
			bucketTrackOverflow(p, mir, ba, b, parts.FP, j, persist)
			return true
		}
	}
	return false
}

// segDeleteAt removes the record at loc, fixing the home bucket's overflow
// metadata when the record lived in the stash. Caller holds the home pair's
// locks (or owns the whole segment). persist=false defers durability
// (unpublished split siblings; see bucketInsertLocked).
func segDeleteAt(p *pmem.Pool, mir *segMirror, seg pmem.Addr, parts hashfn.Parts, loc recLoc, concurrent, persist bool) {
	sa := segBucket(seg, loc.bucket)
	if !loc.inStash() {
		bucketDeleteLocked(p, mir, sa, loc.bucket, loc.slot, persist)
		return
	}
	if concurrent {
		lockBucket(p, mir, sa, loc.bucket)
	}
	bucketDeleteLocked(p, mir, sa, loc.bucket, loc.slot, persist)
	if concurrent {
		unlockBucket(p, mir, sa, loc.bucket)
	}
	hb := int(parts.BucketIndex(bucketBits))
	bucketUntrackOverflow(p, mir, segBucket(seg, hb), hb, loc.tracked, persist)
}

// segSearchOpt is the lock-free read path: probe the candidate pair
// fingerprint-first, then follow the home bucket's overflow metadata into
// the stash. Each bucket scan is individually version-stable; cross-bucket
// races are caught by the table layer's directory revalidation. The match
// is returned as the raw record words — the caller extracts the value in
// whichever representation it needs (blob bytes stay valid under its epoch
// guard).
func segSearchOpt(p *pmem.Pool, vl *pmem.VarLog, seg pmem.Addr, pk *probeKey) (pmem.KV, bool) {
	b := int(pk.parts.BucketIndex(bucketBits))
	b2 := (b + 1) % normalBuckets
	kv, found, m, hi := bucketSearchOpt(p, vl, segBucket(seg, b), pk)
	if found {
		return kv, true
	}
	if kv2, f2, _, _ := bucketSearchOpt(p, vl, segBucket(seg, b2), pk); f2 {
		return kv2, true
	}
	for i := 0; i < maxOvSlots; i++ {
		if !metaOvSlotUsed(m, i) || metaOvFP(m, i) != pk.parts.FP {
			continue
		}
		j := ovIdxGet(hi, i)
		if kv2, f2, _, _ := bucketSearchOpt(p, vl, segBucket(seg, normalBuckets+j), pk); f2 {
			return kv2, true
		}
	}
	if metaOvCount(m) > 0 {
		for j := 0; j < stashBuckets; j++ {
			if kv2, f2, _, _ := bucketSearchOpt(p, vl, segBucket(seg, normalBuckets+j), pk); f2 {
				return kv2, true
			}
		}
	}
	return pmem.KV{}, false
}

// segSweep deletes every record for which drop returns true, fixing stash
// tracking metadata as it goes. The caller owns every bucket of the segment
// (split cleanup holds all locks; recovery is single-threaded). Returns the
// number of records removed.
func segSweep(p *pmem.Pool, seg pmem.Addr, seed uint64, drop func(parts hashfn.Parts, kv pmem.KV) bool) int {
	removed := 0
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(seg, bi)
		m := p.LoadU64(ba.Add(bkOffMeta))
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			kv := p.ReadKV(recordAddr(ba, slot))
			parts := recSplitParts(kv, seed)
			if !drop(parts, kv) {
				continue
			}
			loc := recLoc{bucket: bi, slot: slot, tracked: -1}
			if loc.inStash() {
				home := segBucket(seg, int(parts.BucketIndex(bucketBits)))
				loc.tracked = findTrackedSlot(p, home, parts.FP, bi-normalBuckets)
			}
			// Recovery-only path: mirrors are rebuilt wholesale afterwards.
			segDeleteAt(p, nil, seg, parts, loc, false, true)
			removed++
		}
	}
	return removed
}

// segSweepBatched removes every record for which drop returns true with one
// header store + flush per *bucket* instead of per record, plus a single
// fence at the end — the persist-batched sweep the split publish runs while
// it holds every bucket lock. Only allocation bitmaps and overflow-tracking
// metadata change (all packed in the bucket meta words); dropping a bucket's
// records and untracking its stash spills therefore coalesce into one
// persisted word per touched bucket. Returns the number of records removed.
//
// known/knownValid let the caller skip record reads entirely: when
// knownValid[bi], known[bi] is the bucket's drop-slot bitmap (precomputed by
// the migration scan and proven current by the bucket's seqlock version).
// Only normal buckets may be marked known — stash drops need each record's
// hash to fix its home bucket's overflow tracking.
//
// Unlike segSweep the drop decision is computed for all records first and
// applied per meta word, so drop must not depend on sweep order (the split
// publish's depth-bit predicate does not).
func segSweepBatched(p *pmem.Pool, mir *segMirror, seg pmem.Addr, seed uint64, drop func(parts hashfn.Parts, kv pmem.KV) bool, known []uint64, knownValid []bool, hookMidSweep func()) int {
	var metas [totalBuckets]uint64 // stack-sized: the sweep allocates nothing
	var dirty [totalBuckets]bool
	for bi := 0; bi < totalBuckets; bi++ {
		// Header lines were paid by the caller's lock acquisitions.
		metas[bi] = p.QuietLoadU64(segBucket(seg, bi).Add(bkOffMeta))
	}
	removed := 0
	for bi := 0; bi < totalBuckets; bi++ {
		ba := segBucket(seg, bi)
		m := metas[bi] // pre-sweep snapshot: iterate original occupancy
		if knownValid != nil && bi < normalBuckets && knownValid[bi] {
			if drops := known[bi] & m & slotMask; drops != 0 {
				metas[bi] = m &^ drops
				dirty[bi] = true
				removed += bits.OnesCount64(drops)
			}
			continue
		}
		touchRecordLines(p, ba, m)
		for slot := 0; slot < slotsPerBucket; slot++ {
			if !metaSlotUsed(m, slot) {
				continue
			}
			kv := p.QuietReadKV(recordAddr(ba, slot))
			parts := recSplitParts(kv, seed)
			if !drop(parts, kv) {
				continue
			}
			metas[bi] = metaClearSlot(metas[bi], slot)
			dirty[bi] = true
			if bi >= normalBuckets {
				// Stash record: fix the home bucket's overflow tracking in
				// its *buffered* meta word — searching the buffer (not PM)
				// keeps two same-fingerprint drops from resolving to the
				// same tracking slot. The hi word (stash indexes) never
				// changes during a sweep, so reading it from PM is exact.
				home := int(parts.BucketIndex(bucketBits))
				hhi := p.QuietLoadU64(segBucket(seg, home).Add(bkOffFPHi))
				if ts := metaFindTracked(metas[home], hhi, parts.FP, bi-normalBuckets); ts >= 0 {
					metas[home] = metaClearOvFP(metas[home], ts)
				} else {
					metas[home] = metaAddOvCount(metas[home], -1)
				}
				dirty[home] = true
			}
			removed++
		}
	}
	fenced := false
	for bi := 0; bi < totalBuckets; bi++ {
		if !dirty[bi] {
			continue
		}
		a := segBucket(seg, bi).Add(bkOffMeta)
		p.QuietStoreU64(a, metas[bi]) // header line paid by the caller's lock
		if mir != nil {
			mir.word(bi, mirBkMeta).Store(metas[bi])
		}
		p.Flush(a, 8)
		if !fenced && hookMidSweep != nil {
			// Crash-injection point: first meta line flushed, fence and the
			// remaining buckets still pending.
			p.Fence()
			fenced = true
			hookMidSweep()
		}
	}
	p.Fence()
	return removed
}

// segCount returns the number of live records (allocation bitmap popcount).
func segCount(p *pmem.Pool, seg pmem.Addr) int {
	n := 0
	for bi := 0; bi < totalBuckets; bi++ {
		n += slotsPerBucket - bucketFreeSlots(p, segBucket(seg, bi))
	}
	return n
}
