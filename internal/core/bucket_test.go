package core

import "testing"

func TestMetaBitHelpers(t *testing.T) {
	var m uint64
	if metaFirstFree(m) != 0 || metaFreeSlots(m) != slotsPerBucket {
		t.Fatal("empty bucket should have all slots free")
	}
	for i := 0; i < slotsPerBucket; i++ {
		m = metaSetSlot(m, i)
	}
	if metaFirstFree(m) != -1 || metaFreeSlots(m) != 0 {
		t.Fatal("full bucket should have no free slots")
	}
	m = metaClearSlot(m, 5)
	if metaFirstFree(m) != 5 || !metaSlotUsed(m, 4) || metaSlotUsed(m, 5) {
		t.Fatal("clear slot 5 not reflected")
	}
}

func TestMetaOverflowHelpers(t *testing.T) {
	var m uint64
	for i := 0; i < maxOvSlots; i++ {
		if metaOvSlotUsed(m, i) {
			t.Fatalf("ov slot %d unexpectedly used", i)
		}
		m = metaSetOvFP(m, i, uint8(0xA0+i))
	}
	for i := 0; i < maxOvSlots; i++ {
		if !metaOvSlotUsed(m, i) || metaOvFP(m, i) != uint8(0xA0+i) {
			t.Fatalf("ov slot %d: used=%v fp=%#x", i, metaOvSlotUsed(m, i), metaOvFP(m, i))
		}
	}
	m = metaClearOvFP(m, 2)
	if metaOvSlotUsed(m, 2) || metaOvFP(m, 2) != 0 {
		t.Fatal("clear ov slot 2 not reflected")
	}
	// Overflow count saturates up and floors at zero.
	if metaOvCount(m) != 0 {
		t.Fatal("fresh ov count not zero")
	}
	m = metaAddOvCount(m, +1)
	m = metaAddOvCount(m, +1)
	if metaOvCount(m) != 2 {
		t.Fatalf("ov count = %d, want 2", metaOvCount(m))
	}
	m = metaAddOvCount(m, -1)
	m = metaAddOvCount(m, -1)
	m = metaAddOvCount(m, -1)
	if metaOvCount(m) != 0 {
		t.Fatalf("ov count = %d, want floor 0", metaOvCount(m))
	}
	// Count and slot bits must not clobber the allocation bitmap.
	if m&slotMask != 0 {
		t.Fatal("overflow ops leaked into allocation bitmap")
	}
}

func TestFingerprintWords(t *testing.T) {
	var lo, hi uint64
	for slot := 0; slot < slotsPerBucket; slot++ {
		lo, hi = fpSet(lo, hi, slot, uint8(slot+1))
	}
	for slot := 0; slot < slotsPerBucket; slot++ {
		if fpGet(lo, hi, slot) != uint8(slot+1) {
			t.Fatalf("fp slot %d = %d", slot, fpGet(lo, hi, slot))
		}
	}
	// Stash indexes live in the high byte of hi and must not collide with
	// the slot-8..13 fingerprints.
	for i := 0; i < maxOvSlots; i++ {
		hi = ovIdxSet(hi, i, i%stashBuckets)
	}
	for i := 0; i < maxOvSlots; i++ {
		if ovIdxGet(hi, i) != i%stashBuckets {
			t.Fatalf("ov idx %d = %d", i, ovIdxGet(hi, i))
		}
	}
	for slot := 8; slot < slotsPerBucket; slot++ {
		if fpGet(lo, hi, slot) != uint8(slot+1) {
			t.Fatalf("ov idx writes clobbered fp slot %d", slot)
		}
	}
}
