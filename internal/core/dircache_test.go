package core

import (
	"sync"
	"testing"

	"dash/internal/pmem"
)

// Directory-cache coherence tests: the DRAM view must mirror the PM
// directory after organic growth, survive deliberately poisoned (stale)
// routes on every operation, rebuild correctly after a crash, and stay
// coherent under concurrent growth (run with -race).

// verifyCacheCoherent checks the cached view against the PM directory
// entry-for-entry: same directory block, same depth, same segment per entry,
// and a packed local depth matching the segment's own header.
func verifyCacheCoherent(t *testing.T, tbl *Table) {
	t.Helper()
	p := tbl.pool
	v := tbl.cache.view.Load()
	dir := pmem.Addr(p.QuietLoadU64(rootAddr.Add(rootOffDir)))
	if v.dir != dir {
		t.Fatalf("cache mirrors directory %#x, PM root points at %#x", v.dir, dir)
	}
	g := dirDepth(p, dir)
	if v.depth != g {
		t.Fatalf("cache depth %d, PM directory depth %d", v.depth, g)
	}
	n := uint64(1) << g
	if uint64(len(v.entries)) != n {
		t.Fatalf("cache has %d entries, want %d", len(v.entries), n)
	}
	for i := uint64(0); i < n; i++ {
		want := dirLoadEntry(p, dir, i)
		seg, local := unpackEntry(v.entries[i].Load())
		if seg != want {
			t.Fatalf("entry %d: cache routes to %#x, PM directory to %#x", i, seg, want)
		}
		if wl := segDepth(p, seg); local != wl {
			t.Fatalf("entry %d: cached local depth %d, segment header says %d", i, local, wl)
		}
	}
}

// growTo inserts sequential keys from *next until the table's global depth
// reaches depth, recording acked values.
func growTo(t *testing.T, tbl *Table, depth uint8, next *uint64, acked map[uint64]uint64) {
	t.Helper()
	for tbl.GlobalDepth() < depth {
		k := *next
		*next++
		if err := tbl.Insert(k, k*7+3); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		acked[k] = k*7 + 3
	}
}

// TestDirCacheCoherentAfterGrowth: organic splits and doublings must keep
// the write-through cache exactly in sync with the PM directory.
func TestDirCacheCoherentAfterGrowth(t *testing.T) {
	tbl, err := New(64<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	acked := make(map[uint64]uint64)
	next := uint64(0)
	growTo(t, tbl, 5, &next, acked)
	verifyCacheCoherent(t, tbl)
	if m := tbl.cache.misses.Total(); m != 0 {
		t.Errorf("single-threaded growth produced %d cache misses, want 0", m)
	}
	for k, v := range acked {
		if got, ok := tbl.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
}

// TestDirCacheStaleViewAllOps: restore a view snapshotted two doublings ago
// — every route in it is allowed to be arbitrarily stale — and check that
// reads, inserts, updates and deletes all still behave correctly, that the
// staleness is detected (misses counted), and that the cache heals back to
// coherence. Correctness must not depend on cache freshness.
func TestDirCacheStaleViewAllOps(t *testing.T) {
	tbl, err := New(64<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	acked := make(map[uint64]uint64)
	next := uint64(0)
	growTo(t, tbl, 3, &next, acked)
	stale := tbl.cache.view.Load()
	growTo(t, tbl, 5, &next, acked) // ≥ 2 doublings past the snapshot

	tbl.cache.view.Store(stale)
	for k, v := range acked {
		if got, ok := tbl.Get(k); !ok || got != v {
			t.Fatalf("stale-view Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	if tbl.cache.misses.Total() == 0 {
		t.Error("reads over a two-doublings-stale view produced no cache miss")
	}
	verifyCacheCoherent(t, tbl) // the first miss must have rebuilt it

	// Writers against the stale view: update/delete of moved keys, plus
	// fresh inserts, must all detect the stale route after locking.
	tbl.cache.view.Store(stale)
	for k := range acked {
		if ok, err := tbl.Update(k, k+100); !ok || err != nil {
			t.Fatalf("stale-view Update(%d) reported missing", k)
		}
		acked[k] = k + 100
	}
	tbl.cache.view.Store(stale)
	for k := uint64(1 << 20); k < 1<<20+64; k++ {
		if err := tbl.Insert(k, k); err != nil {
			t.Fatalf("stale-view Insert(%d): %v", k, err)
		}
		acked[k] = k
	}
	tbl.cache.view.Store(stale)
	for k := uint64(1 << 20); k < 1<<20+64; k++ {
		if !tbl.Delete(k) {
			t.Fatalf("stale-view Delete(%d) reported missing", k)
		}
		delete(acked, k)
	}
	verifyCacheCoherent(t, tbl)
	for k, v := range acked {
		if got, ok := tbl.Get(k); !ok || got != v {
			t.Fatalf("post-heal Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
}

// TestDirCachePoisonedEntry: corrupt a single route (right depth, wrong
// segment) — the shape a half-missed split publish would leave — and check
// the targeted repair path: the op succeeds and only that entry is fixed up.
func TestDirCachePoisonedEntry(t *testing.T) {
	tbl, err := New(64<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	acked := make(map[uint64]uint64)
	next := uint64(0)
	growTo(t, tbl, 4, &next, acked)

	// Pick a preloaded key and point its directory slot at some other
	// segment (which, owning a different pattern, cannot hold the key).
	var key, val uint64
	for k, v := range acked {
		key, val = k, v
		break
	}
	v := tbl.cache.view.Load()
	idx := tbl.parts(key).DirIndex(v.depth)
	right, _ := unpackEntry(v.entries[idx].Load())
	var wrong pmem.Addr
	for i := range v.entries {
		if seg, local := unpackEntry(v.entries[i].Load()); seg != right {
			v.entries[idx].Store(packEntry(seg, local))
			wrong = seg
			break
		}
	}
	if wrong.IsNull() {
		t.Fatal("table has only one segment; cannot poison a route")
	}

	missesBefore := tbl.cache.misses.Total()
	if got, ok := tbl.Get(key); !ok || got != val {
		t.Fatalf("poisoned-route Get(%d) = %d,%v want %d,true", key, got, ok, val)
	}
	if tbl.cache.misses.Total() == missesBefore {
		t.Error("poisoned route produced no cache miss")
	}
	if seg, _ := unpackEntry(v.entries[idx].Load()); seg != right {
		t.Errorf("repair left entry %d at %#x, want %#x", idx, seg, right)
	}
	verifyCacheCoherent(t, tbl)
}

// TestDirCacheRebuildAfterCrash: after power loss and Open-time recovery the
// cache must be rebuilt to mirror the recovered directory in one pass.
func TestDirCacheRebuildAfterCrash(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 64 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[uint64]uint64)
	next := uint64(0)
	growTo(t, tbl, 4, &next, acked)

	pool.Crash()
	reopened, err := pmem.OpenSnapshot(pool.Snapshot(), pmem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := Open(reopened)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer tbl2.Close()
	if r := tbl2.cache.rebuilds.Total(); r != 1 {
		t.Errorf("open performed %d cache rebuilds, want 1", r)
	}
	verifyCacheCoherent(t, tbl2)
	for k, v := range acked {
		if got, ok := tbl2.Get(k); !ok || got != v {
			t.Fatalf("post-crash Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	st := tbl2.Stats()
	if st.DirCacheBytes != 8<<st.GlobalDepth {
		t.Errorf("DirCacheBytes = %d, want %d", st.DirCacheBytes, 8<<st.GlobalDepth)
	}
}

// TestDirCacheConcurrentGrowth drives concurrent writers through enough
// inserts to force many splits and several doublings while readers run over
// the already-acknowledged prefix, then checks cache coherence and that no
// operation was misrouted. Meant for -race.
func TestDirCacheConcurrentGrowth(t *testing.T) {
	tbl, err := New(256<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	const (
		writers   = 4
		perWriter = 6000
		readers   = 2
	)
	var wg sync.WaitGroup
	var done sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := uint64(0); i < perWriter; i++ {
				k := base | i
				if err := tbl.Insert(k, k^0xABCD); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		done.Add(1)
		go func(r int) {
			defer done.Done()
			for i := uint64(0); ; i = (i + 1) % perWriter {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(r)<<32 | i
				if v, ok := tbl.Get(k); ok && v != k^0xABCD {
					errc <- errStaleValue
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	done.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	verifyCacheCoherent(t, tbl)
	for w := 0; w < writers; w++ {
		base := uint64(w) << 32
		for i := uint64(0); i < perWriter; i++ {
			k := base | i
			if v, ok := tbl.Get(k); !ok || v != k^0xABCD {
				t.Fatalf("Get(%#x) = %d,%v want %d,true", k, v, ok, k^0xABCD)
			}
		}
	}
	if got, want := tbl.Count(), int64(writers*perWriter); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

var errStaleValue = &staleValueError{}

type staleValueError struct{}

func (*staleValueError) Error() string { return "reader observed a wrong value" }
