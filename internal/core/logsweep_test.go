package core

import (
	"bytes"
	"fmt"
	"testing"

	"dash/internal/pmem"
)

// The background record-log sweep (driveRecovery's final phase) classifies
// every blob that existed at Open as referenced-by-some-segment (live) or
// not (free-listed). It is pure DRAM bookkeeping: it writes nothing durable,
// so a crash mid-sweep leaves exactly the image a crash before the sweep
// leaves, and "resume after crash" is just a fresh reopen running the same
// deterministic classification. This test proves both halves: (a) the sweep
// issues no PM writes (durable image identical before and after stepping),
// and (b) two independent reopens of the same image converge on the
// identical free set and freed count — leak-or-reclaim is deterministic —
// with the end-of-sweep invariant (live set == segment-referenced set)
// checked by the verifyLogLive oracle.

func sweepKey(i int) []byte { return []byte(fmt.Sprintf("sweep-key-%04d", i)) }
func sweepVal(i, gen int) []byte {
	return []byte(fmt.Sprintf("sweep-val-%d-gen%d-%s", i, gen, string(make([]byte, i%70))))
}

// buildSweepImage populates a var-heavy table whose durable image carries
// plenty of dead blobs: updates strand their superseded copies, deletes
// strand the deleted ones (the runtime Free is epoch-deferred DRAM state the
// image never sees). Returns the crash image and the surviving id set.
func buildSweepImage(t *testing.T) ([]byte, map[int]int) {
	t.Helper()
	pool, err := pmem.NewPool(pmem.Options{Size: 64 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	live := map[int]int{} // id -> generation of its current value
	for i := 0; i < n; i++ {
		if err := tbl.InsertB(sweepKey(i), sweepVal(i, 0)); err != nil {
			t.Fatal(err)
		}
		live[i] = 0
	}
	for i := 0; i < n; i += 3 { // dead blobs via copy-on-write updates
		if ok, err := tbl.UpdateB(sweepKey(i), sweepVal(i, 1)); err != nil || !ok {
			t.Fatalf("update %d: %v %v", i, ok, err)
		}
		live[i] = 1
	}
	for i := 0; i < n; i += 5 { // dead blobs via deletes
		if !tbl.DeleteB(sweepKey(i)) {
			t.Fatalf("delete %d: not found", i)
		}
		delete(live, i)
	}
	return pool.Snapshot(), live
}

// recoverFully reopens an image and drives recovery to completion, returning
// the table plus its final free set and sweep-freed counter.
func recoverFully(t *testing.T, img []byte) (*Table, map[pmem.Addr]struct{}, uint64) {
	t.Helper()
	tbl, _ := reopenImage(t, img)
	tbl.RecoverAll()
	freed := tbl.Metrics().Snapshot().Counters["recovery.lazy.sweep_freed"]
	return tbl, tbl.vlog.FreeSpans(), freed
}

func sameSpans(a, b map[pmem.Addr]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func TestLogSweepCrashResumeDeterministic(t *testing.T) {
	withLazyGates(t)
	img, live := buildSweepImage(t)

	// Reference run: full recovery, end-of-sweep invariant, data intact.
	tblB, freeB, freedB := recoverFully(t, img)
	if freedB == 0 {
		t.Fatal("sweep reclaimed nothing; the image carries no dead blobs and the test is vacuous")
	}
	if err := tblB.verifyLogLive(); err != nil {
		t.Fatalf("end-of-sweep invariant: %v", err)
	}
	for i, gen := range live {
		v, ok := tblB.GetB(sweepKey(i))
		if !ok || !bytes.Equal(v, sweepVal(i, gen)) {
			t.Fatalf("key %d = %q,%v want gen %d", i, v, ok, gen)
		}
	}
	// No-double-handout, positively: drain the reclaimed spans into fresh
	// records; if any span had been handed out twice, a new blob would
	// overlay a live one and corrupt a surviving value.
	for i := 0; i < 400; i++ {
		if err := tblB.InsertB([]byte(fmt.Sprintf("sweep-new-%04d", i)), sweepVal(i, 9)); err != nil {
			t.Fatal(err)
		}
	}
	for i, gen := range live {
		v, ok := tblB.GetB(sweepKey(i))
		if !ok || !bytes.Equal(v, sweepVal(i, gen)) {
			t.Fatalf("key %d corrupted to %q,%v after free-list reuse (double handout)", i, v, ok)
		}
	}

	// Determinism: an independent reopen of the same image must free the
	// exact same spans. Because the sweep writes nothing durable (proven
	// below), this run IS the crash-mid-sweep reopen: the image after a
	// mid-sweep power loss is byte-identical to img.
	tblC, freeC, freedC := recoverFully(t, img)
	if freedC != freedB || !sameSpans(freeC, freeB) {
		t.Fatalf("sweep not deterministic: freed %d/%d spans %d/%d", freedC, freedB, len(freeC), len(freeB))
	}
	if err := tblC.verifyLogLive(); err != nil {
		t.Fatalf("end-of-sweep invariant on reopen: %v", err)
	}

	// Mid-sweep run: recover the segments, then step the sweep by hand in
	// small batches, checking the durable image never moves; resume the same
	// sweep to completion and require the reference free set.
	tblA, poolA := reopenImage(t, img)
	lr := tblA.lazy.Load()
	if lr == nil {
		t.Fatal("no lazy recovery state on a crash-path open")
	}
	for _, seg := range lr.order {
		tblA.ensureRecovered(seg)
	}
	durable0 := poolA.Snapshot()
	sweep := tblA.vlog.SweepStart()
	referenced := func(a pmem.Addr) bool {
		lr.refMu.Lock()
		_, ok := lr.refs[a]
		lr.refMu.Unlock()
		return ok
	}
	totalFreed, steps, done := 0, 0, false
	for !done && steps < 4 { // stop mid-sweep
		var freed int
		done, freed = sweep.Step(16, referenced)
		totalFreed += freed
		steps++
	}
	if done {
		t.Fatalf("sweep finished in %d tiny steps; image too small to interrupt", steps)
	}
	if durable1 := poolA.Snapshot(); !bytes.Equal(durable0, durable1) {
		t.Fatal("mid-sweep durable image moved: the sweep wrote PM, so crash-mid-sweep is not equivalent to crash-before-sweep")
	}
	for a := range tblA.vlog.FreeSpans() { // partial set must be a prefix of the full one
		if _, ok := freeB[a]; !ok {
			t.Fatalf("mid-sweep freed span %#x the full sweep never frees", a)
		}
	}
	for !done { // resume to completion
		var freed int
		done, freed = sweep.Step(sweepStepBlobs, referenced)
		totalFreed += freed
	}
	if uint64(totalFreed) != freedB {
		t.Fatalf("resumed sweep freed %d spans, reference freed %d", totalFreed, freedB)
	}
	if !sameSpans(tblA.vlog.FreeSpans(), freeB) {
		t.Fatal("resumed sweep converged on a different free set")
	}
	// Mark recovery complete the way driveRecovery would, then run the
	// oracle on the hand-driven table too.
	lr.done.Store(true)
	tblA.lazy.Store(nil)
	if err := tblA.verifyLogLive(); err != nil {
		t.Fatalf("end-of-sweep invariant after hand-driven resume: %v", err)
	}

	tblA.Close()
	tblB.Close()
	tblC.Close()
}
