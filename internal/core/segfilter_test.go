package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dash/internal/pmem"
)

// The segment filter mirror (segfilter.go) is pure DRAM acceleration: PM
// stays the source of truth and the mirror must agree with it at every
// quiescent point — across splits, directory doublings, crash-recovery
// rebuilds, and after deliberate corruption. mirrorVerifyAll is the oracle:
// zero mismatching buckets table-wide.

// TestMirrorCoherenceAfterSplits grows a table through many splits and at
// least one directory doubling single-threaded, interleaving deletes and
// updates, then requires the mirror to match PM exactly and every surviving
// key to read back through the mirror path.
func TestMirrorCoherenceAfterSplits(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{InitialDepth: 1})

	live := map[uint64]uint64{}
	const n = 4 * slotsPerSegment // forces splits and a doubling from depth 1
	for k := uint64(0); k < n; k++ {
		if err := tbl.Insert(k, k*3+1); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		live[k] = k*3 + 1
		switch k % 7 {
		case 3:
			del := k / 2
			if _, ok := live[del]; ok {
				if !tbl.Delete(del) {
					t.Fatalf("delete %d: not found", del)
				}
				delete(live, del)
			}
		case 5:
			upd := k / 3
			if _, ok := live[upd]; ok {
				if ok2, err := tbl.Update(upd, k); err != nil || !ok2 {
					t.Fatalf("update %d: %v %v", upd, ok2, err)
				}
				live[upd] = k
			}
		}
	}
	st := tbl.Stats()
	if st.GlobalDepth <= 1 {
		t.Fatalf("expected the fill to deepen the directory, depth still %d", st.GlobalDepth)
	}
	if bad := tbl.mirrorVerifyAll(); bad != 0 {
		t.Fatalf("mirror diverged from PM in %d buckets after splits", bad)
	}
	for k, want := range live {
		if v, ok := tbl.Get(k); !ok || v != want {
			t.Fatalf("key %d = %d,%v want %d", k, v, ok, want)
		}
	}
	if st.SegFilterBytes != uint64(st.Segments)*segMirrorBytes {
		t.Fatalf("SegFilterBytes = %d, want %d segments x %d",
			st.SegFilterBytes, st.Segments, segMirrorBytes)
	}
	if st.SegFilterBypass != 0 {
		t.Fatalf("%d reads bypassed the mirror; every segment should carry one", st.SegFilterBypass)
	}
}

// TestMirrorCoherenceConcurrent drives mixed inserts, deletes, updates and
// reads from several goroutines through splits and doublings (this is the
// -race workout for the shadow-seqlock write-through protocol), then
// verifies the quiescent mirror matches PM word for word.
func TestMirrorCoherenceConcurrent(t *testing.T) {
	tbl := newTestTable(t, 64<<20, Options{InitialDepth: 1})

	const workers = 4
	const perWorker = slotsPerSegment + 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			base := w << 32
			for i := uint64(0); i < perWorker; i++ {
				k := base | i
				if err := tbl.Insert(k, k^0x5A5A); err != nil {
					t.Errorf("insert %#x: %v", k, err)
					return
				}
				switch i % 5 {
				case 1:
					tbl.Get(base | (i / 2))
				case 2:
					tbl.Delete(base | (i / 2))
				case 3:
					tbl.Update(base|(i/3), i)
				}
			}
		}(uint64(w))
	}
	wg.Wait()

	if bad := tbl.mirrorVerifyAll(); bad != 0 {
		t.Fatalf("mirror diverged from PM in %d buckets after concurrent load", bad)
	}
	if s := tbl.Stats(); s.Splits == 0 {
		t.Fatal("fill completed without any split; the test exercised nothing")
	}
}

// TestMirrorPoisonSelfHeal corrupts a key's home bucket in the mirror —
// the silent-false-negative failure mode, invisible to every validation the
// hot path runs — and proves the sampled cross-check finds and heals it.
// Sampling is forced to 100% (mirrorSampleMask = 0) so one read suffices.
func TestMirrorPoisonSelfHeal(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{})
	tbl.mirrorSampleMask = 0

	const key, val = 12345, 999
	if err := tbl.Insert(key, val); err != nil {
		t.Fatal(err)
	}

	pk := tbl.probeU64(key)
	seg, _ := tbl.cache.route(pk.parts)
	mir := tbl.mirror(seg)
	if mir == nil {
		t.Fatal("no mirror installed for the key's segment")
	}
	b := int(pk.parts.BucketIndex(bucketBits))
	// Zero the home bucket's mirrored bitmap and fingerprints: the mirror
	// now swears the key does not exist, and the negative still validates
	// (depth/pattern claim and route are intact).
	mir.word(b, mirBkMeta).Store(0)
	mir.word(b, mirBkFPLo).Store(0)
	mir.word(b, mirBkFPHi).Store(0)

	healsBefore := tbl.filters.heals.Total()
	// First read may be served the poisoned miss, but its sampled check
	// compares the home bucket against PM, sees the divergence and repairs
	// the whole segment's mirror in place.
	tbl.Get(key)
	if tbl.filters.heals.Total() == healsBefore {
		t.Fatal("sampled cross-check did not trigger a heal")
	}
	if v, ok := tbl.Get(key); !ok || v != val {
		t.Fatalf("post-heal Get = %d,%v want %d", v, ok, val)
	}
	if bad := tbl.mirrorVerifySeg(seg); bad != 0 {
		t.Fatalf("segment mirror still has %d bad buckets after heal", bad)
	}
}

// TestMirrorRebuildAfterCrash runs a randomized op history (fixed seed, both
// inline and variable-length records), crashes the pool, reopens, and
// requires the rebuilt mirrors to (a) match PM word for word and (b) give
// exactly the answers the pre-crash history acknowledges — positives with
// exact values, negatives for deleted and never-inserted keys, all served
// through the mirror path.
func TestMirrorRebuildAfterCrash(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 64 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	live := map[uint64]uint64{}
	liveVar := map[string]string{}
	for i := 0; i < 3*slotsPerSegment; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // inline insert
			k, v := rng.Uint64()%100000, rng.Uint64()
			if _, ok := live[k]; ok {
				break
			}
			if err := tbl.Insert(k, v); err != nil {
				t.Fatalf("insert: %v", err)
			}
			live[k] = v
		case op < 7: // variable-length insert
			k := fmt.Sprintf("var-key-%d-%d", rng.Intn(5000), rng.Intn(8))
			v := fmt.Sprintf("value-%d", rng.Uint64())
			if _, ok := liveVar[k]; ok {
				break
			}
			if err := tbl.InsertB([]byte(k), []byte(v)); err != nil {
				t.Fatalf("insertB: %v", err)
			}
			liveVar[k] = v
		case op < 8: // delete a live key
			for k := range live {
				if !tbl.Delete(k) {
					t.Fatalf("delete %d: not found", k)
				}
				delete(live, k)
				break
			}
		default: // update a live key
			for k := range live {
				nv := rng.Uint64()
				if ok, err := tbl.Update(k, nv); err != nil || !ok {
					t.Fatalf("update %d: %v %v", k, ok, err)
				}
				live[k] = nv
				break
			}
		}
	}

	pool.Crash()
	tbl2, err := Open(pool)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer tbl2.Close()

	// Mirrors install lazily at first touch; force every segment's
	// recovery before running the quiescent coherence oracle.
	tbl2.RecoverAll()
	if bad := tbl2.mirrorVerifyAll(); bad != 0 {
		t.Fatalf("rebuilt mirror diverges from PM in %d buckets", bad)
	}
	for k, want := range live {
		if v, ok := tbl2.Get(k); !ok || v != want {
			t.Fatalf("after rebuild: key %d = %d,%v want %d", k, v, ok, want)
		}
	}
	for k, want := range liveVar {
		v, ok := tbl2.GetB([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("after rebuild: key %q = %q,%v want %q", k, v, ok, want)
		}
	}
	for k := uint64(200000); k < 200100; k++ { // never inserted
		if _, ok := tbl2.Get(k); ok {
			t.Fatalf("after rebuild: phantom key %d", k)
		}
	}
	if st := tbl2.Stats(); st.SegFilterBypass != 0 {
		t.Fatalf("%d post-rebuild reads found no mirror", st.SegFilterBypass)
	}
}

// TestMirrorDuringSplitMigration pauses the first split mid-migration (the
// PR 4 assist-test pattern) and probes every acknowledged key through the
// mirror path while half the old segment is copied and the sibling is
// unpublished: the sibling's mirror is installed before the split marker, so
// reads must stay exact throughout. After release, the published mirrors
// must match PM.
func TestMirrorDuringSplitMigration(t *testing.T) {
	tbl := newTestTable(t, 16<<20, Options{InitialDepth: 1})

	acked := make(map[uint64]uint64)
	paused := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	tbl.hookMidMigrate = func(_ pmem.Addr, bucket int) {
		if bucket != normalBuckets/2 {
			return
		}
		once.Do(func() {
			close(paused)
			select {
			case <-release:
			case <-time.After(splitTestTimeout):
				t.Error("prober never released the paused split")
			}
		})
	}

	proberDone := make(chan struct{})
	go func() {
		defer close(proberDone)
		<-paused
		// The inserter is parked inside the hook, so acked is frozen and the
		// channel close orders these reads after its last write.
		for k, want := range acked {
			if v, ok := tbl.Get(k); !ok || v != want {
				t.Errorf("mid-split mirror probe: key %d = %d,%v want %d", k, v, ok, want)
				break
			}
		}
		// Absent keys must also miss cleanly mid-split.
		for k := uint64(1 << 60); k < 1<<60+50; k++ {
			if _, ok := tbl.Get(k); ok {
				t.Errorf("mid-split mirror probe: phantom key %d", k)
				break
			}
		}
		close(release)
	}()

	for k := uint64(0); k < 3*slotsPerSegment; k++ {
		if err := tbl.Insert(k, k*7+3); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		acked[k] = k*7 + 3
	}
	select {
	case <-proberDone:
	case <-time.After(splitTestTimeout):
		t.Fatal("prober did not finish")
	}

	if bad := tbl.mirrorVerifyAll(); bad != 0 {
		t.Fatalf("mirror diverged from PM in %d buckets after the split published", bad)
	}
}
