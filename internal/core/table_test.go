package core

import (
	"testing"

	"dash/internal/pmem"
)

func newTestTable(t *testing.T, poolSize uint64, opt Options) *Table {
	t.Helper()
	tbl, err := New(poolSize, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestBasicOps(t *testing.T) {
	tbl := newTestTable(t, 1<<20, Options{})

	if err := tbl.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(2, 200); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(1, 111); err != ErrKeyExists {
		t.Fatalf("duplicate insert: got %v, want ErrKeyExists", err)
	}
	if v, ok := tbl.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if _, ok := tbl.Get(3); ok {
		t.Fatal("Get(3) found a missing key")
	}
	if ok, err := tbl.Update(1, 101); !ok || err != nil {
		t.Fatal("Update(1) reported missing")
	}
	if v, _ := tbl.Get(1); v != 101 {
		t.Fatalf("after update Get(1) = %d", v)
	}
	if ok, _ := tbl.Update(3, 1); ok {
		t.Fatal("Update(3) updated a missing key")
	}
	if !tbl.Delete(2) {
		t.Fatal("Delete(2) reported missing")
	}
	if tbl.Delete(2) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tbl.Get(2); ok {
		t.Fatal("deleted key still readable")
	}
	if tbl.Count() != 1 {
		t.Fatalf("count = %d, want 1", tbl.Count())
	}
}

// TestFillSplitsAndDoubles drives enough inserts through the table to force
// many segment splits and several directory doublings, then verifies every
// key, exercises deletes across the grown structure, and reinserts.
func TestFillSplitsAndDoubles(t *testing.T) {
	const n = 20000
	tbl := newTestTable(t, 8<<20, Options{})

	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(i, i*10); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if d := tbl.GlobalDepth(); d < 3 {
		t.Fatalf("global depth = %d after %d inserts, expected several doublings", d, n)
	}
	if tbl.Count() != n {
		t.Fatalf("count = %d, want %d", tbl.Count(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tbl.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v want %d", i, v, ok, i*10)
		}
	}
	for i := uint64(0); i < n; i += 2 {
		if !tbl.Delete(i) {
			t.Fatalf("Delete(%d) reported missing", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tbl.Get(i)
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && (!ok || v != i*10) {
			t.Fatalf("surviving key %d: %d,%v", i, v, ok)
		}
	}
	if tbl.Count() != n/2 {
		t.Fatalf("count = %d, want %d", tbl.Count(), n/2)
	}
	// Freed slots are reusable.
	for i := uint64(0); i < n; i += 2 {
		if err := tbl.Insert(i, i+1); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	if v, _ := tbl.Get(0); v != 1 {
		t.Fatalf("reinserted value = %d, want 1", v)
	}
}

// TestStashOverflowPaths forces keys into one bucket until they spill into
// the stash, then verifies lookup and delete through the overflow metadata.
func TestStashOverflowPaths(t *testing.T) {
	tbl := newTestTable(t, 4<<20, Options{InitialDepth: 1})
	p := tbl.pool

	// Collect keys that all map to directory entry 0 and the same target
	// bucket, so they exhaust the pair (b, b+1) and hit the stash.
	var keys []uint64
	var first = tbl.parts(findKeyWithPrefix(t, tbl, 0, 1))
	target := first.BucketIndex(bucketBits)
	for k := uint64(0); len(keys) < 2*slotsPerBucket+6; k++ {
		parts := tbl.parts(k)
		if parts.DirIndex(1) == 0 && parts.BucketIndex(bucketBits) == target {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if err := tbl.Insert(k, k^0xFF); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	// At least one record must have landed in a stash bucket.
	_, seg := tbl.resolve(first)
	stashUsed := 0
	for j := 0; j < stashBuckets; j++ {
		stashUsed += slotsPerBucket - bucketFreeSlots(p, segBucket(seg, normalBuckets+j))
	}
	if stashUsed == 0 {
		t.Fatal("no records in stash despite overfilling one bucket pair")
	}
	for _, k := range keys {
		if v, ok := tbl.Get(k); !ok || v != k^0xFF {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	for _, k := range keys {
		if !tbl.Delete(k) {
			t.Fatalf("Delete(%d) reported missing", k)
		}
		if _, ok := tbl.Get(k); ok {
			t.Fatalf("key %d readable after delete", k)
		}
	}
	if tbl.Count() != 0 {
		t.Fatalf("count = %d after deleting all", tbl.Count())
	}
}

// TestReopenCleanImage: a table snapshot taken after quiescence reopens with
// every record intact (clean-shutdown recovery path).
func TestReopenCleanImage(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 8 << 20, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(i, i+7); err != nil {
			t.Fatal(err)
		}
	}
	img := pool.Snapshot()
	pool2, err := pmem.OpenSnapshot(img, pmem.Options{TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Count() != n {
		t.Fatalf("reopened count = %d, want %d", tbl2.Count(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tbl2.Get(i); !ok || v != i+7 {
			t.Fatalf("reopened Get(%d) = %d,%v", i, v, ok)
		}
	}
	// And it keeps working.
	for i := uint64(n); i < n+500; i++ {
		if err := tbl2.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	tbl2.Close()
}

func TestOpenRejectsGarbage(t *testing.T) {
	pool, err := pmem.NewPool(pmem.Options{Size: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pool); err != ErrNotATable {
		t.Fatalf("Open(empty pool) = %v, want ErrNotATable", err)
	}
}

func TestPoolFull(t *testing.T) {
	// A pool big enough to format but too small to keep growing must
	// surface ErrPoolFull rather than corrupt anything.
	tbl, err := New(96*1024, Options{InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := uint64(0); i < 1<<20; i++ {
		if lastErr = tbl.Insert(i, i); lastErr != nil {
			break
		}
	}
	if lastErr != ErrPoolFull {
		t.Fatalf("expected ErrPoolFull, got %v", lastErr)
	}
	// Everything inserted before the failure is still readable.
	for i := uint64(0); ; i++ {
		if _, ok := tbl.Get(i); !ok {
			break
		}
	}
}

// findKeyWithPrefix brute-forces a key whose hash falls under the given
// directory prefix at the given depth.
func findKeyWithPrefix(t *testing.T, tbl *Table, prefix uint64, depth uint8) uint64 {
	t.Helper()
	for k := uint64(0); k < 1<<22; k++ {
		if tbl.parts(k).DirIndex(depth) == prefix {
			return k
		}
	}
	t.Fatal("no key found for prefix")
	return 0
}
