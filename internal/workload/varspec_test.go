package workload

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestVarSpecDeterministicAndBounded(t *testing.T) {
	s := DefaultVarSpec
	for key := uint64(0); key < 5000; key++ {
		k1 := s.AppendKey(nil, key)
		k2 := s.AppendKey(nil, key)
		if !bytes.Equal(k1, k2) {
			t.Fatalf("key %d encodes differently across calls", key)
		}
		if len(k1) < s.MinKeyLen || len(k1) > s.MaxKeyLen {
			t.Fatalf("key %d length %d outside [%d,%d]", key, len(k1), s.MinKeyLen, s.MaxKeyLen)
		}
		if got := binary.LittleEndian.Uint64(k1); got != key {
			t.Fatalf("key %d encodes prefix %d — encoding not injective", key, got)
		}
		v1 := s.AppendValue(nil, key, 0)
		if !bytes.Equal(v1, s.AppendValue(nil, key, 0)) {
			t.Fatalf("value (%d, 0) not deterministic", key)
		}
		if len(v1) < s.MinValLen || len(v1) > s.MaxValLen {
			t.Fatalf("value %d length %d outside bounds", key, len(v1))
		}
	}
}

func TestVarSpecSaltChangesValues(t *testing.T) {
	s := DefaultVarSpec
	changed := 0
	for key := uint64(0); key < 200; key++ {
		if !bytes.Equal(s.AppendValue(nil, key, 0), s.AppendValue(nil, key, 1)) {
			changed++
		}
	}
	if changed < 190 {
		t.Fatalf("only %d/200 values changed under a new salt", changed)
	}
}

func TestVarSpecLengthSpread(t *testing.T) {
	s := DefaultVarSpec
	seen := map[int]bool{}
	for key := uint64(0); key < 2000; key++ {
		seen[s.KeyLen(key)] = true
	}
	if len(seen) < (s.MaxKeyLen-s.MinKeyLen)/2 {
		t.Fatalf("key lengths cover only %d distinct values", len(seen))
	}
}

func TestVarSpecAppendReusesBuffer(t *testing.T) {
	s := DefaultVarSpec
	buf := make([]byte, 0, s.MaxKeyLen)
	p0 := &buf[:1][0]
	for key := uint64(0); key < 100; key++ {
		buf = s.AppendKey(buf[:0], key)
	}
	if &buf[:1][0] != p0 {
		t.Fatal("AppendKey reallocated a sufficient buffer")
	}
}

func TestVarMixesRegistered(t *testing.T) {
	for _, name := range []string{"var-insert", "var-read", "var-ycsb-b"} {
		m, ok := MixByName(name)
		if !ok {
			t.Fatalf("mix %q not registered", name)
		}
		if m.Var == nil {
			t.Fatalf("mix %q has no VarSpec", name)
		}
		if err := m.validate(); err != nil {
			t.Fatalf("mix %q invalid: %v", name, err)
		}
	}
	if m, _ := MixByName("insert"); m.Var != nil {
		t.Fatal("inline mix grew a VarSpec")
	}
}

func TestVarSpecValidate(t *testing.T) {
	bad := VarSpec{MinKeyLen: 4, MaxKeyLen: 8, MinValLen: 0, MaxValLen: 8}
	if err := bad.validate(); err == nil {
		t.Fatal("MinKeyLen < 8 accepted")
	}
	bad = VarSpec{MinKeyLen: 16, MaxKeyLen: 8, MinValLen: 0, MaxValLen: 8}
	if err := bad.validate(); err == nil {
		t.Fatal("MaxKeyLen < MinKeyLen accepted")
	}
}
