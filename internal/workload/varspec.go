package workload

import (
	"encoding/binary"
	"fmt"
)

// VarSpec describes a deterministic variable-length encoding of the
// generator's uint64 key universe: every abstract key expands to one fixed
// byte string (length and content both pure functions of the key), so the
// preload pass, positive reads, updates and deletes of one run — and of
// every rerun with the same seed — agree on the bytes without any shared
// state. The first 8 bytes of every encoded key are the key itself in
// little-endian order, making the encoding injective whatever the filler
// does; the remainder is SplitMix64 filler. Values are derived the same
// way from (key, salt): mutating mixes pass a different salt per update so
// updates really change the value, including its length — exercising the
// engine's copy-on-write path with length changes.
type VarSpec struct {
	// MinKeyLen..MaxKeyLen bound encoded key lengths; MinKeyLen must be at
	// least 8 (the embedded key). MinValLen..MaxValLen bound value lengths.
	MinKeyLen, MaxKeyLen int
	MinValLen, MaxValLen int
}

// DefaultVarSpec is the registry's variable-length shape: 16–128-byte keys
// and values, the small-record regime the paper's long-key discussion
// targets.
var DefaultVarSpec = VarSpec{MinKeyLen: 16, MaxKeyLen: 128, MinValLen: 16, MaxValLen: 128}

const (
	keyLenSalt  = 0x6b65796c656e5f73 // decorrelates length draws from filler
	valLenSalt  = 0x76616c6c656e5f73
	keyFillSalt = 0x6b657966696c6c73
	valFillSalt = 0x76616c66696c6c73
)

func (s VarSpec) validate() error {
	if s.MinKeyLen < 8 {
		return fmt.Errorf("workload: var spec min key length %d < 8 (the embedded key)", s.MinKeyLen)
	}
	if s.MaxKeyLen < s.MinKeyLen || s.MaxValLen < s.MinValLen || s.MinValLen < 0 {
		return fmt.Errorf("workload: var spec lengths out of order (%+v)", s)
	}
	return nil
}

func lenIn(min, max int, draw uint64) int {
	if max <= min {
		return min
	}
	return min + int(draw%uint64(max-min+1))
}

// KeyLen returns the encoded length of key.
func (s VarSpec) KeyLen(key uint64) int {
	return lenIn(s.MinKeyLen, s.MaxKeyLen, mix64(key^keyLenSalt))
}

// ValLen returns the value length for (key, salt).
func (s VarSpec) ValLen(key, salt uint64) int {
	return lenIn(s.MinValLen, s.MaxValLen, mix64(key^mix64(salt)^valLenSalt))
}

func appendFiller(dst []byte, seed uint64, n int) []byte {
	var word [8]byte
	for n > 0 {
		seed += 0x9e3779b97f4a7c15
		binary.LittleEndian.PutUint64(word[:], mix64(seed))
		c := n
		if c > 8 {
			c = 8
		}
		dst = append(dst, word[:c]...)
		n -= c
	}
	return dst
}

// AppendKey appends key's canonical encoding to dst and returns it.
func (s VarSpec) AppendKey(dst []byte, key uint64) []byte {
	n := s.KeyLen(key)
	var head [8]byte
	binary.LittleEndian.PutUint64(head[:], key)
	dst = append(dst, head[:]...)
	return appendFiller(dst, key^keyFillSalt, n-8)
}

// AppendValue appends the value bytes for (key, salt) to dst and returns
// it. Distinct salts give a value of (generally) different content and
// length for the same key.
func (s VarSpec) AppendValue(dst []byte, key, salt uint64) []byte {
	n := s.ValLen(key, salt)
	return appendFiller(dst, key^mix64(salt)^valFillSalt, n)
}
