package workload

import "testing"

func TestClientSimRegistryValid(t *testing.T) {
	seen := map[string]bool{}
	for _, sim := range ClientSims {
		if sim.Name == "" {
			t.Fatal("registered sim without a name")
		}
		if seen[sim.Name] {
			t.Fatalf("duplicate sim name %q", sim.Name)
		}
		seen[sim.Name] = true
		if err := sim.validate(); err != nil {
			t.Fatalf("sim %q invalid: %v", sim.Name, err)
		}
		got, ok := ClientSimByName(sim.Name)
		if !ok || got.Name != sim.Name {
			t.Fatalf("ClientSimByName(%q) lookup failed", sim.Name)
		}
	}
	if _, ok := ClientSimByName("no-such-sim"); ok {
		t.Fatal("ClientSimByName found a sim that does not exist")
	}
	if len(ClientSimNames()) != len(ClientSims) {
		t.Fatal("ClientSimNames length mismatch")
	}
}

// SpecFor must be a pure function of the key so preload, reads and fresh
// inserts of one key always encode it the same way.
func TestSpecForDeterministic(t *testing.T) {
	sim, _ := ClientSimByName("svc-tenants")
	for k := uint64(0); k < 100; k++ {
		a, b := sim.SpecFor(k), sim.SpecFor(k)
		if a != b {
			t.Fatalf("SpecFor(%d) unstable", k)
		}
		want := &sim.Tenants[k%uint64(len(sim.Tenants))]
		if a != want {
			t.Fatalf("SpecFor(%d) = %v, want tenant %d", k, a, k%uint64(len(sim.Tenants)))
		}
	}
	plain, _ := ClientSimByName("svc-balanced")
	if plain.SpecFor(1) != nil {
		t.Fatal("uint64-mode sim returned a VarSpec")
	}
	if plain.Var() {
		t.Fatal("svc-balanced reports Var")
	}
	if tenants, _ := ClientSimByName("svc-tenants"); !tenants.Var() {
		t.Fatal("svc-tenants does not report Var")
	}
}

func simStreamOps(t *testing.T, cfg SimConfig, worker, n int) []SimOp {
	t.Helper()
	g, err := NewSimGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stream(worker)
	ops := make([]SimOp, n)
	for i := range ops {
		ops[i] = s.Next()
	}
	return ops
}

// Same (config, worker) must replay the identical op sequence, including
// session boundaries; distinct workers must diverge.
func TestSimStreamDeterministic(t *testing.T) {
	sim, _ := ClientSimByName("svc-churn")
	cfg := SimConfig{Keyspace: 4096, Seed: 9, Sim: sim}
	a := simStreamOps(t, cfg, 1, 2000)
	b := simStreamOps(t, cfg, 1, 2000)
	other := simStreamOps(t, cfg, 2, 2000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs on replay: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two workers produced identical streams")
	}
}

// svc-churn's session schedule: NewSession exactly every SessionOps ops,
// never on the first op.
func TestSimSessionBoundaries(t *testing.T) {
	sim, _ := ClientSimByName("svc-churn")
	if sim.SessionOps == 0 {
		t.Fatal("svc-churn has no session schedule")
	}
	cfg := SimConfig{Keyspace: 1024, Seed: 3, Sim: sim}
	ops := simStreamOps(t, cfg, 0, int(3*sim.SessionOps+5))
	for i, op := range ops {
		want := i > 0 && int64(i)%sim.SessionOps == 0
		if op.NewSession != want {
			t.Fatalf("op %d NewSession = %v, want %v", i, op.NewSession, want)
		}
	}
}

// Hot-shard skew: with ShardTheta set, positive-op ranks must concentrate on
// shard 0 (the hottest) far beyond a uniform spread, and every rank must
// come from the bucket of the shard the zipf picked.
func TestSimHotShardSkew(t *testing.T) {
	sim, _ := ClientSimByName("svc-hot-shard")
	const shards = 4
	shardOf := func(rank uint64) int { return int(rank % shards) }
	cfg := SimConfig{Keyspace: 8192, Seed: 5, Sim: sim, NumShards: shards, ShardOf: shardOf}
	ops := simStreamOps(t, cfg, 0, 20000)
	var perShard [shards]int
	var positives int
	for _, op := range ops {
		if op.Kind == OpRead || op.Kind == OpUpdate || op.Kind == OpDelete {
			perShard[shardOf(op.Key)]++
			positives++
		}
	}
	if positives == 0 {
		t.Fatal("no positive ops generated")
	}
	hot := float64(perShard[0]) / float64(positives)
	if hot < 0.4 {
		t.Fatalf("hot shard got %.2f of positive ops, want > 0.4 under theta %g", hot, sim.ShardTheta)
	}
	if perShard[shards-1] >= perShard[0] {
		t.Fatalf("coldest shard (%d ops) not colder than hottest (%d)", perShard[shards-1], perShard[0])
	}

	// Single-shard baseline degenerates to the base distribution instead of
	// erroring (the gate's 1×1 comparison run depends on this).
	if _, err := NewSimGenerator(SimConfig{Keyspace: 8192, Seed: 5, Sim: sim, NumShards: 1}); err != nil {
		t.Fatalf("single-shard hot-shard generator: %v", err)
	}
}
