package workload

import (
	"testing"
)

func mustMix(t *testing.T, name string) Mix {
	t.Helper()
	m, ok := MixByName(name)
	if !ok {
		t.Fatalf("mix %q not registered", name)
	}
	return m
}

func TestRegisteredMixesValid(t *testing.T) {
	if len(Mixes) < 5 {
		t.Fatalf("expected at least 5 registered mixes, got %d", len(Mixes))
	}
	for _, m := range Mixes {
		if err := m.validate(); err != nil {
			t.Errorf("mix %q invalid: %v", m.Name, err)
		}
	}
}

func TestDeterminismAcrossIdenticalSeeds(t *testing.T) {
	cfg := Config{Keyspace: 10_000, Theta: 0.9, Mix: mustMix(t, "delete-heavy"), Seed: 7}
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := g1.Stream(3), g2.Stream(3)
	for i := 0; i < 5000; i++ {
		o1, o2 := s1.Next(), s2.Next()
		if o1 != o2 {
			t.Fatalf("op %d diverged: %+v vs %+v", i, o1, o2)
		}
	}
}

func TestDistinctWorkersDecorrelated(t *testing.T) {
	g, err := NewGenerator(Config{Keyspace: 10_000, Mix: mustMix(t, "read"), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := g.Stream(0), g.Stream(1)
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s1.Next() == s2.Next() {
			same++
		}
	}
	if same > n/50 {
		t.Fatalf("workers 0 and 1 agree on %d/%d ops; streams are correlated", same, n)
	}
}

func TestMixRatios(t *testing.T) {
	const n = 100_000
	for _, tc := range []struct {
		mix  string
		want map[OpKind]float64
	}{
		{"balanced", map[OpKind]float64{OpInsert: 0.50, OpRead: 0.50}},
		{"ycsb-b", map[OpKind]float64{OpRead: 0.95, OpUpdate: 0.05}},
		{"delete-heavy", map[OpKind]float64{OpInsert: 0.25, OpRead: 0.25, OpDelete: 0.50}},
	} {
		g, err := NewGenerator(Config{Keyspace: 1000, Mix: mustMix(t, tc.mix), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		s := g.Stream(0)
		var counts [numOpKinds]int
		for i := 0; i < n; i++ {
			counts[s.Next().Kind]++
		}
		for k := OpKind(0); k < numOpKinds; k++ {
			got := float64(counts[k]) / n
			want := tc.want[k]
			if got < want-0.01 || got > want+0.01 {
				t.Errorf("mix %s: %s share = %.3f, want %.2f ± 0.01", tc.mix, k, got, want)
			}
		}
	}
}

func TestKeyNamespacesDisjoint(t *testing.T) {
	g, err := NewGenerator(Config{Keyspace: 1000, Mix: mustMix(t, "delete-heavy"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stream(0)
	seenInsert := map[uint64]bool{}
	for i := 0; i < 20_000; i++ {
		op := s.Next()
		switch op.Kind {
		case OpInsert:
			if op.Key < insertKeyBit {
				t.Fatalf("insert key %#x in preload namespace", op.Key)
			}
			if seenInsert[op.Key] {
				t.Fatalf("insert key %#x repeated", op.Key)
			}
			seenInsert[op.Key] = true
		case OpReadNeg:
			if op.Key&negKeyBit == 0 {
				t.Fatalf("negative-read key %#x lacks the negative namespace bit", op.Key)
			}
		default:
			if op.Key >= 1000 {
				t.Fatalf("%s key %d outside preloaded range", op.Kind, op.Key)
			}
		}
	}
}

// TestZipfSkewGrowsWithTheta checks the defining Zipfian property the bench
// relies on: the rank-0 key's share of draws increases with theta, and every
// draw stays inside the keyspace.
func TestZipfSkewGrowsWithTheta(t *testing.T) {
	const n = 1000
	const draws = 50_000
	share := func(theta float64) float64 {
		z, err := newZipf(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		r := newRNG(123)
		hot := 0
		for i := 0; i < draws; i++ {
			k := z.next(r)
			if k >= n {
				t.Fatalf("zipf(theta=%g) drew rank %d >= %d", theta, k, n)
			}
			if k == 0 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	s50, s90, s99 := share(0.5), share(0.9), share(0.99)
	if !(s50 < s90 && s90 < s99) {
		t.Fatalf("rank-0 share not increasing with theta: %.4f (0.5), %.4f (0.9), %.4f (0.99)", s50, s90, s99)
	}
	// theta=0.99 over 1000 keys concentrates ~13% of draws on rank 0; a
	// uniform distribution would give 0.1%. Use a loose band.
	if s99 < 0.05 {
		t.Fatalf("zipf theta=0.99 rank-0 share %.4f implausibly low", s99)
	}
}

func TestConfigValidation(t *testing.T) {
	mix := mustMix(t, "read")
	if _, err := NewGenerator(Config{Keyspace: 0, Mix: mix}); err == nil {
		t.Error("zero keyspace accepted")
	}
	if _, err := NewGenerator(Config{Keyspace: 100, Theta: 1.5, Mix: mix}); err == nil {
		t.Error("theta out of range accepted")
	}
	bad := Mix{Name: "bad", Percent: pct(60, 60, 0, 0, 0)}
	if _, err := NewGenerator(Config{Keyspace: 100, Mix: bad}); err == nil {
		t.Error("mix summing to 120 accepted")
	}
}
