package workload

import "math/bits"

// Deterministic pseudo-randomness for workload generation. Benchmarks must be
// reproducible run-to-run and comparable PR-to-PR, so nothing here touches
// the global math/rand state or the clock: every stream derives from an
// explicit 64-bit seed.

// mix64 is the SplitMix64 finalizer, a cheap bijective scrambler used both to
// advance the PRNG and to derive decorrelated per-worker seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rng is a SplitMix64 generator: a Weyl sequence fed through mix64. One
// instance per worker stream; not safe for concurrent use.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// uintn returns a uniform value in [0, n). n must be > 0. The multiply-shift
// reduction keeps the modulo bias below 2^-32 for any realistic keyspace,
// which is far under what any distribution test here can resolve.
func (r *rng) uintn(n uint64) uint64 {
	hi, _ := bits.Mul64(r.next(), n)
	return hi
}

// float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
