// Package workload generates deterministic key/value benchmark workloads:
// named operation mixes over uniform or Zipfian key distributions, matching
// the microbenchmarks the Dash paper is evaluated on (§6: insert-only,
// positive/negative search, deletes, and YCSB-style mixed workloads).
//
// Everything is driven by explicit seeds — no clock, no global PRNG — so a
// (Config, worker) pair always replays the identical operation sequence.
// That is what makes benchmark numbers comparable across runs and PRs.
//
// Key namespaces. The generator partitions the 64-bit key space so the three
// kinds of keys can never collide:
//
//   - PreloadKey(i), i ∈ [0, Keyspace): keys the harness inserts before the
//     run. Positive reads, updates and deletes draw ranks from the key
//     distribution and target these.
//   - negative-read keys: bit 63 set; never inserted, so every lookup misses.
//   - fresh-insert keys: bit 62 set, partitioned per worker; each insert
//     produces a key never seen before, so insert-heavy runs measure real
//     inserts rather than ErrKeyExists churn.
//
// Keys are raw indexes, not scrambled: the table hashes every key, so key
// structure carries no layout information, and rank r of the Zipfian always
// means the same physical key — the hot set is stable across runs.
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates the operations a stream can emit.
type OpKind uint8

const (
	// OpInsert inserts a fresh never-before-seen key.
	OpInsert OpKind = iota
	// OpRead looks up a key from the preloaded range (a hit, unless a
	// delete-bearing mix removed it).
	OpRead
	// OpReadNeg looks up a key from the never-inserted range (always a miss).
	OpReadNeg
	// OpUpdate overwrites the value of a key from the preloaded range.
	OpUpdate
	// OpDelete removes a key from the preloaded range.
	OpDelete

	numOpKinds = 5
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRead:
		return "read"
	case OpReadNeg:
		return "read-neg"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Mix is a named operation mix; the weights are percentages summing to 100.
// A non-nil Var makes the mix variable-length: the harness encodes every
// key and value through the VarSpec and drives the engine's []byte API
// instead of the inline uint64 one.
type Mix struct {
	Name string
	// Percent holds the weight of each OpKind, indexed by OpKind.
	Percent [numOpKinds]int
	// Var, when non-nil, selects variable-length key/value encoding.
	Var *VarSpec
}

// Mixes is the registry of named mixes, mirroring the paper's microbenchmarks
// (§6.2) and the YCSB core workloads its mixed-load figures reference, plus
// the var-* variants that drive the same shapes through the
// variable-length record path (16–128-byte keys and values).
var Mixes = []Mix{
	{Name: "insert", Percent: pct(100, 0, 0, 0, 0)},
	{Name: "read", Percent: pct(0, 100, 0, 0, 0)},
	{Name: "read-neg", Percent: pct(0, 0, 100, 0, 0)},
	{Name: "balanced", Percent: pct(50, 50, 0, 0, 0)},
	{Name: "ycsb-a", Percent: pct(0, 50, 0, 50, 0)},
	{Name: "ycsb-b", Percent: pct(0, 95, 0, 5, 0)},
	{Name: "delete-heavy", Percent: pct(25, 25, 0, 0, 50)},
	{Name: "var-insert", Percent: pct(100, 0, 0, 0, 0), Var: &DefaultVarSpec},
	{Name: "var-read", Percent: pct(0, 100, 0, 0, 0), Var: &DefaultVarSpec},
	{Name: "var-ycsb-b", Percent: pct(0, 95, 0, 5, 0), Var: &DefaultVarSpec},
}

func pct(insert, read, readNeg, update, del int) [numOpKinds]int {
	return [numOpKinds]int{OpInsert: insert, OpRead: read, OpReadNeg: readNeg, OpUpdate: update, OpDelete: del}
}

// MixByName looks a mix up in the registry.
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// MixNames returns the registered mix names, sorted.
func MixNames() []string {
	names := make([]string, len(Mixes))
	for i, m := range Mixes {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}

func (m Mix) validate() error {
	sum := 0
	for _, p := range m.Percent {
		if p < 0 {
			return fmt.Errorf("workload: mix %q has a negative weight", m.Name)
		}
		sum += p
	}
	if sum != 100 {
		return fmt.Errorf("workload: mix %q weights sum to %d, want 100", m.Name, sum)
	}
	if m.Var != nil {
		if err := m.Var.validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the mix as "name(insert:50 read:50)", variable-length
// mixes with their key/value length ranges appended.
func (m Mix) String() string {
	var parts []string
	for k, p := range m.Percent {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", OpKind(k), p))
		}
	}
	if v := m.Var; v != nil {
		parts = append(parts, fmt.Sprintf("k:%d-%dB v:%d-%dB", v.MinKeyLen, v.MaxKeyLen, v.MinValLen, v.MaxValLen))
	}
	return m.Name + "(" + strings.Join(parts, " ") + ")"
}

// Config describes one workload.
type Config struct {
	// Keyspace is the number of preloaded keys; positive reads, updates and
	// deletes draw ranks in [0, Keyspace).
	Keyspace uint64
	// Theta is the Zipfian skew in (0, 1); 0 selects the uniform distribution.
	Theta float64
	// Mix is the operation mix.
	Mix Mix
	// Seed seeds every derived stream.
	Seed uint64
}

const (
	negKeyBit    = uint64(1) << 63
	insertKeyBit = uint64(1) << 62
	// insertWorkerShift gives each worker 2^40 fresh insert keys.
	insertWorkerShift = 40
)

// PreloadKey returns the i'th preloaded key; the harness must insert
// PreloadKey(0..Keyspace-1) before running streams so positive operations hit.
func PreloadKey(i uint64) uint64 { return i }

// Generator derives deterministic per-worker operation streams for one
// Config. Safe for concurrent use once constructed.
type Generator struct {
	cfg Config
	z   *zipf // nil for uniform
}

// NewGenerator validates cfg and precomputes distribution state (O(Keyspace)
// for Zipfian, once, shared by all streams).
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Keyspace == 0 {
		return nil, fmt.Errorf("workload: keyspace must be > 0")
	}
	if cfg.Keyspace >= insertKeyBit {
		return nil, fmt.Errorf("workload: keyspace %d collides with the reserved key namespaces", cfg.Keyspace)
	}
	if err := cfg.Mix.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg}
	if cfg.Theta != 0 {
		z, err := newZipf(cfg.Keyspace, cfg.Theta)
		if err != nil {
			return nil, err
		}
		g.z = z
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Stream returns worker's operation stream. The same (Config, worker) pair
// always yields the identical sequence; distinct workers are decorrelated.
// A Stream is not safe for concurrent use — one per goroutine.
func (g *Generator) Stream(worker int) *Stream {
	s := &Stream{
		g:         g,
		r:         newRNG(mix64(g.cfg.Seed ^ mix64(uint64(worker)+0x5ca1ab1e))),
		insertKey: insertKeyBit | uint64(worker)<<insertWorkerShift,
	}
	acc := 0
	for k, p := range g.cfg.Mix.Percent {
		acc += p
		s.cum[k] = acc
	}
	return s
}

// Stream emits the operation sequence of one worker.
type Stream struct {
	g         *Generator
	r         *rng
	cum       [numOpKinds]int // cumulative mix percentages
	insertKey uint64          // next fresh insert key

	// rankFn, when set, overrides the rank distribution — the hook the
	// client-simulation streams use for shard-level skew (clientsim.go).
	rankFn func(*rng) uint64
}

// rank draws a key rank in [0, Keyspace) from the configured distribution.
func (s *Stream) rank() uint64 {
	if s.rankFn != nil {
		return s.rankFn(s.r)
	}
	if s.g.z != nil {
		return s.g.z.next(s.r)
	}
	return s.r.uintn(s.g.cfg.Keyspace)
}

// Next returns the next operation.
func (s *Stream) Next() Op {
	d := int(s.r.uintn(100))
	kind := OpKind(0)
	for k, c := range s.cum {
		if d < c {
			kind = OpKind(k)
			break
		}
	}
	switch kind {
	case OpInsert:
		key := s.insertKey
		s.insertKey++
		return Op{Kind: OpInsert, Key: key}
	case OpReadNeg:
		return Op{Kind: OpReadNeg, Key: negKeyBit | s.rank()}
	default: // OpRead, OpUpdate, OpDelete target the preloaded range
		return Op{Kind: kind, Key: PreloadKey(s.rank())}
	}
}
