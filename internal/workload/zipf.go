package workload

import (
	"fmt"
	"math"
)

// Zipfian rank generator after Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94) — the same construction
// YCSB uses. Ranks are drawn over [0, n) with P(rank=i) ∝ 1/(i+1)^theta;
// rank 0 is the hottest key. theta must lie in (0, 1): theta→0 approaches
// uniform, theta 0.99 is the YCSB default hot-spot skew.
//
// Setup computes the generalized harmonic number zeta(n, theta) in O(n); the
// per-draw cost is then O(1) (one uniform variate, one pow). A zipf value is
// immutable after newZipf and safe to share across worker streams.
type zipf struct {
	n     uint64
	theta float64

	alpha float64 // 1/(1-theta)
	zetan float64 // zeta(n, theta)
	eta   float64
	half  float64 // 1 + 0.5^theta: cumulative mass of ranks {0, 1}
}

func newZipf(n uint64, theta float64) (*zipf, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: zipf needs a keyspace of at least 2, got %d", n)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipf theta must be in (0, 1), got %g", theta)
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return &zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  1 + math.Pow(0.5, theta),
	}, nil
}

// zeta returns the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// next draws a rank in [0, n) using r's randomness.
func (z *zipf) next(r *rng) uint64 {
	u := r.float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n { // guard the float boundary at u→1
		rank = z.n - 1
	}
	return rank
}
