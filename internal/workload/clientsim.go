package workload

import "fmt"

// Client simulation: the workload family that drives the service tier
// (internal/service) the way a fleet of real clients would, rather than
// the way a single-table microbenchmark does. A ClientSim composes one of
// the registered operation mixes with three service-shaped stressors:
//
//   - hot-shard skew: positive-op ranks are drawn Zipfian *across shards*
//     first (shard 0 hottest), then uniformly within the chosen shard —
//     the skew a popular tenant or partition inflicts on a sharded
//     service, which per-key Zipf on a hashed keyspace can never produce
//     (hashing spreads even a skewed key distribution evenly over shards).
//   - connection churn: a deterministic session schedule — every
//     SessionOps operations the client "reconnects": it drains its
//     pipeline (waits for every outstanding request) before continuing.
//     No sleeping is involved, so throughput stays comparable; what churn
//     costs is batching opportunity, since every drain empties the queues
//     the executors batch from.
//   - mixed tenant profiles: each key belongs deterministically to one of
//     a fixed set of tenants, each with its own VarSpec key/value-size
//     shape, so one run carries small-record and large-record tenants
//     through the same shards' record logs.
//
// Like everything in this package, a simulation is pure function of
// (config, seed, worker): no clock, no global state.

// ClientSim is one named client-simulation profile for the service tier.
type ClientSim struct {
	// Name identifies the simulation in registries, flags and BENCH files.
	Name string
	// Mix is the operation mix each simulated client runs.
	Mix Mix
	// ShardTheta, when non-zero, draws positive-op ranks Zipfian across
	// shards (shard 0 hottest) and uniformly within the chosen shard. Zero
	// leaves rank selection to the base distribution.
	ShardTheta float64
	// SessionOps, when non-zero, is the connection-churn period: every
	// SessionOps operations the client starts a new session, draining its
	// pipeline first (SimOp.NewSession marks the boundary ops).
	SessionOps int64
	// Tenants, when non-empty, gives each key one of these VarSpec shapes
	// (selected by SpecFor) instead of the mix's single Var shape.
	Tenants []VarSpec
}

// ClientSims is the registry of named simulations the service benchmarks
// run: a plain balanced baseline, hot-shard skew, connection churn, and a
// mixed-tenant variable-length profile.
var ClientSims = []ClientSim{
	{Name: "svc-balanced", Mix: simMix("balanced")},
	{Name: "svc-hot-shard", Mix: simMix("ycsb-a"), ShardTheta: 0.99},
	{Name: "svc-churn", Mix: simMix("balanced"), SessionOps: 512},
	{Name: "svc-tenants", Mix: simMix("var-ycsb-b"), Tenants: []VarSpec{
		{MinKeyLen: 8, MaxKeyLen: 16, MinValLen: 8, MaxValLen: 16},     // small-record tenant
		{MinKeyLen: 16, MaxKeyLen: 64, MinValLen: 16, MaxValLen: 64},   // mid-size tenant
		{MinKeyLen: 48, MaxKeyLen: 128, MinValLen: 64, MaxValLen: 128}, // large-record tenant
	}},
}

func simMix(name string) Mix {
	m, ok := MixByName(name)
	if !ok {
		panic(fmt.Sprintf("workload: unknown mix %q in client-sim registry", name))
	}
	return m
}

// ClientSimByName looks a simulation up in the registry.
func ClientSimByName(name string) (ClientSim, bool) {
	for _, c := range ClientSims {
		if c.Name == name {
			return c, true
		}
	}
	return ClientSim{}, false
}

// ClientSimNames returns the registered simulation names, in registry
// order.
func ClientSimNames() []string {
	names := make([]string, len(ClientSims))
	for i, c := range ClientSims {
		names[i] = c.Name
	}
	return names
}

// Var reports whether the simulation drives the variable-length API.
func (c ClientSim) Var() bool { return c.Mix.Var != nil || len(c.Tenants) > 0 }

// SpecFor returns the VarSpec encoding a key's bytes: the key's tenant's
// spec when the simulation has tenants (tenant = key mod tenant count, so
// preload, reads and fresh inserts of one key always agree), else the
// mix's Var spec, else nil (uint64 mode). Every spec embeds the key's 8
// little-endian bytes first (see VarSpec), so encodings stay injective
// across tenant shapes.
func (c ClientSim) SpecFor(key uint64) *VarSpec {
	if len(c.Tenants) > 0 {
		return &c.Tenants[key%uint64(len(c.Tenants))]
	}
	return c.Mix.Var
}

func (c ClientSim) validate() error {
	if err := c.Mix.validate(); err != nil {
		return err
	}
	if c.ShardTheta < 0 || c.ShardTheta >= 1 {
		if c.ShardTheta != 0 {
			return fmt.Errorf("workload: sim %q shard theta %g outside (0,1)", c.Name, c.ShardTheta)
		}
	}
	if c.SessionOps < 0 {
		return fmt.Errorf("workload: sim %q negative session ops", c.Name)
	}
	for i, t := range c.Tenants {
		if err := t.validate(); err != nil {
			return fmt.Errorf("workload: sim %q tenant %d: %w", c.Name, i, err)
		}
	}
	return nil
}

// SimConfig configures a client-simulation generator: the base workload
// dimensions plus the simulation profile and the service tier's routing
// oracle (needed only for hot-shard skew).
type SimConfig struct {
	// Keyspace, Theta and Seed mean what they do in Config; the mix comes
	// from Sim.
	Keyspace uint64
	Theta    float64
	Seed     uint64
	// Sim is the simulation profile.
	Sim ClientSim
	// NumShards is the service tier's shard count; required when
	// Sim.ShardTheta is set.
	NumShards int
	// ShardOf maps a preload rank to its shard (the service tier's routing
	// of that rank's key, in whatever encoding the simulation submits it);
	// required when Sim.ShardTheta is set.
	ShardOf func(rank uint64) int
}

// SimGenerator derives deterministic per-client streams of simulated
// service traffic. Safe for concurrent use once constructed.
type SimGenerator struct {
	base       *Generator
	sim        ClientSim
	shardRanks [][]uint64 // hot-shard mode: preload ranks bucketed by shard
	zshard     *zipf
}

// NewSimGenerator validates cfg and precomputes the shard-skew state
// (bucketing every preload rank by shard, O(Keyspace) routing calls, once).
func NewSimGenerator(cfg SimConfig) (*SimGenerator, error) {
	if err := cfg.Sim.validate(); err != nil {
		return nil, err
	}
	base, err := NewGenerator(Config{
		Keyspace: cfg.Keyspace,
		Theta:    cfg.Theta,
		Mix:      cfg.Sim.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	g := &SimGenerator{base: base, sim: cfg.Sim}
	// Shard skew needs ≥ 2 shards to mean anything; on a single shard the
	// stream degenerates to the base distribution (the right baseline).
	if cfg.Sim.ShardTheta != 0 && cfg.NumShards != 1 {
		if cfg.NumShards <= 0 || cfg.ShardOf == nil {
			return nil, fmt.Errorf("workload: sim %q needs NumShards and ShardOf for shard skew", cfg.Sim.Name)
		}
		g.shardRanks = make([][]uint64, cfg.NumShards)
		for r := uint64(0); r < cfg.Keyspace; r++ {
			sh := cfg.ShardOf(r)
			if sh < 0 || sh >= cfg.NumShards {
				return nil, fmt.Errorf("workload: ShardOf(%d) = %d outside [0,%d)", r, sh, cfg.NumShards)
			}
			g.shardRanks[sh] = append(g.shardRanks[sh], r)
		}
		z, err := newZipf(uint64(cfg.NumShards), cfg.Sim.ShardTheta)
		if err != nil {
			return nil, err
		}
		g.zshard = z
	}
	return g, nil
}

// Sim returns the generator's simulation profile.
func (g *SimGenerator) Sim() ClientSim { return g.sim }

// SimOp is one simulated-client operation.
type SimOp struct {
	Op
	// NewSession marks a connection-churn boundary: the client must drain
	// its pipeline (every outstanding request completed) before submitting
	// this op, modeling a reconnect.
	NewSession bool
}

// SimStream emits one simulated client's operation sequence. Like Stream,
// deterministic per (config, worker) and not safe for concurrent use.
type SimStream struct {
	g       *SimGenerator
	s       *Stream
	opIndex int64
}

// Stream returns client worker's simulated operation stream.
func (g *SimGenerator) Stream(worker int) *SimStream {
	s := g.base.Stream(worker)
	if g.zshard != nil {
		// Shard-skewed rank draw: Zipfian shard pick (shard 0 hottest),
		// uniform rank within it. A shard that owns no preload ranks (tiny
		// keyspaces) redraws — routing hashes spread ranks evenly, so this
		// terminates immediately in practice.
		s.rankFn = func(r *rng) uint64 {
			for {
				b := g.shardRanks[g.zshard.next(r)]
				if len(b) > 0 {
					return b[r.uintn(uint64(len(b)))]
				}
			}
		}
	}
	return &SimStream{g: g, s: s}
}

// Next returns the next operation and its session-boundary marker.
func (s *SimStream) Next() SimOp {
	op := s.s.Next()
	boundary := s.g.sim.SessionOps > 0 && s.opIndex > 0 && s.opIndex%s.g.sim.SessionOps == 0
	s.opIndex++
	return SimOp{Op: op, NewSession: boundary}
}
