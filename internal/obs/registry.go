package obs

import "sync"

// Registry names the meters. Registration (Counter/Histogram/Gauge) is a
// startup-time operation under a mutex; callers keep the returned pointer
// and the hot path never touches the registry again. Snapshot walks
// everything for Stats(), the bench harness and the live endpoint — one
// source of truth for all three.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Gauge registers a read-on-demand value under name (last registration
// wins). Gauges report instantaneous state — pending retires, mirror bytes,
// recovery phase durations — that a monotone counter cannot express.
func (r *Registry) Gauge(name string, read func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = read
}

// Snapshot is a point-in-time view of every registered meter. Maps
// marshal to JSON with sorted keys, so serialized snapshots are stable.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters"`
	Gauges   map[string]int64        `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"hists"`
}

// Snapshot reads every meter. Each value is exact at some instant during
// the call (per-meter atomics); there is no cross-meter consistent cut.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Total()
	}
	for name, read := range r.gauges {
		s.Gauges[name] = read()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// Sub returns the window s minus earlier: counters subtract with
// saturation, histograms subtract bucket-wise, gauges keep the later
// reading (they are instantaneous, not cumulative).
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for name, v := range s.Counters {
		e := earlier.Counters[name]
		if v < e {
			out.Counters[name] = 0
		} else {
			out.Counters[name] = v - e
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Hists {
		out.Hists[name] = h.Sub(earlier.Hists[name])
	}
	return out
}
