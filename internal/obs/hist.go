package obs

import (
	"math/bits"
	"sync/atomic"
)

// The log-bucketed layout shared by obs.Histogram and bench.Hist: 16 linear
// sub-buckets per power of two, so any recorded value lands in a bucket
// whose floor is within 1/16 (6.25%) of it — plenty for p50/p99 reporting
// while a whole histogram is one fixed 8KiB array.
const (
	histSub = 16 // linear sub-buckets per octave

	// NumBuckets is the fixed bucket count of the shared layout;
	// SubPerOctave its linear resolution within each power of two.
	NumBuckets   = 1024
	SubPerOctave = histSub
)

// BucketIndex maps a value (typically nanoseconds) to its bucket.
func BucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // >= 4
	return histSub*(e-3) + int(v>>(uint(e)-4)) - histSub
}

// BucketFloor is the smallest value mapping to bucket idx.
func BucketFloor(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	e := idx/histSub + 3
	off := idx % histSub
	return int64(histSub+off) << (uint(e) - 4)
}

// Histogram is the concurrent counterpart of bench.Hist: the same bucket
// layout, but every bucket is an independent atomic so any goroutine can
// Record without coordination. A record is two uncontended atomic adds plus
// a rarely-contended max CAS; there is no total-order cut across buckets,
// which (as with Counter) is exactly enough for windowed quantiles.
// Methods are safe on a nil *Histogram.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// Record adds one observation of v (clamped below at 0).
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.counts[BucketIndex(v)].Add(1)
	h.total.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot captures the distribution with summary quantiles precomputed.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]uint64, NumBuckets)
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.summarize()
	return s
}

// HistSnapshot is a point-in-time view of a Histogram, JSON-ready: the
// exported summary fields are derived from Counts when the snapshot is
// taken (and re-derived after Sub).
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`

	// Counts is the raw bucket array (len NumBuckets); omitted from JSON.
	Counts []uint64 `json:"-"`
}

// Quantile returns the bucket floor of the q'th quantile (q in [0,1]), a
// conservative estimate within 6.25% below the true value; 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	acc := uint64(0)
	for i, c := range s.Counts {
		acc += c
		if acc > rank {
			return BucketFloor(i)
		}
	}
	return s.Max
}

// Sub returns the window s minus earlier, re-deriving the summary fields
// from the subtracted buckets. Counter-style saturation applies per bucket;
// Max is the later snapshot's max (the true window max is unknowable from
// two cumulative snapshots, and the later max bounds it from above).
func (s HistSnapshot) Sub(earlier HistSnapshot) HistSnapshot {
	out := HistSnapshot{Max: s.Max, Counts: make([]uint64, NumBuckets)}
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	for i := range out.Counts {
		var e uint64
		if i < len(earlier.Counts) {
			e = earlier.Counts[i]
		}
		var c uint64
		if i < len(s.Counts) {
			c = s.Counts[i]
		}
		out.Counts[i] = sat(c, e)
		out.Count += out.Counts[i]
	}
	out.Sum = sat(s.Sum, earlier.Sum)
	out.summarize()
	return out
}

func (s *HistSnapshot) summarize() {
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	} else {
		s.Mean = 0
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}
