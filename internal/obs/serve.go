package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Source is what a live endpoint introspects — *core.Table satisfies it.
// Either method may return nil (e.g. before the table under test exists);
// the handlers answer 503 until it does.
type Source interface {
	Metrics() *Registry
	TraceSnapshot() []Event
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP endpoint on addr (":0" picks a free port) exposing
//
//	/metrics      — registry snapshot as JSON
//	/trace        — merged flight-recorder dump, text (add ?format=json)
//	/debug/pprof/ — the standard runtime profiles
//
// against src. It returns once the listener is bound; requests are served
// on a background goroutine until Close.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := src.Metrics()
		if reg == nil {
			http.Error(w, "no table attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events := src.TraceSnapshot()
		if events == nil {
			http.Error(w, "no table attached", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range events {
			fmt.Fprintln(w, e.String())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
