// Package obs is the engine's always-on observability layer: one place for
// the metrics and tracing machinery that was previously scattered, duplicated
// or missing across the other packages. Three pieces:
//
//   - Counter and Histogram — lock-free, cacheline-sharded primitives cheap
//     enough for every hot path (a Counter increment is one uncontended
//     atomic add on a goroutine-private shard; a Histogram record is two).
//     Histogram uses the same log-bucketed layout as the benchmark
//     harness (16 linear sub-buckets per octave), so engine-side and
//     harness-side distributions are directly comparable.
//   - Registry — names the meters. Every layer registers its counters,
//     gauges and histograms under a dotted name ("dircache.hits",
//     "split.migrate_ns", ...) and Table.Stats(), the bench re-windowing
//     logic and the live endpoint all read the same Snapshot.
//   - Flight — a fixed-size flight recorder of typed binary events (op
//     completions with a path tag, split lifecycle transitions, heals,
//     epoch advances, recovery phases). Recording allocates nothing and
//     takes no locks; TraceSnapshot merges the per-goroutine rings into one
//     time-ordered log that turns a p999 outlier into a narrative.
//
// Serve exposes all of it (plus net/http/pprof) over HTTP for live
// introspection of a running table.
//
// All timestamps in this package are nanoseconds on one process-wide
// monotonic timeline (Now), so events from different components order
// correctly in a merged trace.
package obs

import (
	"sync/atomic"
	"time"
	"unsafe"
)

// epoch anchors the package timeline. Using one base for every component
// keeps all Event.TS values and duration math on a single monotonic clock.
var epoch = time.Now()

// Now returns nanoseconds since process start on the monotonic clock.
func Now() int64 { return int64(time.Since(epoch)) }

// shards is the fan-out of Counter and of the flight recorder's op lane.
// 64 cachelines of counter is 4KiB per Counter — cheap enough to register
// dozens, wide enough that a few dozen runnable goroutines rarely collide.
const shards = 64

// goShard keys a shard by the calling goroutine: the address of a stack
// local, pages apart for distinct goroutine stacks. Keying by goroutine
// rather than by the operation's key hash matters under skew — hash keying
// would re-converge every access to a hot key onto one cacheline,
// recreating exactly the cross-thread hotspot the sharding removes. A
// goroutine's shard is stable apart from stack moves, which only
// redistribute, never contend.
func goShard() uint64 {
	var probe byte
	s := uint64(uintptr(unsafe.Pointer(&probe)))
	// Goroutine stacks are kibibytes apart; fold a few page-granular bits.
	return (s>>10 ^ s>>16) % shards
}

// Counter is a cacheline-sharded event counter: increments spread over
// independent lines, reads sum the shards. The total is exact (per-shard
// atomics, monotone between resets). The zero value is ready to use, and
// all methods are safe on a nil *Counter (no-ops reading zero), so optional
// meters cost exactly one predictable branch when absent.
type Counter struct {
	shards [shards]counterShard
}

type counterShard struct {
	n atomic.Uint64
	_ [56]byte // pad to a cacheline
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the calling goroutine's shard.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[goShard()].n.Add(n)
}

// Total sums the shards. Exact at some instant during the call — the
// strongest guarantee lock-free accounting offers, and all a windowed
// measurement needs.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.shards {
		t += c.shards[i].n.Load()
	}
	return t
}

// Reset zeroes the counter shard by shard. Safe to call while writers run —
// each store is atomic — but increments landing mid-reset may survive in
// not-yet-cleared shards or vanish in already-cleared ones; a mid-run reset
// re-baselines "roughly now" rather than at one instant.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}
