package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != goroutines*per {
		t.Fatalf("Total = %d, want %d", got, goroutines*per)
	}
	c.Reset()
	if got := c.Total(); got != 0 {
		t.Fatalf("Total after Reset = %d", got)
	}
}

func TestCounterNil(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("nil counter total != 0")
	}
}

func TestHistogramConcurrentAndSub(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int64(0); v < 1000; v++ {
				h.Record(v)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	if s.Max != 999 {
		t.Fatalf("max = %d, want 999", s.Max)
	}
	if s.Mean < 499 || s.Mean > 500 {
		t.Fatalf("mean = %f, want ~499.5", s.Mean)
	}
	if p50 := s.P50; p50 < 400 || p50 > 520 {
		t.Fatalf("p50 = %d, want ~500 within bucket error", p50)
	}

	// A disjoint window on top: Sub must isolate it.
	for i := 0; i < 100; i++ {
		h.Record(1 << 20)
	}
	w := h.Snapshot().Sub(s)
	if w.Count != 100 {
		t.Fatalf("window count = %d, want 100", w.Count)
	}
	if w.P50 < 1<<19 {
		t.Fatalf("window p50 = %d, want ~1<<20", w.P50)
	}

	var nilH *Histogram
	nilH.Record(1)
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	r.Histogram("h").Record(7)
	g := int64(0)
	r.Gauge("g", func() int64 { return g })

	s1 := r.Snapshot()
	if s1.Counters["x"] != 3 || s1.Gauges["g"] != 0 || s1.Hists["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s1)
	}

	a.Add(2)
	g = 9
	w := r.Snapshot().Sub(s1)
	if w.Counters["x"] != 2 {
		t.Fatalf("windowed counter = %d, want 2", w.Counters["x"])
	}
	if w.Gauges["g"] != 9 {
		t.Fatalf("windowed gauge = %d, want later value 9", w.Gauges["g"])
	}

	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

// TestFlightWraparound fills tiny rings far past capacity from one goroutine
// and checks the snapshot retains exactly the newest events, time-ordered.
func TestFlightWraparound(t *testing.T) {
	f := NewFlightSized(4, 8)
	const total = 100
	for i := 0; i < total; i++ {
		// Explicit ascending timestamps; A carries the sequence number.
		f.RecordAt(int64(i), EvGet, PathMirrorHit, uint64(i), 0)
		f.RecordAt(int64(i), EvSplitTrigger, TagNone, uint64(i), 0)
	}
	ev := f.Snapshot()
	var ops, ctl []Event
	for _, e := range ev {
		switch e.Type {
		case EvGet:
			ops = append(ops, e)
		case EvSplitTrigger:
			ctl = append(ctl, e)
		default:
			t.Fatalf("unexpected event type %v", e.Type)
		}
	}
	// One goroutine records into one op shard: exactly the ring size
	// survives, and it must be the newest entries in order.
	if len(ops) != 4 || len(ctl) != 8 {
		t.Fatalf("retained %d op / %d ctl events, want 4 / 8", len(ops), len(ctl))
	}
	for i, e := range ops {
		if want := uint64(total - 4 + i); e.A != want {
			t.Fatalf("op[%d].A = %d, want %d (newest-last)", i, e.A, want)
		}
	}
	for i, e := range ctl {
		if want := uint64(total - 8 + i); e.A != want {
			t.Fatalf("ctl[%d].A = %d, want %d (newest-last)", i, e.A, want)
		}
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("snapshot not time-ordered at %d", i)
		}
	}
}

// TestFlightConcurrentSnapshot hammers tiny rings from several writers while
// snapshotting, checking no snapshot ever returns a torn event: each event
// is written with B = A+1, an invariant a mixed read would break.
func TestFlightConcurrentSnapshot(t *testing.T) {
	f := NewFlightSized(2, 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-done:
					return
				default:
				}
				a := uint64(g)<<32 | i
				f.Record(EvInsert, OutcomeOK, a, a+1)
				f.Record(EvEpochAdvance, TagNone, a, a+1)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		for _, e := range f.Snapshot() {
			if e.B != e.A+1 {
				t.Errorf("torn event: %+v", e)
			}
		}
	}
	close(done)
	wg.Wait()
}

type fakeSource struct {
	reg *Registry
	fr  *Flight
}

func (s fakeSource) Metrics() *Registry     { return s.reg }
func (s fakeSource) TraceSnapshot() []Event { return s.fr.Snapshot() }

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.hits").Add(7)
	fr := NewFlight()
	fr.Record(EvSplitPublish, TagNone, 42, 43)

	srv, err := Serve("127.0.0.1:0", fakeSource{reg: reg, fr: fr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "test.hits") {
		t.Fatalf("/metrics: code %d, body %q", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, "split-publish") {
		t.Fatalf("/trace: code %d, body %q", code, body)
	}
	if code, body := get("/trace?format=json"); code != 200 || !strings.Contains(body, `"a":42`) {
		t.Fatalf("/trace?format=json: code %d, body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}

	// A source with nothing attached answers 503 until a table exists.
	empty, err := Serve("127.0.0.1:0", fakeSource{})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	resp, err := http.Get("http://" + empty.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty /metrics: code %d, want 503", resp.StatusCode)
	}
}
