package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// EventType discriminates flight-recorder events. Types below evOpMax are
// per-operation completions (high volume, recorded into the sharded op
// lane); the rest are structural transitions (rare, recorded into the
// control lane so an op flood can never evict the lifecycle of the split
// that stalled it).
type EventType uint8

const (
	EvNone EventType = iota
	EvGet
	EvInsert
	EvUpdate
	EvDelete

	evOpMax // lane boundary, not a real event

	EvSplitTrigger  // an insert found the segment full; A = segment addr
	EvSplitCAS      // split ownership CAS won; A = segment addr
	EvSplitMigrate  // records copied to sibling; A = old seg, B = new seg
	EvSplitPublish  // directory entries flipped; A = old seg, B = new seg
	EvSplitSweep    // moved records swept from old seg; A = old seg, B = stall ns
	EvSplitRollback // split abandoned before publish; A = segment addr
	EvDirDouble     // directory doubled; A = new global depth
	EvMirrorHeal    // filter mirror healed from PM; A = segment addr
	EvRouteRepair   // stale dirCache route repaired; A = key hash
	EvEpochAdvance  // epoch advanced; A = new epoch, B = objects reclaimed
	EvRecovery      // recovery phase finished; Tag = phase, B = duration ns
	EvSegRecover    // lazy first-touch segment recovery; A = segment addr, B = duration ns
)

var evNames = map[EventType]string{
	EvGet:           "get",
	EvInsert:        "insert",
	EvUpdate:        "update",
	EvDelete:        "delete",
	EvSplitTrigger:  "split-trigger",
	EvSplitCAS:      "split-cas",
	EvSplitMigrate:  "split-migrate",
	EvSplitPublish:  "split-publish",
	EvSplitSweep:    "split-sweep",
	EvSplitRollback: "split-rollback",
	EvDirDouble:     "dir-double",
	EvMirrorHeal:    "mirror-heal",
	EvRouteRepair:   "route-repair",
	EvEpochAdvance:  "epoch-advance",
	EvRecovery:      "recovery-phase",
	EvSegRecover:    "seg-recover",
}

func (t EventType) String() string {
	if s, ok := evNames[t]; ok {
		return s
	}
	return fmt.Sprintf("ev(%d)", uint8(t))
}

// Event tags: the one-byte qualifier. For op events it is the path/outcome
// that served the operation; for EvRecovery it is the phase.
const (
	TagNone uint8 = iota

	// Read paths (EvGet).
	PathMirrorHit  // positive hit served by the DRAM filter mirror
	PathMirrorNeg  // negative vouched for entirely in DRAM
	PathPMFallback // no mirror installed (or unstable): PM bucket probe

	// Mutator outcomes (EvInsert/EvUpdate/EvDelete).
	OutcomeOK
	OutcomeExists   // insert: key already present
	OutcomeMissing  // update/delete: key absent
	OutcomeOverflow // insert: stash exhausted even after splitting
	OutcomeTooLarge // variable-length key/value over the log's limit
	OutcomeErr      // any other error

	// Recovery phases (EvRecovery).
	PhaseDirectory
	PhaseSegments
	PhaseLog
	PhaseMirrors
)

var tagNames = map[uint8]string{
	TagNone:         "-",
	PathMirrorHit:   "mirror-hit",
	PathMirrorNeg:   "mirror-neg",
	PathPMFallback:  "pm-fallback",
	OutcomeOK:       "ok",
	OutcomeExists:   "exists",
	OutcomeMissing:  "missing",
	OutcomeOverflow: "overflow",
	OutcomeTooLarge: "too-large",
	OutcomeErr:      "err",
	PhaseDirectory:  "directory",
	PhaseSegments:   "segments",
	PhaseLog:        "log",
	PhaseMirrors:    "mirrors",
}

// TagName renders a tag for human-readable traces.
func TagName(tag uint8) string {
	if s, ok := tagNames[tag]; ok {
		return s
	}
	return fmt.Sprintf("tag(%d)", tag)
}

// Event is one flight-recorder entry. TS is nanoseconds on the package
// timeline (Now); A and B are type-specific payloads (see the EventType
// constants). Op events carry the operation's key hash in A and its
// duration in nanoseconds in B, with TS at the operation's start — begin
// and end in one record.
type Event struct {
	TS   int64     `json:"ts"`
	Type EventType `json:"type"`
	Tag  uint8     `json:"tag"`
	A    uint64    `json:"a"`
	B    uint64    `json:"b"`
}

func (e Event) String() string {
	return fmt.Sprintf("%14.6fms %-14s %-11s a=%#x b=%d",
		float64(e.TS)/1e6, e.Type.String(), TagName(e.Tag), e.A, e.B)
}

// Flight is the fixed-size flight recorder. Recording claims a slot index
// with one atomic add and stores the fields with plain atomics — no locks,
// no allocation, wait-free. Two lanes:
//
//   - the op lane: goroutine-sharded rings for the high-volume
//     per-operation events, so concurrent writers never share a cursor
//     cacheline;
//   - the control lane: one ring reserved for the rare structural events
//     (split lifecycle, heals, epoch advances, recovery), so their history
//     survives long after millions of op events have wrapped the op lane.
//
// A slot is published by a seqlock-style protocol (seq=0 → fields →
// seq=index+1); TraceSnapshot drops slots it catches mid-overwrite instead
// of returning torn events.
type Flight struct {
	ops [shards]ring
	ctl ring
}

const (
	defaultOpSlots  = 1 << 11 // per op-lane shard: 64 shards × 2048 = 128Ki events
	defaultCtlSlots = 1 << 12
)

type slot struct {
	seq  atomic.Uint64 // 0 while being written, else slot index+1
	ts   atomic.Int64
	meta atomic.Uint64 // Type<<8 | Tag
	a    atomic.Uint64
	b    atomic.Uint64
}

type ring struct {
	cursor atomic.Uint64
	slots  []slot // power-of-two length
}

// NewFlight returns a recorder with the default ring sizes.
func NewFlight() *Flight { return NewFlightSized(defaultOpSlots, defaultCtlSlots) }

// NewFlightSized returns a recorder with opSlots slots per op-lane shard
// and ctlSlots control-lane slots; both are rounded up to a power of two
// (minimum 2).
func NewFlightSized(opSlots, ctlSlots int) *Flight {
	f := new(Flight)
	for i := range f.ops {
		f.ops[i].slots = make([]slot, ceilPow2(opSlots))
	}
	f.ctl.slots = make([]slot, ceilPow2(ctlSlots))
	return f
}

func ceilPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// Record appends one event stamped Now(). Safe (and a no-op) on a nil
// *Flight.
func (f *Flight) Record(t EventType, tag uint8, a, b uint64) {
	f.RecordAt(Now(), t, tag, a, b)
}

// RecordAt appends one event with an explicit timestamp — op wrappers pass
// the operation's start time so the trace orders by begin, having already
// captured it to compute the duration.
func (f *Flight) RecordAt(ts int64, t EventType, tag uint8, a, b uint64) {
	if f == nil {
		return
	}
	r := &f.ctl
	if t < evOpMax {
		r = &f.ops[goShard()]
	}
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&uint64(len(r.slots)-1)]
	s.seq.Store(0)
	s.ts.Store(ts)
	s.meta.Store(uint64(t)<<8 | uint64(tag))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(i + 1)
}

// Now is a convenience alias so callers holding a *Flight need no second
// import path for timestamps.
func (f *Flight) Now() int64 { return Now() }

func (r *ring) snapshot(out []Event) []Event {
	n := uint64(len(r.slots))
	if n == 0 {
		return out
	}
	c := r.cursor.Load()
	lo := uint64(0)
	if c > n {
		lo = c - n
	}
	for i := lo; i < c; i++ {
		s := &r.slots[i&(n-1)]
		if s.seq.Load() != i+1 {
			continue // torn or already overwritten
		}
		ts := s.ts.Load()
		meta := s.meta.Load()
		a := s.a.Load()
		b := s.b.Load()
		if s.seq.Load() != i+1 {
			continue // overwritten while reading
		}
		out = append(out, Event{TS: ts, Type: EventType(meta >> 8), Tag: uint8(meta), A: a, B: b})
	}
	return out
}

// Snapshot merges every lane into one log sorted by timestamp (stable, so
// same-stamp events keep ring order). It runs concurrently with recording;
// events overwritten mid-read are dropped, never torn.
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	// Non-nil even when empty: consumers (obs.Serve) use nil to mean "no
	// recorder attached", not "nothing recorded yet".
	out := make([]Event, 0, 64)
	for i := range f.ops {
		out = f.ops[i].snapshot(out)
	}
	out = f.ctl.snapshot(out)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
