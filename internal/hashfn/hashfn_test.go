package hashfn

import (
	"encoding/binary"
	"testing"
)

// Vectors computed with a direct port of Austin Appleby's canonical
// MurmurHash64A reference implementation (little-endian body reads).
func TestHash64KnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0x0, 0x0},
		{"", 0xdeadbeefcafebabe, 0xf821aed61d95f50a},
		{"a", 0x0, 0x71717d2d36b6b11},
		{"ab", 0x0, 0x62be85b2fe53d1f8},
		{"abc", 0x0, 0x9cc9c33498a95efb},
		{"abcd", 0x0, 0xec1044c45cc5097a},
		{"abcde", 0x0, 0x1182974836d6dbb7},
		{"abcdef", 0x0, 0xb78e3425fc996779},
		{"abcdefg", 0x0, 0x241aa52b0a62005d},
		{"abcdefgh", 0x0, 0xafdb0257ff41aa98},
		{"abcdefghi", 0x0, 0xc9b9d84356146ac2},
		{"hello, world", 0x9747b28c, 0x6be890f23bce8167},
		{"The quick brown fox jumps over the lazy dog", 0xdeadbeefcafebabe, 0x64b0867268199a76},
	}
	for _, c := range cases {
		if got := Hash64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Hash64(%q, %#x) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestHashU64MatchesHash64(t *testing.T) {
	// The fixed-length fast path must agree with hashing the 8 little-endian
	// bytes through the general function.
	known := []struct {
		x    uint64
		want uint64
	}{
		{0x0, 0x474563ee986d1ed2},
		{0x1, 0x70e5870eacf0f888},
		{0xffffffffffffffff, 0xa3bece0dc68a119c},
		{0x0123456789abcdef, 0x2f441f0c475a1c64},
	}
	for _, c := range known {
		if got := HashU64(c.x, DefaultSeed); got != c.want {
			t.Errorf("HashU64(%#x) = %#x, want %#x", c.x, got, c.want)
		}
	}
	for x := uint64(0); x < 1000; x++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		if g, w := HashU64(x, DefaultSeed), Hash64(b[:], DefaultSeed); g != w {
			t.Fatalf("HashU64(%d) = %#x diverges from Hash64 = %#x", x, g, w)
		}
	}
}

func TestSplitBitAllocation(t *testing.T) {
	h := uint64(0xfedcba9876543210)
	p := Split(h)
	if p.FP != 0x10 {
		t.Errorf("fingerprint = %#x, want low byte %#x", p.FP, 0x10)
	}
	if got, want := p.BucketIndex(6), (h>>8)&63; got != want {
		t.Errorf("BucketIndex(6) = %d, want %d", got, want)
	}
	if got, want := p.DirIndex(8), h>>56; got != want {
		t.Errorf("DirIndex(8) = %#x, want %#x", got, want)
	}
	if got := p.DirIndex(0); got != 0 {
		t.Errorf("DirIndex(0) = %d, want 0", got)
	}
	// DepthBit(d) must be exactly the bit separating DirIndex(d) from
	// DirIndex(d+1).
	for d := uint8(0); d < 16; d++ {
		want := p.DirIndex(d+1) != p.DirIndex(d)<<1
		if got := p.DepthBit(d); got != want {
			t.Errorf("DepthBit(%d) = %v, want %v", d, got, want)
		}
	}
}

// TestSplitDistribution sanity-checks that the three bit fields carved out
// of one hash are each roughly uniform over sequential keys — the property
// the bucket/segment/directory layers all rely on.
func TestSplitDistribution(t *testing.T) {
	const n = 1 << 16
	const dirDepth = 4
	var fpHist [256]int
	var bucketHist [64]int
	var dirHist [1 << dirDepth]int
	for i := uint64(0); i < n; i++ {
		p := Split(HashU64(i, DefaultSeed))
		fpHist[p.FP]++
		bucketHist[p.BucketIndex(6)]++
		dirHist[p.DirIndex(dirDepth)]++
	}
	check := func(name string, hist []int, expect float64) {
		for i, c := range hist {
			if f := float64(c); f < expect/2 || f > expect*2 {
				t.Errorf("%s[%d] = %d, outside [%.0f, %.0f]", name, i, c, expect/2, expect*2)
			}
		}
	}
	check("fingerprint", fpHist[:], n/256.0)
	check("bucket", bucketHist[:], n/64.0)
	check("dir", dirHist[:], float64(n)/(1<<dirDepth))
}
