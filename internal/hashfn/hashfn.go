// Package hashfn provides the 64-bit hash used throughout the repository.
//
// The paper uses GCC's std::_Hash_bytes, which is MurmurHash-derived; this
// package implements MurmurHash64A, the same family, giving uniform
// high-quality 64-bit values. Dash consumes the value three ways (§4):
// the least-significant byte is the fingerprint, the next bits select the
// bucket within a segment, and the most-significant bits index the segment
// directory.
package hashfn

import "encoding/binary"

const (
	murmurM = 0xc6a4a7935bd1e995
	murmurR = 47
)

// DefaultSeed seeds every table unless a test overrides it.
const DefaultSeed uint64 = 0xdeadbeefcafebabe

// Hash64 computes MurmurHash64A of data with the given seed.
func Hash64(data []byte, seed uint64) uint64 {
	h := seed ^ uint64(len(data))*murmurM
	n := len(data)
	for ; n >= 8; n -= 8 {
		k := binary.LittleEndian.Uint64(data[len(data)-n:])
		k *= murmurM
		k ^= k >> murmurR
		k *= murmurM
		h ^= k
		h *= murmurM
	}
	tail := data[len(data)-n:]
	switch n {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= murmurM
	}
	h ^= h >> murmurR
	h *= murmurM
	h ^= h >> murmurR
	return h
}

// HashU64 is the fixed-length fast path: MurmurHash64A of the 8 bytes of x.
func HashU64(x, seed uint64) uint64 {
	h := seed ^ 8*murmurM
	k := x
	k *= murmurM
	k ^= k >> murmurR
	k *= murmurM
	h ^= k
	h *= murmurM
	h ^= h >> murmurR
	h *= murmurM
	h ^= h >> murmurR
	return h
}

// Fingerprint returns the one-byte fingerprint of a hash value: its least
// significant byte (§4.2).
func Fingerprint(h uint64) uint8 { return uint8(h) }

// SegmentIndex returns the directory index for h under the given global
// depth, using the most-significant bits (§4.7 MSB scheme).
func SegmentIndex(h uint64, depth uint8) uint64 {
	if depth == 0 {
		return 0
	}
	return h >> (64 - uint(depth))
}
