// Package hashfn provides the 64-bit hash used throughout the repository,
// and — through Parts — the single authoritative split of that value's bits
// among the layers of the Dash-EH engine.
//
// The paper uses GCC's std::_Hash_bytes, which is MurmurHash-derived; this
// package implements MurmurHash64A, the same family, giving uniform
// high-quality 64-bit values. Dash consumes one hash value three ways (§4),
// each consumer drawing from a different bit range so the three uses are
// independent:
//
//		bit 63 ──────────────────────────────────────────────── bit 0
//		[ directory index ]............[ bucket index ][ fingerprint ]
//		  top `depth` bits               bits 8..8+B-1     bits 0..7
//
//	  - Fingerprint — the least-significant byte (bits 0..7). Stored in the
//	    bucket header and compared before any record dereference, so a probe
//	    touches a record's PM only on a 1/256 false-positive or a true hit.
//	  - Bucket index — the B bits directly above the fingerprint (bits
//	    8..8+B-1 for a segment with 2^B normal buckets; B = 6 in core).
//	  - Directory index — the most-significant `global depth` bits (the
//	    paper's §4.7 MSB scheme). MSB indexing keeps all directory entries
//	    covering one segment contiguous, which is what lets a split publish
//	    its new segment by flipping the upper half of a contiguous entry
//	    range, and lets a doubling duplicate entries pairwise.
//
// # Worked example
//
// Take h = Hash(k) = 0xC2A7_3F19_0000_54D6 with global depth 4 and 64
// buckets per segment (B = 6):
//
//		h = 1100 0010 1010 0111 0011 1111 0001 1001 ... 0101 0100 1101 0110
//		    ^^^^ directory                               ..54D6 = low bits
//
//	  - Fingerprint(h) = 0xD6 (the low byte).
//	  - BucketIndex(6) = (h >> 8) & 0x3F = 0x54 & 0x3F = 0x14 = bucket 20,
//	    with bucket 21 as the balanced-insert/probing neighbor.
//	  - DirIndex(4) = h >> 60 = 0xC = entry 12 of the 16-entry directory.
//
// If the segment at entry 12 has local depth 2, its pattern is the top 2
// bits, 0b11 = 3, and that segment owns directory entries 12..15. When it
// splits, keys follow DepthBit(2) — the third bit counted from the MSB end,
// i.e. LSB-numbered bit 61, here 0 — so this key stays in the old segment
// (new pattern 0b110, entries 12..13) rather than moving to the sibling
// (pattern 0b111, entries 14..15).
package hashfn

import "encoding/binary"

const (
	murmurM = 0xc6a4a7935bd1e995
	murmurR = 47
)

// DefaultSeed seeds every table unless a test overrides it.
const DefaultSeed uint64 = 0xdeadbeefcafebabe

// Hash64 computes MurmurHash64A of data with the given seed.
func Hash64(data []byte, seed uint64) uint64 {
	h := seed ^ uint64(len(data))*murmurM
	n := len(data)
	for ; n >= 8; n -= 8 {
		k := binary.LittleEndian.Uint64(data[len(data)-n:])
		k *= murmurM
		k ^= k >> murmurR
		k *= murmurM
		h ^= k
		h *= murmurM
	}
	tail := data[len(data)-n:]
	switch n {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= murmurM
	}
	h ^= h >> murmurR
	h *= murmurM
	h ^= h >> murmurR
	return h
}

// HashU64 is the fixed-length fast path: MurmurHash64A of the 8 bytes of x.
// HashU64(x, s) == Hash64(le(x), s) exactly — a uint64 key and its 8-byte
// little-endian encoding are the same key to every layer above, which is
// what lets the engine's uint64 and []byte APIs share one keyspace
// (asserted by TestHashU64MatchesHash64).
func HashU64(x, seed uint64) uint64 {
	// 8*murmurM truncated to 64 bits; as an untyped constant expression it
	// would overflow uint64 and fail to compile.
	const lenMix = (8 * murmurM) & (1<<64 - 1)
	h := seed ^ lenMix
	k := x
	k *= murmurM
	k ^= k >> murmurR
	k *= murmurM
	h ^= k
	h *= murmurM
	h ^= h >> murmurR
	h *= murmurM
	h ^= h >> murmurR
	return h
}

// Fingerprint returns the one-byte fingerprint of a hash value: its least
// significant byte (§4.2).
func Fingerprint(h uint64) uint8 { return uint8(h) }

// SegmentIndex returns the directory index for h under the given global
// depth, using the most-significant bits (§4.7 MSB scheme).
func SegmentIndex(h uint64, depth uint8) uint64 {
	if depth == 0 {
		return 0
	}
	return h >> (64 - uint(depth))
}

// Parts is the agreed split of one 64-bit hash value among the layers of the
// Dash-EH engine. Every layer derives its bits through Parts so the bit
// allocation lives in exactly one place:
//
//	bit 63 ............................ bit 8  bit 7 ... bit 0
//	[ directory index (top `depth` bits) ]     [ fingerprint ]
//	          [ bucket index: bits 8..8+bucketBits ]
//
// The fingerprint comes from the least-significant byte, the bucket index
// from the bits just above it, and the directory index from the
// most-significant bits (the paper's MSB scheme, §4.7, which keeps the
// directory entries covering one segment contiguous — the property the
// crash-consistent split publish relies on). Directory and bucket bits
// overlap only when depth+bucketBits > 56, far beyond any realistic table.
type Parts struct {
	// Hash is the full 64-bit hash value.
	Hash uint64
	// FP is the one-byte fingerprint probed before any key comparison.
	FP uint8
}

// Split decomposes a hash value into its Parts.
func Split(h uint64) Parts { return Parts{Hash: h, FP: Fingerprint(h)} }

// BucketIndex returns the in-segment bucket index for a segment with
// 2^bucketBits normal buckets, taken from the bits directly above the
// fingerprint byte.
func (p Parts) BucketIndex(bucketBits uint) uint64 {
	return (p.Hash >> 8) & ((1 << bucketBits) - 1)
}

// DirIndex returns the directory index under the given global depth.
func (p Parts) DirIndex(depth uint8) uint64 { return SegmentIndex(p.Hash, depth) }

// DepthBit reports the value of the hash bit that decides which side of a
// split a key lands on when a segment of local depth `depth` splits: bit
// `depth` counted from the most-significant end. Keys with DepthBit false
// stay in the old segment (pattern P<<1), keys with DepthBit true move to
// the new segment (pattern P<<1|1).
func (p Parts) DepthBit(depth uint8) bool {
	return (p.Hash>>(63-uint(depth)))&1 == 1
}
