package bench

import (
	"testing"

	"dash/internal/workload"
)

// Every registered client simulation must run end to end through the
// service harness at a small scale, pass its own lost-op audit, and show
// fence elision working (elided > 0 on write-bearing mixes).
func TestRunServiceAllSims(t *testing.T) {
	for _, sim := range workload.ClientSims {
		sim := sim
		t.Run(sim.Name, func(t *testing.T) {
			res, err := RunService(ServiceConfig{
				Shards:    2,
				Batch:     4,
				Clients:   2,
				Ops:       4000,
				WarmupOps: 400,
				Keyspace:  4096,
				Sim:       sim,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 4000 {
				t.Fatalf("Ops = %d, want 4000", res.Ops)
			}
			if res.Hist.Total() != 4000 {
				t.Fatalf("latency samples = %d, want 4000", res.Hist.Total())
			}
			if len(res.PerShard) != 2 {
				t.Fatalf("PerShard rows = %d, want 2", len(res.PerShard))
			}
			var shardOps uint64
			for _, row := range res.PerShard {
				shardOps += row.Ops
			}
			if shardOps != 4000 {
				t.Fatalf("per-shard ops sum to %d, want 4000", shardOps)
			}
			if res.FencesElidedPerOp <= 0 {
				t.Fatal("no fences elided; the batch window never engaged")
			}
			if sim.SessionOps > 0 && res.Reconnects == 0 {
				t.Fatal("churn sim produced no reconnects")
			}
			if sim.ShardTheta != 0 && res.Imbalance <= 0 {
				t.Fatal("hot-shard sim produced no shard imbalance")
			}
		})
	}
}

// The batched configuration must use strictly fewer PM fences per op than
// the unbatched baseline on a write-bearing simulation — the relation the
// svc-balanced gate cell asserts with committed thresholds.
func TestRunServiceFenceReduction(t *testing.T) {
	sim, _ := workload.ClientSimByName("svc-balanced")
	run := func(shards, batch int) *ServiceResult {
		res, err := RunService(ServiceConfig{
			Shards:    shards,
			Batch:     batch,
			Clients:   2,
			Ops:       4000,
			WarmupOps: 400,
			Keyspace:  4096,
			Sim:       sim,
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	baseline := run(1, 1)
	batched := run(2, 8)
	if batched.FencesPerOp >= baseline.FencesPerOp {
		t.Fatalf("batched %.3f fences/op, want < baseline %.3f", batched.FencesPerOp, baseline.FencesPerOp)
	}
	if batched.BatchSizeMean <= 1 {
		t.Fatalf("batch mean %.2f, want > 1", batched.BatchSizeMean)
	}
}
