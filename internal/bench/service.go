package bench

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dash/internal/core"
	"dash/internal/pmem"
	"dash/internal/service"
	"dash/internal/workload"
)

// Service-tier harness: drives a service.Shards + service.Frontend stack
// with simulated clients (workload.ClientSim) instead of driving one table
// directly. Latency here is client-observed submit→completion time —
// queueing and batching included — and PM traffic aggregates across every
// shard's pool, so the fence amortization of the batched pipeline shows up
// directly in FencesPerOp.

// ServiceConfig describes one service-tier benchmark cell.
type ServiceConfig struct {
	// Shards is the shard count (power of two).
	Shards int
	// Batch is the frontend's max requests per fence-amortized batch;
	// 1 is the unbatched baseline (one fence per write op).
	Batch int
	// Clients is the number of simulated client goroutines.
	Clients int
	// Window is each client's pipeline depth (max outstanding requests);
	// 0 defaults to 2×Batch (enough in-flight work to fill batches).
	Window int
	// Ops is the total number of measured operations across clients.
	Ops int64
	// WarmupOps is the unmeasured warmup operation count.
	WarmupOps int64
	// Keyspace is the number of preloaded records (spread over the shards
	// by routing).
	Keyspace uint64
	// Theta is the per-key Zipfian skew of the base distribution (0 =
	// uniform); shard-level skew comes from the simulation profile.
	Theta float64
	// Sim is the client-simulation profile to run.
	Sim workload.ClientSim
	// Seed makes the run reproducible.
	Seed uint64
	// PoolSize overrides the per-shard pool size; 0 sizes it from Keyspace
	// and the mix, with headroom for routing imbalance.
	PoolSize uint64
	// Model, when non-nil, is installed on every shard's pool after
	// preload (preload is setup, not workload).
	Model *pmem.CostModel
}

// ShardRow is one shard's slice of a service benchmark result.
type ShardRow struct {
	// Shard is the shard index.
	Shard int
	// Ops counts operations the shard's executor ran in the measured phase.
	Ops uint64
	// FencesPerOp and FencesElidedPerOp are the shard pool's measured-phase
	// fence traffic per shard-local operation.
	FencesPerOp       float64
	FencesElidedPerOp float64
	// Count and LoadFactor describe the shard table after the run.
	Count      int64
	LoadFactor float64
	// Splits counts the shard's measured-phase segment splits.
	Splits uint64
}

// ServiceResult is the outcome of one service-tier benchmark cell.
type ServiceResult struct {
	// Sim names the client-simulation profile that ran.
	Sim string
	// Shards, Batch and Clients echo the cell configuration.
	Shards  int
	Batch   int
	Clients int
	// Ops and Elapsed cover the measured phase; MopsPerS is aggregate
	// throughput across all shards.
	Ops      int64
	Elapsed  time.Duration
	MopsPerS float64

	// Client-observed latency (submit → completion, queueing and batching
	// included), nanoseconds over the measured phase.
	Hist   *Hist
	P50NS  int64
	P90NS  int64
	P99NS  int64
	P999NS int64
	MaxNS  int64
	MeanNS float64

	// PM aggregates measured-phase traffic across every shard's pool; the
	// *PerOp fields normalize by measured operations. FencesPerOp is the
	// headline number batching drives down; FencesElidedPerOp counts the
	// ordering points each batch's tail fence absorbed.
	PM                pmem.StatsSnapshot
	ReadBytesPerOp    float64
	WriteBytesPerOp   float64
	FlushedBytesPerOp float64
	FencesPerOp       float64
	FencesElidedPerOp float64

	// BatchSizeMean is the mean executor batch size over the measured
	// phase; FlushSaved the fences saved (elided minus tail fences);
	// Imbalance the (max/mean − 1) spread of ops across shards;
	// Reconnects the connection-churn session count across clients.
	BatchSizeMean float64
	FlushSaved    uint64
	Imbalance     float64
	Reconnects    int64

	// Aggregate table shape after the run: total records, mean load
	// factor, max global depth and total segments across shards.
	Count          int64
	LoadFactor     float64
	GlobalDepthMax uint8
	Segments       int

	// PerShard breaks the aggregate down by shard.
	PerShard []ShardRow

	Counts Counts
}

// RunService executes one service-tier cell: build the shards, preload,
// start the frontend, run the client simulation (warmup then measured),
// and aggregate per-shard and client-side metrics.
func RunService(cfg ServiceConfig) (*ServiceResult, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("bench: shards must be > 0")
	}
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("bench: clients must be > 0")
	}
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("bench: ops must be > 0")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 2 * cfg.Batch
	}

	svc, err := service.New(service.Config{
		Shards:   cfg.Shards,
		PoolSize: cfg.shardPoolSize(),
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	sim := cfg.Sim
	if err := preloadShards(svc, sim, cfg.Keyspace); err != nil {
		return nil, err
	}

	gen, err := workload.NewSimGenerator(workload.SimConfig{
		Keyspace:  cfg.Keyspace,
		Theta:     cfg.Theta,
		Seed:      cfg.Seed,
		Sim:       sim,
		NumShards: cfg.Shards,
		ShardOf:   func(rank uint64) int { return routeRank(svc, sim, rank) },
	})
	if err != nil {
		return nil, err
	}

	// The cost model joins after preload, like bench.Run.
	if cfg.Model != nil {
		for i := 0; i < svc.N(); i++ {
			svc.Pool(i).SetModel(cfg.Model)
		}
		defer func() {
			for i := 0; i < svc.N(); i++ {
				svc.Pool(i).SetModel(nil)
			}
		}()
	}

	fe := service.NewFrontend(svc, cfg.Batch)
	defer fe.Close()

	clients := make([]*svcClient, cfg.Clients)
	for c := range clients {
		clients[c] = newSvcClient(fe, gen.Stream(c), sim, cfg.Window)
	}

	if cfg.WarmupOps > 0 {
		if err := runSvcPhase(clients, cfg.WarmupOps, false); err != nil {
			return nil, err
		}
	}

	// Hold GC off during measurement, as in Run: the pipeline allocates
	// almost nothing per op and GC assists would read as latency outliers.
	runtime.GC()
	gcPrev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPrev)

	before := svc.PMStats()
	feBefore := fe.Metrics().Snapshot()
	shardBefore := make([]pmem.StatsSnapshot, svc.N())
	shardTBefore := make([]core.TableStats, svc.N())
	for i := 0; i < svc.N(); i++ {
		shardBefore[i] = svc.Pool(i).Stats()
		shardTBefore[i] = svc.Table(i).Stats()
	}
	start := time.Now()
	if err := runSvcPhase(clients, cfg.Ops, true); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	pm := svc.PMStats().Sub(before)
	feWin := fe.Metrics().Snapshot().Sub(feBefore)

	res := &ServiceResult{
		Sim:     sim.Name,
		Shards:  cfg.Shards,
		Batch:   cfg.Batch,
		Clients: cfg.Clients,
		Ops:     cfg.Ops,
		Elapsed: elapsed,
		Hist:    &Hist{},
		PM:      pm,
	}
	res.Counts.Preloaded = cfg.Keyspace
	for _, c := range clients {
		res.Hist.Merge(&c.hist)
		res.Counts.add(&c.counts)
		res.Reconnects += c.reconnects
	}
	if res.Hist.Total() != uint64(cfg.Ops) {
		return nil, fmt.Errorf("bench: recorded %d latencies for %d ops", res.Hist.Total(), cfg.Ops)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.MopsPerS = float64(cfg.Ops) / sec / 1e6
	}
	res.P50NS = res.Hist.Quantile(0.50)
	res.P90NS = res.Hist.Quantile(0.90)
	res.P99NS = res.Hist.Quantile(0.99)
	res.P999NS = res.Hist.Quantile(0.999)
	res.MaxNS = res.Hist.Max()
	res.MeanNS = res.Hist.Mean()
	ops := float64(cfg.Ops)
	res.ReadBytesPerOp = float64(pm.ReadLines) * pmem.CachelineSize / ops
	res.WriteBytesPerOp = float64(pm.WriteLines) * pmem.CachelineSize / ops
	res.FlushedBytesPerOp = float64(pm.FlushedLines) * pmem.CachelineSize / ops
	res.FencesPerOp = float64(pm.Fences) / ops
	res.FencesElidedPerOp = float64(pm.FencesElided) / ops
	if bs := feWin.Hists["service.batch.size"]; bs.Count > 0 {
		res.BatchSizeMean = bs.Mean
	}
	res.FlushSaved = feWin.Counters["service.batch.flush_saved"]

	// Per-shard rows, re-windowed to the measured phase; imbalance is the
	// measured-phase spread of executor ops across shards.
	var opsMax, opsSum uint64
	var lfSum float64
	for i := 0; i < svc.N(); i++ {
		spm := svc.Pool(i).Stats().Sub(shardBefore[i])
		ts := svc.Table(i).Stats()
		shOps := feWin.Counters[fmt.Sprintf("service.shard.%d.ops", i)]
		opsSum += shOps
		if shOps > opsMax {
			opsMax = shOps
		}
		row := ShardRow{
			Shard:      i,
			Ops:        shOps,
			Count:      ts.Count,
			LoadFactor: ts.LoadFactor,
			Splits:     ts.Splits - shardTBefore[i].Splits,
		}
		if shOps > 0 {
			row.FencesPerOp = float64(spm.Fences) / float64(shOps)
			row.FencesElidedPerOp = float64(spm.FencesElided) / float64(shOps)
		}
		res.PerShard = append(res.PerShard, row)
		res.Count += ts.Count
		lfSum += ts.LoadFactor
		res.Segments += ts.Segments
		if ts.GlobalDepth > res.GlobalDepthMax {
			res.GlobalDepthMax = ts.GlobalDepth
		}
	}
	res.LoadFactor = lfSum / float64(svc.N())
	if opsSum > 0 {
		mean := float64(opsSum) / float64(svc.N())
		res.Imbalance = float64(opsMax)/mean - 1
	}

	// Lost-operation audit across all shards, as in Run.
	if want := int64(cfg.Keyspace) + res.Counts.InsertOK - res.Counts.DeleteOK; res.Count != want {
		return nil, fmt.Errorf("bench: lost operations: shards count %d, want %d", res.Count, want)
	}
	return res, nil
}

// shardPoolSize returns the per-shard pool capacity: the single-table
// estimate split over the shards with 2× headroom for routing imbalance.
func (cfg ServiceConfig) shardPoolSize() uint64 {
	if cfg.PoolSize != 0 {
		return cfg.PoolSize
	}
	inserts := uint64((cfg.Ops + cfg.WarmupOps) * int64(cfg.Sim.Mix.Percent[workload.OpInsert]) / 100)
	size := (cfg.Keyspace + inserts) * 64
	if cfg.Sim.Var() {
		maxKey, maxVal := 0, 0
		specs := cfg.Sim.Tenants
		if len(specs) == 0 {
			specs = []workload.VarSpec{*cfg.Sim.Mix.Var}
		}
		for _, s := range specs {
			if s.MaxKeyLen > maxKey {
				maxKey = s.MaxKeyLen
			}
			if s.MaxValLen > maxVal {
				maxVal = s.MaxValLen
			}
		}
		blob := uint64(16+maxKey+maxVal+15) &^ 15
		updates := uint64((cfg.Ops + cfg.WarmupOps) * int64(cfg.Sim.Mix.Percent[workload.OpUpdate]) / 100)
		size += (cfg.Keyspace + inserts + updates) * blob
	}
	return size/uint64(cfg.Shards)*2 + 8<<20
}

// routeRank maps a preload rank to its shard in the encoding the
// simulation submits it with ([]byte specs route by byte hash).
func routeRank(svc *service.Shards, sim workload.ClientSim, rank uint64) int {
	key := workload.PreloadKey(rank)
	if spec := sim.SpecFor(key); spec != nil {
		return svc.RouteB(spec.AppendKey(nil, key))
	}
	return svc.Route(key)
}

// preloadShards inserts the keyspace directly into the shard tables
// (bypassing the frontend: preload is setup, not workload).
func preloadShards(svc *service.Shards, sim workload.ClientSim, keyspace uint64) error {
	var kbuf, vbuf []byte
	for i := uint64(0); i < keyspace; i++ {
		k := workload.PreloadKey(i)
		if spec := sim.SpecFor(k); spec != nil {
			kbuf = spec.AppendKey(kbuf[:0], k)
			vbuf = spec.AppendValue(vbuf[:0], k, 0)
			if err := svc.Table(svc.RouteB(kbuf)).InsertB(kbuf, vbuf); err != nil {
				return fmt.Errorf("bench: preload key %d: %w", i, err)
			}
		} else {
			if err := svc.Table(svc.Route(k)).Insert(k, i); err != nil {
				return fmt.Errorf("bench: preload key %d: %w", i, err)
			}
		}
	}
	return nil
}

// svcClient is one simulated client: a pipelined request window over the
// frontend with per-slot reusable requests and encode buffers.
type svcClient struct {
	fe     *service.Frontend
	stream *workload.SimStream
	sim    workload.ClientSim
	slots  []*svcSlot
	next   int // round-robin slot cursor

	hist       Hist
	counts     Counts
	reconnects int64
	updateSalt uint64
}

type svcSlot struct {
	req      service.Request
	kbuf     []byte
	start    time.Time
	inflight bool
	kind     workload.OpKind
}

func newSvcClient(fe *service.Frontend, stream *workload.SimStream, sim workload.ClientSim, window int) *svcClient {
	c := &svcClient{fe: fe, stream: stream, sim: sim, slots: make([]*svcSlot, window)}
	for i := range c.slots {
		c.slots[i] = &svcSlot{}
	}
	return c
}

// run drives ops operations through the pipeline, keeping up to
// len(slots) outstanding, and drains the window at session boundaries and
// at the end of the phase.
func (c *svcClient) run(ops int64, measured bool, stopped *atomic.Bool) error {
	for i := int64(0); i < ops; i++ {
		if stopped.Load() {
			c.drain(measured) // complete what is in flight before stopping
			return errStopped
		}
		sop := c.stream.Next()
		if sop.NewSession {
			if err := c.drain(measured); err != nil {
				return err
			}
			c.reconnects++
		}
		slot := c.slots[c.next]
		c.next = (c.next + 1) % len(c.slots)
		if slot.inflight {
			if err := c.complete(slot, measured); err != nil {
				return err
			}
		}
		c.submit(slot, sop.Op, measured)
	}
	return c.drain(measured)
}

// drain completes every in-flight request in the window.
func (c *svcClient) drain(measured bool) error {
	var firstErr error
	for _, s := range c.slots {
		if s.inflight {
			if err := c.complete(s, measured); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// submit encodes op into slot's request and submits it.
func (c *svcClient) submit(slot *svcSlot, op workload.Op, measured bool) {
	r := &slot.req
	slot.kind = op.Kind
	spec := c.sim.SpecFor(op.Key)
	if spec != nil {
		slot.kbuf = spec.AppendKey(slot.kbuf[:0], op.Key)
		r.KeyB = slot.kbuf
	} else {
		r.KeyB = nil
		r.Key = op.Key
	}
	switch op.Kind {
	case workload.OpInsert:
		r.Op = service.OpInsert
		if spec != nil {
			r.ValueB = spec.AppendValue(r.ValueB[:0], op.Key, 0)
		} else {
			r.Value = op.Key ^ 0x9e3779b97f4a7c15
		}
	case workload.OpRead, workload.OpReadNeg:
		r.Op = service.OpGet
		if spec != nil {
			r.ValueB = r.ValueB[:0]
		}
	case workload.OpUpdate:
		r.Op = service.OpUpdate
		if spec != nil {
			c.updateSalt++
			r.ValueB = spec.AppendValue(r.ValueB[:0], op.Key, c.updateSalt)
		} else {
			r.Value = op.Key + 1
		}
	case workload.OpDelete:
		r.Op = service.OpDelete
	}
	if measured {
		slot.start = time.Now()
	}
	slot.inflight = true
	c.fe.Submit(r)
}

// complete waits for slot's request, records its latency and tallies its
// outcome.
func (c *svcClient) complete(slot *svcSlot, measured bool) error {
	res := slot.req.Wait()
	slot.inflight = false
	if measured {
		c.hist.Record(time.Since(slot.start).Nanoseconds())
	}
	ct := &c.counts
	switch slot.kind {
	case workload.OpInsert:
		switch {
		case res.Err == nil:
			ct.InsertOK++
		case errors.Is(res.Err, core.ErrKeyExists):
			ct.InsertDup++
		case errors.Is(res.Err, core.ErrSegmentOverflow):
			ct.InsertOverflow++
		case errors.Is(res.Err, core.ErrRecordTooLarge):
			ct.InsertTooLarge++
		default:
			return res.Err
		}
	case workload.OpRead:
		if res.Err != nil {
			return res.Err
		}
		if res.Found {
			ct.ReadHit++
		} else {
			ct.ReadMiss++
		}
	case workload.OpReadNeg:
		if res.Err != nil {
			return res.Err
		}
		if res.Found {
			ct.NegHit++
		} else {
			ct.NegMiss++
		}
	case workload.OpUpdate:
		if res.Err != nil {
			return res.Err
		}
		if res.Found {
			ct.UpdateOK++
		} else {
			ct.UpdateNF++
		}
	case workload.OpDelete:
		if res.Err != nil {
			return res.Err
		}
		if res.Found {
			ct.DeleteOK++
		} else {
			ct.DeleteNF++
		}
	}
	return nil
}

// runSvcPhase drives every client through its share of totalOps, mirroring
// runPhase's error propagation.
func runSvcPhase(clients []*svcClient, totalOps int64, measured bool) error {
	n := int64(len(clients))
	var (
		wg       sync.WaitGroup
		stopped  atomic.Bool
		firstErr atomic.Pointer[error]
	)
	for i, c := range clients {
		ops := totalOps / n
		if int64(i) < totalOps%n {
			ops++
		}
		wg.Add(1)
		go func(c *svcClient, ops int64) {
			defer wg.Done()
			if err := c.run(ops, measured, &stopped); err != nil && !errors.Is(err, errStopped) {
				e := err
				if firstErr.CompareAndSwap(nil, &e) {
					stopped.Store(true)
				}
			}
		}(c, ops)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return *e
	}
	return nil
}
