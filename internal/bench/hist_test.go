package bench

import (
	"testing"

	"dash/internal/obs"
)

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 63, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := obs.BucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("obs.BucketIndex(%d) = %d out of range", v, idx)
		}
		floor := obs.BucketFloor(idx)
		if floor > v {
			t.Errorf("obs.BucketFloor(%d) = %d > value %d", idx, floor, v)
		}
		// The floor must be within one sub-bucket (1/16) of the value.
		if v >= histSub && float64(v-floor) > float64(v)/histSub {
			t.Errorf("value %d floor %d off by more than 1/16", v, floor)
		}
		if idx > 0 && obs.BucketFloor(idx) <= obs.BucketFloor(idx-1) {
			t.Errorf("bucket floors not increasing at %d", idx)
		}
	}
}

func TestHistQuantilesAndMerge(t *testing.T) {
	var a, b Hist
	// 1000 observations: 0..999 split across two histograms.
	for v := int64(0); v < 1000; v++ {
		if v%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Total() != 1000 {
		t.Fatalf("merged total = %d, want 1000", a.Total())
	}
	if a.Max() != 999 {
		t.Fatalf("merged max = %d, want 999", a.Max())
	}
	if m := a.Mean(); m < 499 || m > 500 {
		t.Fatalf("mean = %f, want ~499.5", m)
	}
	p50 := a.Quantile(0.5)
	if p50 < 400 || p50 > 520 {
		t.Fatalf("p50 = %d, want ~500 within bucket error", p50)
	}
	p99 := a.Quantile(0.99)
	if p99 < 900 || p99 > 999 {
		t.Fatalf("p99 = %d, want ~990 within bucket error", p99)
	}
	if q0, q1 := a.Quantile(0), a.Quantile(1); q0 != 0 || q1 < 930 {
		t.Fatalf("extreme quantiles = %d, %d", q0, q1)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Total() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}
