// Package bench is the concurrent benchmark harness for the Dash-EH engine:
// it preloads a table, drives N goroutines through a deterministic workload
// (warmup phase, then a timed measurement phase), and reports throughput,
// per-op latency quantiles, PM traffic per operation, and the table's final
// shape — the axes the paper evaluates on (§6, Fig. 6–9).
package bench

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dash/internal/core"
	"dash/internal/pmem"
	"dash/internal/workload"
)

// Config describes one benchmark cell.
type Config struct {
	// Threads is the number of worker goroutines.
	Threads int
	// Ops is the total number of measured operations, split across threads.
	Ops int64
	// WarmupOps is the total number of unmeasured warmup operations run
	// before measurement; they heat caches and the cost-model clocks and
	// (for mutating mixes) push the table past its cold-start shape.
	WarmupOps int64
	// Keyspace is the number of preloaded records.
	Keyspace uint64
	// Theta is the Zipfian skew (0 = uniform); see workload.Config.
	Theta float64
	// Mix is the operation mix.
	Mix workload.Mix
	// Seed makes the run reproducible.
	Seed uint64
	// PoolSize overrides the PM pool size; 0 sizes it from Keyspace and the
	// mix's expected insert volume.
	PoolSize uint64
	// Model, when non-nil, is installed after preload so the measured phase
	// pays simulated Optane latencies and bandwidth limits. Preload runs
	// uncharged: it is setup, not workload.
	Model *pmem.CostModel
	// MeasureRecovery, when true, exercises both restart paths after the
	// measured phase: the crash path (image snapshotted while the table is
	// open, so Open must reconcile and recovery completes lazily) and the
	// clean-shutdown fast path (image snapshotted after Close persisted the
	// clean marker). It fills the Result's Recovery*NS fields — crucially
	// splitting time-to-first-op (RecoveryOpenNS) from
	// time-to-fully-recovered (RecoveryFullNS). The reopens run after every
	// measured metric is taken, on unmodeled pools, so they perturb nothing
	// and report raw engine time.
	MeasureRecovery bool
	// OnTable, when non-nil, is called with the live table right after it is
	// created, before preload — the hook dashbench uses to point its debug
	// endpoint (obs.Serve) at the cell currently running.
	OnTable func(*core.Table)
}

// Counts tallies operation outcomes across warmup + measurement. They let
// callers audit that no operation was lost: the final table count must equal
// Preloaded + InsertOK − DeleteOK exactly.
type Counts struct {
	Preloaded uint64
	InsertOK  int64 // successful fresh inserts
	InsertDup int64 // inserts rejected with ErrKeyExists (should be 0)
	// InsertOverflow counts inserts rejected with ErrSegmentOverflow (the
	// pathological one-sided split). They add no record, so the audit
	// formula ignores them — but they are counted and reported per cell
	// rather than aborting the run, so a cell that sheds load under a
	// skewed keyspace is visible instead of silently dropped.
	InsertOverflow int64
	// InsertTooLarge counts inserts rejected with ErrRecordTooLarge
	// (oversized key/value for the record log). Like overflows they add no
	// record and are reported rather than aborting the cell.
	InsertTooLarge int64
	ReadHit        int64
	ReadMiss       int64 // positive-read misses (deleted by a delete-bearing mix)
	NegHit         int64 // negative reads that found a key (should be 0)
	NegMiss        int64
	UpdateOK       int64
	UpdateNF       int64
	DeleteOK       int64
	DeleteNF       int64
}

// Result is the outcome of one benchmark cell.
type Result struct {
	Mix      string
	Threads  int
	Ops      int64
	Elapsed  time.Duration
	MopsPerS float64

	// Latency over the measured phase, nanoseconds.
	Hist   *Hist
	P50NS  int64
	P90NS  int64
	P99NS  int64
	P999NS int64
	MaxNS  int64
	MeanNS float64

	// PM is the raw traffic delta over the measured phase; the *PerOp fields
	// convert it to bytes (lines × cacheline size) per measured operation.
	PM                pmem.StatsSnapshot
	ReadBytesPerOp    float64
	WriteBytesPerOp   float64
	FlushedBytesPerOp float64
	FencesPerOp       float64

	// Table is the shape after the run.
	Table core.TableStats

	// Recovery timings from re-opening the run's durable image
	// (Config.MeasureRecovery); all zero when measurement was off. The
	// crash-path reopen reports RecoveryOpenNS (core.Open wall: the
	// O(directory) work before the table serves traffic — time-to-first-op)
	// and RecoveryFullNS (Open through RecoverAll: every per-segment
	// first-touch recovery plus the record-log sweep — time-to-fully-
	// recovered); the phase fields break the crash recovery's work down.
	// RecoveryCleanOpenNS is the clean-shutdown fast path's Open wall.
	RecoveryOpenNS      int64
	RecoveryFullNS      int64
	RecoveryCleanOpenNS int64
	RecoveryTotalNS     int64
	RecoveryDirNS       int64
	RecoverySegmentsNS  int64
	RecoveryLogNS       int64
	RecoveryMirrorsNS   int64

	Counts Counts
}

// errStopped is the sentinel a worker returns when another worker failed.
var errStopped = errors.New("bench: stopped by peer failure")

// Run executes one benchmark cell: build pool and table, preload, warmup,
// measure. Every phase is deterministic in cfg.Seed except scheduling.
func Run(cfg Config) (*Result, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("bench: threads must be > 0")
	}
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("bench: ops must be > 0")
	}

	gen, err := workload.NewGenerator(workload.Config{
		Keyspace: cfg.Keyspace,
		Theta:    cfg.Theta,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	pool, err := pmem.NewPool(pmem.Options{Size: cfg.poolSize()})
	if err != nil {
		return nil, err
	}
	tb, err := core.Create(pool, core.Options{Seed: cfg.Seed | 1})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	if cfg.OnTable != nil {
		cfg.OnTable(tb)
	}

	if vs := cfg.Mix.Var; vs != nil {
		var kbuf, vbuf []byte
		for i := uint64(0); i < cfg.Keyspace; i++ {
			k := workload.PreloadKey(i)
			kbuf = vs.AppendKey(kbuf[:0], k)
			vbuf = vs.AppendValue(vbuf[:0], k, 0)
			if err := tb.InsertB(kbuf, vbuf); err != nil {
				return nil, fmt.Errorf("bench: preload key %d: %w", i, err)
			}
		}
	} else {
		for i := uint64(0); i < cfg.Keyspace; i++ {
			if err := tb.Insert(workload.PreloadKey(i), i); err != nil {
				return nil, fmt.Errorf("bench: preload key %d: %w", i, err)
			}
		}
	}

	// The cost model joins after preload, so only workload traffic is charged.
	if cfg.Model != nil {
		pool.SetModel(cfg.Model)
		defer pool.SetModel(nil)
	}

	workers := make([]*worker, cfg.Threads)
	for w := range workers {
		workers[w] = &worker{table: tb, stream: gen.Stream(w), varSpec: cfg.Mix.Var}
	}

	if cfg.WarmupOps > 0 {
		if err := runPhase(workers, cfg.WarmupOps, false); err != nil {
			return nil, err
		}
	}

	// The engine and harness allocate (almost) nothing per operation, so a
	// GC cycle inside the measured phase is pure simulator noise — its mark
	// assists read as multi-ms latency outliers on small-core machines.
	// Collect what the setup phases left behind, then hold GC off until the
	// measurements are taken.
	runtime.GC()
	gcPrev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPrev)

	before := pool.Stats()
	tbefore := tb.Stats()
	start := time.Now()
	if err := runPhase(workers, cfg.Ops, true); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	pm := pool.Stats().Sub(before)

	res := &Result{
		Mix:     cfg.Mix.Name,
		Threads: cfg.Threads,
		Ops:     cfg.Ops,
		Elapsed: elapsed,
		Hist:    &Hist{},
		PM:      pm,
		Table:   tb.Stats(),
	}
	// Re-window the cumulative directory-cache and split counters to the
	// measured phase, like every other per-op metric: preload and warmup
	// would otherwise dilute the reported rates.
	res.Table.DirCacheHits -= tbefore.DirCacheHits
	res.Table.DirCacheMisses -= tbefore.DirCacheMisses
	res.Table.DirCacheHitRate = 1
	if hm := res.Table.DirCacheHits + res.Table.DirCacheMisses; hm > 0 {
		res.Table.DirCacheHitRate = float64(res.Table.DirCacheHits) / float64(hm)
	}
	res.Table.SegFilterHits -= tbefore.SegFilterHits
	res.Table.SegFilterMisses -= tbefore.SegFilterMisses
	res.Table.SegFilterBypass -= tbefore.SegFilterBypass
	res.Table.SegFilterChecks -= tbefore.SegFilterChecks
	res.Table.SegFilterHeals -= tbefore.SegFilterHeals
	res.Table.SegFilterHitRate = 1
	if n := res.Table.SegFilterHits + res.Table.SegFilterMisses + res.Table.SegFilterBypass; n > 0 {
		res.Table.SegFilterHitRate = float64(res.Table.SegFilterHits) / float64(n)
	}
	res.Table.Splits -= tbefore.Splits
	res.Table.SplitStallNS -= tbefore.SplitStallNS
	res.Table.SplitAssists -= tbefore.SplitAssists
	res.Table.EpochRetired -= tbefore.EpochRetired
	res.Table.EpochReclaimed -= tbefore.EpochReclaimed
	res.Table.LogFreeHits -= tbefore.LogFreeHits
	res.Table.LogFreeMisses -= tbefore.LogFreeMisses
	res.Counts.Preloaded = cfg.Keyspace
	for _, w := range workers {
		res.Hist.Merge(&w.hist)
		res.Counts.add(&w.counts)
	}
	if res.Hist.Total() != uint64(cfg.Ops) {
		return nil, fmt.Errorf("bench: recorded %d latencies for %d ops", res.Hist.Total(), cfg.Ops)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.MopsPerS = float64(cfg.Ops) / sec / 1e6
	}
	res.P50NS = res.Hist.Quantile(0.50)
	res.P90NS = res.Hist.Quantile(0.90)
	res.P99NS = res.Hist.Quantile(0.99)
	res.P999NS = res.Hist.Quantile(0.999)
	res.MaxNS = res.Hist.Max()
	res.MeanNS = res.Hist.Mean()
	ops := float64(cfg.Ops)
	res.ReadBytesPerOp = float64(pm.ReadLines) * pmem.CachelineSize / ops
	res.WriteBytesPerOp = float64(pm.WriteLines) * pmem.CachelineSize / ops
	res.FlushedBytesPerOp = float64(pm.FlushedLines) * pmem.CachelineSize / ops
	res.FencesPerOp = float64(pm.Fences) / ops

	// Lost-operation audit: the table must account for exactly the
	// operations the workers report having applied. Inserts rejected with
	// ErrSegmentOverflow added no record and are audited via their own
	// counter, not by aborting the cell.
	if want := int64(cfg.Keyspace) + res.Counts.InsertOK - res.Counts.DeleteOK; tb.Count() != want {
		return nil, fmt.Errorf("bench: lost operations: table count %d, want %d", tb.Count(), want)
	}

	// Optional recovery measurement: reopen the run's durable image on both
	// restart paths. Crash path first — the image is snapshotted while the
	// table is still open, so its clean marker is unset and Open must
	// reconcile — splitting time-to-first-op (Open's O(directory) wall) from
	// time-to-fully-recovered (Open plus a synchronous RecoverAll: every
	// first-touch segment recovery and the record-log sweep). Then the table
	// is closed and the clean-shutdown image reopened through its fast path.
	if cfg.MeasureRecovery {
		want := tb.Count()
		crashImg := pool.Snapshot() // table still open: crash-path image
		tb.Close()
		cleanImg := pool.Snapshot() // clean marker persisted: fast-path image

		rp, err := pmem.OpenSnapshot(crashImg, pmem.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: recovery snapshot: %w", err)
		}
		start := time.Now()
		rt, err := core.Open(rp)
		if err != nil {
			return nil, fmt.Errorf("bench: crash reopen: %w", err)
		}
		res.RecoveryOpenNS = time.Since(start).Nanoseconds()
		rt.RecoverAll()
		res.RecoveryFullNS = time.Since(start).Nanoseconds()
		rs := rt.Stats()
		rt.Close()
		if rs.Count != want {
			return nil, fmt.Errorf("bench: crash recovery lost records: reopened count %d, want %d", rs.Count, want)
		}
		res.RecoveryTotalNS = rs.RecoveryTotalNS
		res.RecoveryDirNS = rs.RecoveryDirNS
		res.RecoverySegmentsNS = rs.RecoverySegmentsNS
		res.RecoveryLogNS = rs.RecoveryLogNS
		res.RecoveryMirrorsNS = rs.RecoveryMirrorsNS

		cp, err := pmem.OpenSnapshot(cleanImg, pmem.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: clean snapshot: %w", err)
		}
		start = time.Now()
		ct, err := core.Open(cp)
		if err != nil {
			return nil, fmt.Errorf("bench: clean reopen: %w", err)
		}
		res.RecoveryCleanOpenNS = time.Since(start).Nanoseconds()
		if got := ct.Count(); got != want {
			return nil, fmt.Errorf("bench: clean reopen lost records: count %d, want %d", got, want)
		}
		ct.Close()
	}
	return res, nil
}

// poolSize returns cfg.PoolSize or a size derived from the record volume the
// run can reach. 64 bytes per record covers the segment layout down to ~27%
// load factor (the post-split trough), plus directory blocks and slack.
// Variable-length mixes additionally budget each record's log blob at its
// worst-case capacity (updates copy-on-write, but superseded blobs recycle
// through the free list, so live log space stays ~one blob per record).
func (cfg Config) poolSize() uint64 {
	if cfg.PoolSize != 0 {
		return cfg.PoolSize
	}
	inserts := uint64((cfg.Ops + cfg.WarmupOps) * int64(cfg.Mix.Percent[workload.OpInsert]) / 100)
	size := (cfg.Keyspace+inserts)*64 + 8<<20
	if vs := cfg.Mix.Var; vs != nil {
		blob := uint64(16+vs.MaxKeyLen+vs.MaxValLen+15) &^ 15
		// Budget a worst-case blob per record plus per update (capacity
		// classes don't always line up for free-list reuse).
		updates := uint64((cfg.Ops + cfg.WarmupOps) * int64(cfg.Mix.Percent[workload.OpUpdate]) / 100)
		size += (cfg.Keyspace + inserts + updates) * blob
	}
	return size
}

type worker struct {
	table  *core.Table
	stream *workload.Stream
	hist   Hist
	counts Counts

	// Variable-length mode: non-nil varSpec switches apply to the []byte
	// API, encoding keys/values into the reusable buffers below so the
	// measured phase stays allocation-free.
	varSpec    *workload.VarSpec
	kbuf, vbuf []byte
	updateSalt uint64
}

// runPhase drives every worker through its share of totalOps operations,
// recording latency when measured is true. The first worker error (pool
// exhaustion, lost-update anomalies surfaced as errors) stops the phase.
func runPhase(workers []*worker, totalOps int64, measured bool) error {
	n := int64(len(workers))
	var (
		wg       sync.WaitGroup
		stopped  atomic.Bool
		firstErr atomic.Pointer[error]
	)
	for i, w := range workers {
		ops := totalOps / n
		if int64(i) < totalOps%n {
			ops++
		}
		wg.Add(1)
		go func(w *worker, ops int64) {
			defer wg.Done()
			if err := w.run(ops, measured, &stopped); err != nil && !errors.Is(err, errStopped) {
				e := err
				if firstErr.CompareAndSwap(nil, &e) {
					stopped.Store(true)
				}
			}
		}(w, ops)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return *e
	}
	return nil
}

func (w *worker) run(ops int64, measured bool, stopped *atomic.Bool) error {
	for i := int64(0); i < ops; i++ {
		if stopped.Load() {
			return errStopped
		}
		op := w.stream.Next()
		var start time.Time
		if measured {
			start = time.Now()
		}
		if err := w.apply(op); err != nil {
			return err
		}
		if measured {
			w.hist.Record(time.Since(start).Nanoseconds())
		}
	}
	return nil
}

func (w *worker) apply(op workload.Op) error {
	if w.varSpec != nil {
		return w.applyVar(op)
	}
	c := &w.counts
	switch op.Kind {
	case workload.OpInsert:
		switch err := w.table.Insert(op.Key, op.Key^0x9e3779b97f4a7c15); {
		case err == nil:
			c.InsertOK++
		case errors.Is(err, core.ErrKeyExists):
			c.InsertDup++
		case errors.Is(err, core.ErrSegmentOverflow):
			c.InsertOverflow++
		default:
			return err
		}
	case workload.OpRead:
		if _, ok := w.table.Get(op.Key); ok {
			c.ReadHit++
		} else {
			c.ReadMiss++
		}
	case workload.OpReadNeg:
		if _, ok := w.table.Get(op.Key); ok {
			c.NegHit++
		} else {
			c.NegMiss++
		}
	case workload.OpUpdate:
		ok, err := w.table.Update(op.Key, op.Key+1)
		if err != nil {
			return err
		}
		if ok {
			c.UpdateOK++
		} else {
			c.UpdateNF++
		}
	case workload.OpDelete:
		if w.table.Delete(op.Key) {
			c.DeleteOK++
		} else {
			c.DeleteNF++
		}
	default:
		return fmt.Errorf("bench: unknown op kind %v", op.Kind)
	}
	return nil
}

// applyVar drives one operation through the variable-length []byte API,
// encoding the abstract key deterministically via the mix's VarSpec.
func (w *worker) applyVar(op workload.Op) error {
	c := &w.counts
	vs := w.varSpec
	w.kbuf = vs.AppendKey(w.kbuf[:0], op.Key)
	switch op.Kind {
	case workload.OpInsert:
		w.vbuf = vs.AppendValue(w.vbuf[:0], op.Key, 0)
		switch err := w.table.InsertB(w.kbuf, w.vbuf); {
		case err == nil:
			c.InsertOK++
		case errors.Is(err, core.ErrKeyExists):
			c.InsertDup++
		case errors.Is(err, core.ErrSegmentOverflow):
			c.InsertOverflow++
		case errors.Is(err, core.ErrRecordTooLarge):
			c.InsertTooLarge++
		default:
			return err
		}
	case workload.OpRead:
		v, ok := w.table.GetBAppend(w.vbuf[:0], w.kbuf)
		w.vbuf = v[:0]
		if ok {
			c.ReadHit++
		} else {
			c.ReadMiss++
		}
	case workload.OpReadNeg:
		v, ok := w.table.GetBAppend(w.vbuf[:0], w.kbuf)
		w.vbuf = v[:0]
		if ok {
			c.NegHit++
		} else {
			c.NegMiss++
		}
	case workload.OpUpdate:
		// A fresh salt per update changes the value's content and usually
		// its length, exercising the copy-on-write path.
		w.updateSalt++
		w.vbuf = vs.AppendValue(w.vbuf[:0], op.Key, w.updateSalt)
		ok, err := w.table.UpdateB(w.kbuf, w.vbuf)
		if err != nil {
			return err
		}
		if ok {
			c.UpdateOK++
		} else {
			c.UpdateNF++
		}
	case workload.OpDelete:
		if w.table.DeleteB(w.kbuf) {
			c.DeleteOK++
		} else {
			c.DeleteNF++
		}
	default:
		return fmt.Errorf("bench: unknown op kind %v", op.Kind)
	}
	return nil
}

func (c *Counts) add(o *Counts) {
	c.InsertOK += o.InsertOK
	c.InsertDup += o.InsertDup
	c.InsertOverflow += o.InsertOverflow
	c.InsertTooLarge += o.InsertTooLarge
	c.ReadHit += o.ReadHit
	c.ReadMiss += o.ReadMiss
	c.NegHit += o.NegHit
	c.NegMiss += o.NegMiss
	c.UpdateOK += o.UpdateOK
	c.UpdateNF += o.UpdateNF
	c.DeleteOK += o.DeleteOK
	c.DeleteNF += o.DeleteNF
}
