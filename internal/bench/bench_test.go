package bench

import (
	"testing"

	"dash/internal/workload"
)

func mixFor(t *testing.T, name string) workload.Mix {
	t.Helper()
	m, ok := workload.MixByName(name)
	if !ok {
		t.Fatalf("mix %q not registered", name)
	}
	return m
}

// TestSmokeBalanced is the harness's own smoke benchmark: 2 goroutines, ~10k
// ops of the 50/50 insert/read mix, asserting throughput is nonzero, the
// latency histogram accounts for every measured op, and the table lost no
// operation versus the workers' tallies.
func TestSmokeBalanced(t *testing.T) {
	res, err := Run(Config{
		Threads:   2,
		Ops:       10_000,
		WarmupOps: 1_000,
		Keyspace:  4_096,
		Mix:       mixFor(t, "balanced"),
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MopsPerS <= 0 {
		t.Errorf("throughput = %f Mops/s, want > 0", res.MopsPerS)
	}
	if res.Hist.Total() != 10_000 {
		t.Errorf("histogram holds %d observations, want 10000", res.Hist.Total())
	}
	c := res.Counts
	if got := c.InsertOK + c.ReadHit + c.ReadMiss; got != 11_000 {
		t.Errorf("tallied %d insert/read outcomes, want 11000 (warmup+measured)", got)
	}
	if c.InsertDup != 0 {
		t.Errorf("fresh-key inserts reported %d duplicates", c.InsertDup)
	}
	if c.ReadMiss != 0 {
		t.Errorf("positive reads missed %d times with no deletes in the mix", c.ReadMiss)
	}
	// Run already audits table count == preload + inserts − deletes; double
	// check the invariant from the outside.
	if want := int64(res.Counts.Preloaded) + c.InsertOK - c.DeleteOK; res.Table.Count != want {
		t.Errorf("table count %d, want %d", res.Table.Count, want)
	}
	if res.Table.LoadFactor <= 0 || res.Table.LoadFactor > 1 {
		t.Errorf("load factor %f out of range", res.Table.LoadFactor)
	}
	if res.PM.ReadLines == 0 || res.PM.WriteLines == 0 {
		t.Errorf("measured phase reported no PM traffic: %+v", res.PM)
	}
	if res.P50NS < 0 || res.P99NS < res.P50NS || res.MaxNS < res.P99NS {
		t.Errorf("latency quantiles inconsistent: p50=%d p99=%d max=%d", res.P50NS, res.P99NS, res.MaxNS)
	}
}

// TestSmokeDeleteHeavy exercises every op kind (inserts, reads, deletes) plus
// the lost-op audit when records leave the table.
func TestSmokeDeleteHeavy(t *testing.T) {
	res, err := Run(Config{
		Threads:  2,
		Ops:      8_000,
		Keyspace: 2_048,
		Theta:    0.9,
		Mix:      mixFor(t, "delete-heavy"),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.DeleteOK == 0 {
		t.Error("delete-heavy mix deleted nothing")
	}
	if res.Hist.Total() != 8_000 {
		t.Errorf("histogram holds %d observations, want 8000", res.Hist.Total())
	}
}

// TestSmokeNegativeReads checks the negative namespace really never hits.
func TestSmokeNegativeReads(t *testing.T) {
	res, err := Run(Config{
		Threads:  2,
		Ops:      4_000,
		Keyspace: 1_024,
		Mix:      mixFor(t, "read-neg"),
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.NegHit != 0 {
		t.Errorf("%d negative reads found a key", res.Counts.NegHit)
	}
	if res.Counts.NegMiss != 4_000 {
		t.Errorf("negative misses = %d, want 4000", res.Counts.NegMiss)
	}
}

// TestRunRejectsBadConfig covers the validation edges.
func TestRunRejectsBadConfig(t *testing.T) {
	mix := mixFor(t, "read")
	if _, err := Run(Config{Threads: 0, Ops: 10, Keyspace: 16, Mix: mix}); err == nil {
		t.Error("threads=0 accepted")
	}
	if _, err := Run(Config{Threads: 1, Ops: 0, Keyspace: 16, Mix: mix}); err == nil {
		t.Error("ops=0 accepted")
	}
}

// TestSmokeVarMixes drives the variable-length mixes end to end through
// the []byte API: preload via InsertB, reads that must all hit, updates
// that copy-on-write, and the record-log space accounting surfaced in the
// result.
func TestSmokeVarMixes(t *testing.T) {
	res, err := Run(Config{
		Threads:   2,
		Ops:       6_000,
		WarmupOps: 600,
		Keyspace:  2_048,
		Mix:       mixFor(t, "var-ycsb-b"),
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	if c.ReadMiss != 0 {
		t.Errorf("positive var reads missed %d times", c.ReadMiss)
	}
	if c.UpdateOK == 0 {
		t.Error("var-ycsb-b performed no updates")
	}
	if c.UpdateNF != 0 {
		t.Errorf("%d var updates reported not-found", c.UpdateNF)
	}
	if res.Table.LogLiveBytes == 0 || res.Table.LogChunkBytes == 0 {
		t.Errorf("var cell reported no record-log space: %+v", res.Table)
	}
	if res.Table.LogLiveBlobs < int64(res.Counts.Preloaded) {
		t.Errorf("live blobs %d < preloaded %d", res.Table.LogLiveBlobs, res.Counts.Preloaded)
	}

	ins, err := Run(Config{
		Threads:   2,
		Ops:       4_000,
		WarmupOps: 400,
		Keyspace:  1_024,
		Mix:       mixFor(t, "var-insert"),
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Counts.InsertOK != 4_400 {
		t.Errorf("var inserts ok = %d, want 4400", ins.Counts.InsertOK)
	}
	if ins.Counts.InsertDup != 0 || ins.Counts.InsertTooLarge != 0 {
		t.Errorf("var inserts: dup=%d too_large=%d", ins.Counts.InsertDup, ins.Counts.InsertTooLarge)
	}
}
