package bench

import "dash/internal/obs"

// Hist is a log-bucketed latency histogram: 16 linear sub-buckets per power
// of two, so any recorded value lands in a bucket whose floor is within 1/16
// (6.25%) of it — plenty for p50/p99 reporting while the whole histogram is
// one fixed 8KiB array. Each worker goroutine records into its own Hist with
// no synchronization, and the harness merges them after the run.
//
// The bucket layout (obs.BucketIndex/obs.BucketFloor) is shared with the
// engine-side obs.Histogram, so harness-measured and engine-measured
// distributions are directly comparable; this type exists because per-worker
// unsynchronized recording is cheaper than the concurrent one.
const (
	histBuckets = obs.NumBuckets
	histSub     = obs.SubPerOctave
)

// Hist accumulates nanosecond durations. Not safe for concurrent use; use
// one per goroutine and Merge.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	sum    uint64
	max    int64
}

// Record adds one observation of v nanoseconds.
func (h *Hist) Record(v int64) {
	h.counts[obs.BucketIndex(v)]++
	h.total++
	if v > 0 {
		h.sum += uint64(v)
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Total returns the number of recorded observations.
func (h *Hist) Total() uint64 { return h.total }

// Max returns the largest recorded value.
func (h *Hist) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded values (exact, not
// bucketed), or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the bucket floor of the q'th quantile (q in [0, 1]), a
// conservative estimate within 6.25% below the true value. Returns 0 when
// the histogram is empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	acc := uint64(0)
	for i, c := range h.counts {
		acc += c
		if acc > rank {
			return obs.BucketFloor(i)
		}
	}
	return h.max
}
