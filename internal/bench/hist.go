package bench

import "math/bits"

// Hist is a log-bucketed latency histogram: 16 linear sub-buckets per power
// of two, so any recorded value lands in a bucket whose floor is within 1/16
// (6.25%) of it — plenty for p50/p99 reporting while the whole histogram is
// one fixed 8KiB array. Each worker goroutine records into its own Hist with
// no synchronization, and the harness merges them after the run.
const (
	histSub     = 16 // linear sub-buckets per octave
	histBuckets = 1024
)

// Hist accumulates nanosecond durations. Not safe for concurrent use; use
// one per goroutine and Merge.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	sum    uint64
	max    int64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // >= 4
	return histSub*(e-3) + int(v>>(uint(e)-4)) - histSub
}

// bucketFloor is the smallest value mapping to bucket idx.
func bucketFloor(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	e := idx/histSub + 3
	off := idx % histSub
	return int64(histSub+off) << (uint(e) - 4)
}

// Record adds one observation of v nanoseconds.
func (h *Hist) Record(v int64) {
	h.counts[bucketIndex(v)]++
	h.total++
	if v > 0 {
		h.sum += uint64(v)
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Total returns the number of recorded observations.
func (h *Hist) Total() uint64 { return h.total }

// Max returns the largest recorded value.
func (h *Hist) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded values (exact, not
// bucketed), or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns the bucket floor of the q'th quantile (q in [0, 1]), a
// conservative estimate within 6.25% below the true value. Returns 0 when
// the histogram is empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total-1))
	acc := uint64(0)
	for i, c := range h.counts {
		acc += c
		if acc > rank {
			return bucketFloor(i)
		}
	}
	return h.max
}
