// Package epoch implements epoch-based memory reclamation (EBR), the
// mechanism Dash uses so that optimistic, lock-free readers never follow a
// pointer into a deallocated segment (§4.4): a segment retired by a merge or
// a directory replacement is only handed back to the allocator once every
// reader that could have observed it has exited its critical section.
//
// The scheme is the classic three-epoch design: a global epoch advances only
// when every active guard has observed the current one, so anything retired
// in epoch e is unreachable by the time the global epoch reaches e+2.
package epoch

import (
	"sync"
	"sync/atomic"

	"dash/internal/obs"
)

// MaxGuards bounds the number of concurrently active guards.
const MaxGuards = 512

const (
	activeBit = uint64(1) << 63
	epochMask = activeBit - 1
)

// Manager coordinates guards and retired-object reclamation.
type Manager struct {
	global atomic.Uint64

	slots [MaxGuards]paddedSlot

	// Lock-free free list of slot indexes, so acquiring a guard costs two
	// atomics instead of a table scan.
	freeHead atomic.Uint64 // (index+1) | generation<<32; 0 = empty
	freeNext [MaxGuards]atomic.Uint32

	mu      sync.Mutex
	retired [3][]retiredItem // indexed by epoch % 3
	pending atomic.Uint64    // total retired not yet reclaimed

	// AdvanceEvery controls how many retires trigger an advance+collect
	// attempt. Defaults to 64.
	AdvanceEvery uint64

	// Optional observability, set before first use; all obs methods are
	// nil-safe, so an uninstrumented Manager pays one predicted branch.
	// Retired counts objects handed to Retire, Reclaimed those actually
	// freed, ReclaimLagNS the retire→free delay of each — the reclamation
	// lag a stalled reader inflates. Trace receives an EvEpochAdvance per
	// successful advance.
	Retired      *obs.Counter
	Reclaimed    *obs.Counter
	ReclaimLagNS *obs.Histogram
	Trace        *obs.Flight
}

type paddedSlot struct {
	v atomic.Uint64 // activeBit | epoch
	_ [56]byte
}

type retiredItem struct {
	free func()
	at   int64 // obs.Now() when retired, for reclamation-lag metering
}

// NewManager returns a ready Manager.
func NewManager() *Manager {
	m := &Manager{AdvanceEvery: 64}
	m.global.Store(1)
	// Free list initially holds every slot. Encode head as index+1 with a
	// generation counter in the high bits to defeat ABA.
	for i := 0; i < MaxGuards-1; i++ {
		m.freeNext[i].Store(uint32(i + 2))
	}
	m.freeNext[MaxGuards-1].Store(0)
	m.freeHead.Store(1)
	return m
}

// Guard marks a reader-side critical section.
type Guard struct {
	m    *Manager
	slot int
}

// Enter opens a critical section and returns its guard. It spins briefly if
// all MaxGuards slots are busy (which would take hundreds of concurrent
// operations in flight).
func (m *Manager) Enter() Guard {
	idx := m.popSlot()
	e := m.global.Load()
	m.slots[idx].v.Store(activeBit | e)
	return Guard{m: m, slot: idx}
}

// Exit closes the critical section.
func (g Guard) Exit() {
	g.m.slots[g.slot].v.Store(0)
	g.m.pushSlot(g.slot)
}

func (m *Manager) popSlot() int {
	for {
		head := m.freeHead.Load()
		idx := uint32(head)
		if idx == 0 {
			// All slots busy: extremely unlikely; cooperate and retry.
			continue
		}
		next := m.freeNext[idx-1].Load()
		gen := (head >> 32) + 1
		if m.freeHead.CompareAndSwap(head, uint64(next)|gen<<32) {
			return int(idx - 1)
		}
	}
}

func (m *Manager) pushSlot(i int) {
	for {
		head := m.freeHead.Load()
		m.freeNext[i].Store(uint32(head))
		gen := (head >> 32) + 1
		if m.freeHead.CompareAndSwap(head, uint64(uint32(i+1))|gen<<32) {
			return
		}
	}
}

// Retire schedules free to run once no active guard can still reach the
// retired object.
func (m *Manager) Retire(free func()) {
	e := m.global.Load()
	m.mu.Lock()
	m.retired[e%3] = append(m.retired[e%3], retiredItem{free: free, at: obs.Now()})
	m.mu.Unlock()
	m.Retired.Inc()
	if m.pending.Add(1)%m.maxPending() == 0 {
		m.TryAdvance()
	}
}

func (m *Manager) maxPending() uint64 {
	if m.AdvanceEvery == 0 {
		return 64
	}
	return m.AdvanceEvery
}

// TryAdvance advances the global epoch if every active guard has observed
// it, then reclaims everything retired two epochs ago. Returns how many
// objects were freed.
func (m *Manager) TryAdvance() int {
	e := m.global.Load()
	for i := range m.slots {
		v := m.slots[i].v.Load()
		if v&activeBit != 0 && v&epochMask != e {
			return 0 // a straggler still runs in an older epoch
		}
	}
	if !m.global.CompareAndSwap(e, e+1) {
		return 0 // someone else advanced; they will collect
	}
	// Everything retired in epoch e-1 is now two epochs old: no active
	// guard can hold a reference.
	m.mu.Lock()
	bucket := (e + 1) % 3 // == (e-2) % 3
	items := m.retired[bucket]
	m.retired[bucket] = nil
	m.mu.Unlock()
	now := obs.Now()
	for _, it := range items {
		it.free()
		m.ReclaimLagNS.Record(now - it.at)
	}
	m.Reclaimed.Add(uint64(len(items)))
	m.Trace.Record(obs.EvEpochAdvance, obs.TagNone, e+1, uint64(len(items)))
	m.pending.Add(^uint64(len(items) - 1))
	return len(items)
}

// Drain force-reclaims everything by advancing until the retire lists are
// empty. It must only be called when no guards are active (e.g. shutdown).
func (m *Manager) Drain() int {
	total := 0
	for i := 0; i < 4; i++ {
		total += m.TryAdvance()
	}
	return total
}

// Pending returns how many retired objects await reclamation.
func (m *Manager) Pending() uint64 { return m.pending.Load() }
