package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRetireNotFreedUnderActiveGuard: an object retired while a guard is
// active must not be reclaimed until that guard exits — the property that
// makes lock-free readers safe.
func TestRetireNotFreedUnderActiveGuard(t *testing.T) {
	m := NewManager()
	var freed atomic.Bool
	g := m.Enter()
	m.Retire(func() { freed.Store(true) })
	for i := 0; i < 10; i++ {
		m.TryAdvance()
	}
	if freed.Load() {
		t.Fatal("object freed while a guard from its epoch was active")
	}
	g.Exit()
	m.Drain()
	if !freed.Load() {
		t.Fatal("object never freed after guard exit and drain")
	}
}

func TestDrainReclaimsEverything(t *testing.T) {
	m := NewManager()
	var freed atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		m.Retire(func() { freed.Add(1) })
	}
	m.Drain()
	if freed.Load() != n {
		t.Fatalf("freed %d of %d after drain", freed.Load(), n)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after drain", m.Pending())
	}
}

// TestGuardsConcurrent hammers Enter/Exit/Retire from many goroutines under
// -race: the free-list of guard slots and the retire lists must be sound,
// and every retired object must be freed exactly once.
func TestGuardsConcurrent(t *testing.T) {
	m := NewManager()
	m.AdvanceEvery = 8
	const workers = 16
	const iters = 2000
	var freed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g := m.Enter()
				if i%4 == 0 {
					m.Retire(func() { freed.Add(1) })
				}
				g.Exit()
			}
		}()
	}
	wg.Wait()
	m.Drain()
	want := int64(workers * iters / 4)
	if freed.Load() != want {
		t.Fatalf("freed %d, want %d", freed.Load(), want)
	}
}

// TestNestedGuards: multiple guards may be live in one goroutine (the slot
// free-list must hand out distinct slots).
func TestNestedGuards(t *testing.T) {
	m := NewManager()
	g1 := m.Enter()
	g2 := m.Enter()
	if g1.slot == g2.slot {
		t.Fatalf("two live guards share slot %d", g1.slot)
	}
	g2.Exit()
	g1.Exit()
}
