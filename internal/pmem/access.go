package pmem

import "sync/atomic"

// The typed accessors below are the instrumented data path: they perform the
// memory operation, record PM traffic, mark crash-tracking dirt and charge
// the cost model. Data-structure code should touch the arena only through
// them (or through Bytes paired with explicit TouchRead/TouchWrite) so that
// the experiment counters mean something.
//
// Write accessors perform the store BEFORE accounting: marking a line dirty
// ahead of the store would open a window where a concurrent Flush of the
// same line copies the old bytes, clears the dirty flag, and the store then
// lands unmarked — Crash would silently keep an unflushed store. With the
// store-first order a concurrent flush can at worst persist the new value
// early, which is exactly what real hardware does when a neighboring flush
// catches a fresh store to the same line.

func (p *Pool) onRead(a Addr, n uint64) {
	lines := lineSpan(a, n)
	p.stats.addRead(lines)
	if p.model != nil {
		p.model.chargeRead(lines)
	}
}

func (p *Pool) onWrite(a Addr, n uint64) {
	lines := lineSpan(a, n)
	p.stats.addWrite(lines)
	if p.model != nil {
		p.model.chargeWrite(lines)
	}
	p.markDirty(a, n)
}

func lineSpan(a Addr, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	first := uint64(a) / CachelineSize
	last := (uint64(a) + n - 1) / CachelineSize
	return last - first + 1
}

// TouchRead accounts a PM read of [a, a+n) performed through a raw Bytes
// view (e.g. a bulk key comparison).
func (p *Pool) TouchRead(a Addr, n uint64) { p.check(a, n); p.onRead(a, n) }

// TouchWrite accounts a PM write of [a, a+n) performed through a raw Bytes
// view. It also marks the lines dirty for crash tracking; call it after the
// stores, not before (see the ordering note above).
func (p *Pool) TouchWrite(a Addr, n uint64) { p.check(a, n); p.onWrite(a, n) }

// ReadU64 loads a little-endian-independent native uint64 at a (8-aligned).
func (p *Pool) ReadU64(a Addr) uint64 {
	p.check(a, 8)
	p.onRead(a, 8)
	return *(*uint64)(p.base(a))
}

// WriteU64 stores v at a (8-aligned). On x86 an aligned 8-byte store is
// atomic with respect to tearing, which several Dash commit protocols rely
// on; the simulation preserves that by using a single native store.
func (p *Pool) WriteU64(a Addr, v uint64) {
	p.check(a, 8)
	*(*uint64)(p.base(a)) = v
	p.onWrite(a, 8)
}

// ReadU32 loads a uint32 at a (4-aligned).
func (p *Pool) ReadU32(a Addr) uint32 {
	p.check(a, 4)
	p.onRead(a, 4)
	return *(*uint32)(p.base(a))
}

// WriteU32 stores v at a (4-aligned).
func (p *Pool) WriteU32(a Addr, v uint32) {
	p.check(a, 4)
	*(*uint32)(p.base(a)) = v
	p.onWrite(a, 4)
}

// ReadU8 loads one byte at a.
func (p *Pool) ReadU8(a Addr) uint8 {
	p.check(a, 1)
	p.onRead(a, 1)
	return p.data[a]
}

// WriteU8 stores one byte at a.
func (p *Pool) WriteU8(a Addr, v uint8) {
	p.check(a, 1)
	p.data[a] = v
	p.onWrite(a, 1)
}

// Atomic operations. These are both synchronization (for the simulated
// threads) and 8-byte/4-byte atomic PM stores (for the simulated hardware).

// LoadU64 atomically loads the uint64 at a.
func (p *Pool) LoadU64(a Addr) uint64 {
	p.check(a, 8)
	p.onRead(a, 8)
	return atomic.LoadUint64((*uint64)(p.base(a)))
}

// StoreU64 atomically stores v at a.
func (p *Pool) StoreU64(a Addr, v uint64) {
	p.check(a, 8)
	atomic.StoreUint64((*uint64)(p.base(a)), v)
	p.onWrite(a, 8)
}

// CompareAndSwapU64 executes a CAS on the uint64 at a.
func (p *Pool) CompareAndSwapU64(a Addr, old, new uint64) bool {
	p.check(a, 8)
	ok := atomic.CompareAndSwapUint64((*uint64)(p.base(a)), old, new)
	p.onWrite(a, 8)
	return ok
}

// AddU64 atomically adds delta to the uint64 at a and returns the new value.
func (p *Pool) AddU64(a Addr, delta uint64) uint64 {
	p.check(a, 8)
	v := atomic.AddUint64((*uint64)(p.base(a)), delta)
	p.onWrite(a, 8)
	return v
}

// LoadU32 atomically loads the uint32 at a.
func (p *Pool) LoadU32(a Addr) uint32 {
	p.check(a, 4)
	p.onRead(a, 4)
	return atomic.LoadUint32((*uint32)(p.base(a)))
}

// StoreU32 atomically stores v at a.
func (p *Pool) StoreU32(a Addr, v uint32) {
	p.check(a, 4)
	atomic.StoreUint32((*uint32)(p.base(a)), v)
	p.onWrite(a, 4)
}

// CompareAndSwapU32 executes a CAS on the uint32 at a.
func (p *Pool) CompareAndSwapU32(a Addr, old, new uint32) bool {
	p.check(a, 4)
	ok := atomic.CompareAndSwapUint32((*uint32)(p.base(a)), old, new)
	p.onWrite(a, 4)
	return ok
}

// Copy copies n bytes from src to dst within the pool, accounting one read
// and one write.
func (p *Pool) Copy(dst, src Addr, n uint64) {
	p.check(dst, n)
	p.check(src, n)
	copy(p.data[dst:uint64(dst)+n], p.data[src:uint64(src)+n])
	p.onRead(src, n)
	p.onWrite(dst, n)
}

// WriteBytes copies b into the pool at a.
func (p *Pool) WriteBytes(a Addr, b []byte) {
	n := uint64(len(b))
	p.check(a, n)
	copy(p.data[a:uint64(a)+n], b)
	p.onWrite(a, n)
}

// ReadBytes copies n bytes at a out of the pool.
func (p *Pool) ReadBytes(a Addr, n uint64) []byte {
	p.check(a, n)
	p.onRead(a, n)
	out := make([]byte, n)
	copy(out, p.data[a:uint64(a)+n])
	return out
}

// Zero clears [a, a+n).
func (p *Pool) Zero(a Addr, n uint64) {
	p.check(a, n)
	b := p.data[a : uint64(a)+n]
	for i := range b {
		b[i] = 0
	}
	p.onWrite(a, n)
}
