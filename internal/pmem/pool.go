// Package pmem simulates byte-addressable persistent memory (Intel Optane
// DCPMM in AppDirect mode) for data structures that must reason about
// cacheline flushes, store fences and crash consistency.
//
// A Pool is one contiguous arena addressed by 64-bit offsets (Addr). Offsets
// play the role of the paper's fixed-mapping 8-byte persistent pointers: they
// are position independent, so an arena image reopened after a crash resolves
// every pointer without relocation.
//
// The pool models the persistence domain of real hardware: a store becomes
// durable only once its cacheline has been flushed (CLWB) and a fence has
// ordered the flush. With crash tracking enabled the pool keeps a shadow
// "media" image that receives data only on Flush; Crash discards everything
// that never reached media, exactly like power loss discards dirty CPU
// cachelines. An optional CostModel charges Optane-shaped latencies and a
// bandwidth penalty so that excessive PM traffic destroys multicore
// scalability the way it does on the real DIMMs.
//
// On top of the raw arena, VarLog (varlog.go) provides a crash-consistent
// bump-allocated log of variable-length key/value blobs — the record store
// data structures point fixed-size slots into.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"dash/internal/obs"
)

// CachelineSize is the unit of flushing and of crash-atomicity tracking.
const CachelineSize = 64

// MediaBlockSize is Optane DCPMM's internal 256-byte access granularity;
// the stats use it to report media-level traffic.
const MediaBlockSize = 256

// Addr is an offset into a Pool's arena. The zero Addr is the null pointer:
// offset 0 is reserved and never handed out.
type Addr uint64

// Null is the zero Addr, never a valid allocation.
const Null Addr = 0

// IsNull reports whether a is the null persistent pointer.
func (a Addr) IsNull() bool { return a == Null }

// Add returns a offset by n bytes.
func (a Addr) Add(n uint64) Addr { return a + Addr(n) }

// Pool is a simulated persistent-memory arena.
//
// All mutating accessors go through the pool so that persistence tracking and
// cost accounting observe every PM access. Concurrent use is safe in the same
// sense raw memory is: distinct words may be accessed concurrently, and the
// atomic accessors provide the usual synchronization. Crash tracking adds
// internal locking and is intended for (mostly) single-threaded crash tests.
type Pool struct {
	data  []byte   // the arena; base is 8-byte aligned
	words []uint64 // keeps the backing array alive and aligned

	size uint64

	stats Stats

	model *CostModel // nil when cost charging is disabled

	// Crash-tracking state; nil unless EnableCrashTracking was called.
	crash *crashTracker

	// flushHook, when non-nil, runs at the top of every Flush, before any
	// line reaches the media image — the persist boundary crash-injection
	// tests hook to simulate power loss at each point a real machine could
	// lose it. Installed via SetFlushHook; the hook may call Crash and panic
	// to unwind the interrupted operation.
	flushHook atomic.Pointer[func()]

	// Fence-batching window (BeginFenceBatch/EndFenceBatch): while depth is
	// non-zero, Fence elides the real fence and counts it instead, and the
	// batch owner issues one ordering fence at the window's end. elided
	// counts the fences elided in the current window.
	fenceBatchDepth  atomic.Int32
	fenceBatchElided atomic.Uint64
}

type crashTracker struct {
	mu    sync.Mutex
	media []byte              // durable image; receives lines on Flush
	dirty map[uint64]struct{} // cacheline indexes written since last flush
}

// Options configures a Pool.
type Options struct {
	// Size is the arena capacity in bytes. Rounded up to a cacheline.
	Size uint64
	// CostModel, when non-nil, charges simulated Optane latencies on every
	// tracked PM access. Leave nil for functional tests.
	CostModel *CostModel
	// TrackCrashes enables the shadow media image used by Crash/Recover
	// tests. It roughly doubles memory use and serializes writes, so it is
	// meant for crash-consistency tests, not benchmarks.
	TrackCrashes bool
}

// ErrTooSmall is returned when a pool would be too small to hold its root.
var ErrTooSmall = errors.New("pmem: pool size too small")

// NewPool creates an arena of the requested size. The first cacheline is
// reserved so that Addr 0 can serve as the null pointer.
func NewPool(opt Options) (*Pool, error) {
	if opt.Size < 4*CachelineSize {
		return nil, ErrTooSmall
	}
	size := (opt.Size + CachelineSize - 1) &^ (CachelineSize - 1)
	words := make([]uint64, size/8)
	p := &Pool{
		words: words,
		data:  unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size),
		size:  size,
		model: opt.CostModel,
	}
	if opt.TrackCrashes {
		p.crash = &crashTracker{
			media: make([]byte, size),
			dirty: make(map[uint64]struct{}),
		}
	}
	return p, nil
}

// Size returns the arena capacity in bytes.
func (p *Pool) Size() uint64 { return p.size }

// Stats returns a snapshot of the PM traffic counters. Safe to call while
// other goroutines access the pool; see StatsSnapshot for the (per-counter,
// not cross-counter) consistency it provides.
func (p *Pool) Stats() StatsSnapshot { return p.stats.snapshot() }

// ResetStats zeroes the PM traffic counters. Safe to call mid-run; see
// Stats.reset for what concurrent increments may observe.
func (p *Pool) ResetStats() { p.stats.reset() }

// RegisterMetrics exposes the pool's traffic counters on r under pmem.*
// names.
func (p *Pool) RegisterMetrics(r *obs.Registry) { p.stats.Register(r) }

// CostModel returns the active cost model, or nil.
func (p *Pool) Model() *CostModel { return p.model }

// SetModel installs (or removes, with nil) the cost model. Not safe to call
// concurrently with accesses.
func (p *Pool) SetModel(m *CostModel) { p.model = m }

func (p *Pool) check(a Addr, n uint64) {
	if uint64(a) < CachelineSize || uint64(a)+n > p.size {
		panic(fmt.Sprintf("pmem: access [%d,+%d) out of pool bounds [%d,%d)", a, n, CachelineSize, p.size))
	}
}

// Bytes returns a mutable view of [a, a+n). The caller is responsible for
// calling Flush to persist modifications; use the typed accessors when
// accounting matters.
func (p *Pool) Bytes(a Addr, n uint64) []byte {
	p.check(a, n)
	return p.data[a : uint64(a)+n : uint64(a)+n]
}

// base returns an unsafe pointer to offset a. a must be in bounds.
func (p *Pool) base(a Addr) unsafe.Pointer {
	return unsafe.Pointer(&p.data[a])
}

// markDirty records that the cachelines covering [a, a+n) hold unflushed
// stores (crash tracking only).
func (p *Pool) markDirty(a Addr, n uint64) {
	if p.crash == nil || n == 0 {
		return
	}
	first := uint64(a) / CachelineSize
	last := (uint64(a) + n - 1) / CachelineSize
	p.crash.mu.Lock()
	for l := first; l <= last; l++ {
		p.crash.dirty[l] = struct{}{}
	}
	p.crash.mu.Unlock()
}

// Flush simulates CLWB over the cachelines covering [a, a+n): the lines are
// copied to the durable media image (when crash tracking is on), counted,
// and charged by the cost model. On real hardware the flush only becomes
// ordered at the next Fence; the simulation persists eagerly, which is a
// strictly weaker adversary for ordering bugs *within* a line but identical
// at the granularity crash tests exercise (whole lines either survive or
// vanish).
func (p *Pool) Flush(a Addr, n uint64) {
	if n == 0 {
		return
	}
	if h := p.flushHook.Load(); h != nil {
		(*h)()
	}
	p.check(a, n)
	first := uint64(a) / CachelineSize
	last := (uint64(a) + n - 1) / CachelineSize
	lines := last - first + 1
	p.stats.addFlush(lines)
	if p.model != nil {
		p.model.chargeFlush(lines)
	}
	if p.crash != nil {
		p.crash.mu.Lock()
		for l := first; l <= last; l++ {
			off := l * CachelineSize
			p.copyLineToMedia(off)
			delete(p.crash.dirty, l)
		}
		p.crash.mu.Unlock()
	}
}

// copyLineToMedia copies one cacheline from the arena into the media image
// using atomic word loads: another goroutine may be storing words of the
// same line concurrently (e.g. a bucket lock CAS while a neighbor's record
// in the same line is flushed), and like real CLWB the copy must snapshot
// each word atomically rather than race on it. The caller holds crash.mu.
func (p *Pool) copyLineToMedia(off uint64) {
	for i := uint64(0); i < CachelineSize; i += 8 {
		v := atomic.LoadUint64((*uint64)(unsafe.Pointer(&p.data[off+i])))
		// media comes from make([]byte, n) with n a multiple of 64, so it is
		// 8-aligned; store native-endian to stay byte-identical to the arena.
		*(*uint64)(unsafe.Pointer(&p.crash.media[off+i])) = v
	}
}

// SetFlushHook installs (or, with nil, removes) a callback invoked at the
// start of every Flush, before any cacheline is copied to the media image.
// Crash-point fuzz tests use it to count persist boundaries and simulate
// power loss at the Kth one (typically by calling Crash and panicking out of
// the interrupted operation). The hook must not itself touch the pool
// through accounting accessors.
func (p *Pool) SetFlushHook(h func()) {
	if h == nil {
		p.flushHook.Store(nil)
		return
	}
	p.flushHook.Store(&h)
}

// Fence simulates SFENCE ordering of prior flushes. With the eager Flush
// model it only costs accounting. Inside a fence-batch window
// (BeginFenceBatch) the fence is elided — counted but neither charged nor
// added to the fence total — and the one real fence EndFenceBatch issues
// orders everything the window flushed.
func (p *Pool) Fence() {
	if p.fenceBatchDepth.Load() > 0 {
		p.fenceBatchElided.Add(1)
		p.stats.addElidedFence()
		return
	}
	p.stats.addFence()
	if p.model != nil {
		p.model.chargeFence()
	}
}

// BeginFenceBatch opens a fence-batching window: until EndFenceBatch, every
// Fence on this pool is elided and counted instead of issued, so a batch of
// N persists pays one ordering fence at the tail instead of N. This is the
// service tier's group-commit hook: because the simulator flushes eagerly,
// deferring only the fence never weakens crash consistency within the
// window — but on real hardware nothing in the window is durable until the
// tail fence, so callers must not acknowledge any operation in the window
// before EndFenceBatch returns. Single-writer discipline required: the
// window owner must be the only goroutine issuing persists on this pool
// while the window is open (the service tier guarantees it with one
// executor goroutine per shard). Windows do not nest.
func (p *Pool) BeginFenceBatch() {
	p.fenceBatchElided.Store(0)
	p.fenceBatchDepth.Store(1)
}

// EndFenceBatch closes the window opened by BeginFenceBatch, issuing one
// real fence if any fence was elided inside it, and returns the number of
// elided fences (so callers can meter the saving: elided minus the single
// tail fence).
func (p *Pool) EndFenceBatch() uint64 {
	p.fenceBatchDepth.Store(0)
	n := p.fenceBatchElided.Swap(0)
	if n > 0 {
		p.Fence()
	}
	return n
}

// AbortFenceBatch abandons an open fence-batch window without issuing the
// tail fence — for unwinding after a simulated crash interrupted the batch
// owner mid-window (the pool's contents are post-crash state; ordering the
// dead window's flushes would be meaningless).
func (p *Pool) AbortFenceBatch() {
	p.fenceBatchDepth.Store(0)
	p.fenceBatchElided.Store(0)
}

// Persist is the common Flush+Fence pair.
func (p *Pool) Persist(a Addr, n uint64) {
	p.Flush(a, n)
	p.Fence()
}

// Crash simulates power loss: every cacheline not flushed since its last
// store reverts to its media content. Requires TrackCrashes. The pool remains
// usable; callers then run their recovery procedure.
func (p *Pool) Crash() {
	if p.crash == nil {
		panic("pmem: Crash called without TrackCrashes")
	}
	p.crash.mu.Lock()
	defer p.crash.mu.Unlock()
	for l := range p.crash.dirty {
		off := l * CachelineSize
		copy(p.data[off:off+CachelineSize], p.crash.media[off:off+CachelineSize])
		delete(p.crash.dirty, l)
	}
}

// DirtyLines reports how many cachelines currently hold unflushed stores.
func (p *Pool) DirtyLines() int {
	if p.crash == nil {
		return 0
	}
	p.crash.mu.Lock()
	defer p.crash.mu.Unlock()
	return len(p.crash.dirty)
}

// Snapshot copies the *durable* image of the pool (media content if crash
// tracking is enabled, else current content). Reopening the snapshot models
// restart after a clean or unclean shutdown.
func (p *Pool) Snapshot() []byte {
	out := make([]byte, p.size)
	if p.crash != nil {
		p.crash.mu.Lock()
		copy(out, p.crash.media)
		// Lines never written since pool creation are identical in both
		// images, so copying media alone is correct: media starts zeroed
		// exactly like the arena.
		p.crash.mu.Unlock()
		return out
	}
	copy(out, p.data)
	return out
}

// OpenSnapshot builds a pool from a durable image produced by Snapshot.
func OpenSnapshot(img []byte, opt Options) (*Pool, error) {
	opt.Size = uint64(len(img))
	p, err := NewPool(opt)
	if err != nil {
		return nil, err
	}
	copy(p.data, img)
	if p.crash != nil {
		copy(p.crash.media, img)
	}
	return p, nil
}
