package pmem

import "sync/atomic"

// Quiet accessors perform the memory operation without charging the cost
// model or counting stats. They implement the "one charge per cacheline"
// discipline: structure code accounts a line once (TouchRead/TouchWrite or
// an accounted accessor) and then may touch the rest of that line quietly,
// mirroring how the CPU cache absorbs repeated accesses to a hot line.
// They are also the right tool for observers (stats walks, tests, debug
// dumps) that must not perturb an experiment's traffic counters. They are
// NOT a way to make a hot path look cheap: metadata that a data structure
// reads on every operation should either pay per access or be mirrored in
// DRAM outright (see internal/core's directory cache for the pattern),
// keeping the charged counters an honest model of what real hardware would
// fetch from the DIMMs.
//
// Quiet writes still participate in crash tracking — a store is a store,
// whatever it costs — so crash tests remain sound. As in access.go, the
// store happens before the dirty-marking so a concurrent flush of the line
// can never clear the mark ahead of the store landing.

// QuietReadU64 loads the uint64 at a without accounting.
func (p *Pool) QuietReadU64(a Addr) uint64 {
	p.check(a, 8)
	return *(*uint64)(p.base(a))
}

// QuietWriteU64 stores v at a, tracked for crashes but not charged.
func (p *Pool) QuietWriteU64(a Addr, v uint64) {
	p.check(a, 8)
	*(*uint64)(p.base(a)) = v
	p.markDirty(a, 8)
}

// QuietReadU32 loads the uint32 at a without accounting.
func (p *Pool) QuietReadU32(a Addr) uint32 {
	p.check(a, 4)
	return *(*uint32)(p.base(a))
}

// QuietWriteU32 stores v at a, tracked for crashes but not charged.
func (p *Pool) QuietWriteU32(a Addr, v uint32) {
	p.check(a, 4)
	*(*uint32)(p.base(a)) = v
	p.markDirty(a, 4)
}

// QuietReadU8 loads the byte at a without accounting.
func (p *Pool) QuietReadU8(a Addr) uint8 {
	p.check(a, 1)
	return p.data[a]
}

// QuietWriteU8 stores v at a, tracked for crashes but not charged.
func (p *Pool) QuietWriteU8(a Addr, v uint8) {
	p.check(a, 1)
	p.data[a] = v
	p.markDirty(a, 1)
}

// QuietLoadU32 atomically loads the uint32 at a without accounting. Used to
// re-verify a version lock living on a line the reader already paid for.
func (p *Pool) QuietLoadU32(a Addr) uint32 {
	p.check(a, 4)
	return atomic.LoadUint32((*uint32)(p.base(a)))
}

// QuietLoadU64 atomically loads the uint64 at a without accounting.
func (p *Pool) QuietLoadU64(a Addr) uint64 {
	p.check(a, 8)
	return atomic.LoadUint64((*uint64)(p.base(a)))
}

// QuietStoreU32 atomically stores v at a, tracked but not charged.
func (p *Pool) QuietStoreU32(a Addr, v uint32) {
	p.check(a, 4)
	atomic.StoreUint32((*uint32)(p.base(a)), v)
	p.markDirty(a, 4)
}

// QuietStoreU64 atomically stores v at a, tracked but not charged.
func (p *Pool) QuietStoreU64(a Addr, v uint64) {
	p.check(a, 8)
	atomic.StoreUint64((*uint64)(p.base(a)), v)
	p.markDirty(a, 8)
}

// QuietCompareAndSwapU32 CASes the uint32 at a, tracked but not charged.
func (p *Pool) QuietCompareAndSwapU32(a Addr, old, new uint32) bool {
	p.check(a, 4)
	ok := atomic.CompareAndSwapUint32((*uint32)(p.base(a)), old, new)
	p.markDirty(a, 4)
	return ok
}

// QuietBytes returns a view of [a, a+n) without accounting, for callers that
// already paid via TouchRead/TouchWrite.
func (p *Pool) QuietBytes(a Addr, n uint64) []byte {
	p.check(a, n)
	return p.data[a : uint64(a)+n : uint64(a)+n]
}

// QuietZero clears [a, a+n), tracked for crashes but not charged: the mode
// for formatting an unpublished block whose lines are charged wholesale by
// the flush that publishes it.
func (p *Pool) QuietZero(a Addr, n uint64) {
	p.check(a, n)
	b := p.data[a : uint64(a)+n]
	for i := range b {
		b[i] = 0
	}
	p.markDirty(a, n)
}
