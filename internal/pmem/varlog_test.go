package pmem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// testLog builds a crash-tracked pool plus a VarLog rooted at the pool's
// second cacheline, with a trivial bump allocator for chunks.
func testLog(t *testing.T, poolSize, chunkSize uint64) (*Pool, *VarLog) {
	t.Helper()
	p, err := NewPool(Options{Size: poolSize, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	headAddr := Addr(CachelineSize)
	next := Addr(4 * CachelineSize)
	alloc := func(size uint64) (Addr, error) {
		a := AlignUp(next, 256)
		if uint64(a)+size > p.Size() {
			return Null, errors.New("test pool full")
		}
		next = a.Add(size)
		return a, nil
	}
	p.WriteU64(headAddr, 0)
	p.Persist(headAddr, 8)
	return p, NewVarLog(p, headAddr, chunkSize, alloc)
}

func TestVarLogRoundtrip(t *testing.T) {
	_, l := testLog(t, 1<<20, 0)
	type rec struct {
		a    Addr
		k, v []byte
	}
	var recs []rec
	for i := 0; i < 64; i++ {
		k := bytes.Repeat([]byte{byte(i + 1)}, 1+i*3%100)
		v := bytes.Repeat([]byte{byte(200 - i)}, i*7%200)
		a, err := l.Append(k, v)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		l.Commit(a)
		recs = append(recs, rec{a, k, v})
	}
	for i, r := range recs {
		klen, vlen := l.Lens(r.a)
		if klen != len(r.k) || vlen != len(r.v) {
			t.Fatalf("rec %d lens = (%d,%d), want (%d,%d)", i, klen, vlen, len(r.k), len(r.v))
		}
		if !l.KeyEquals(r.a, r.k) {
			t.Fatalf("rec %d key mismatch", i)
		}
		if l.KeyEquals(r.a, append([]byte{0}, r.k...)) {
			t.Fatalf("rec %d matched a wrong key", i)
		}
		if got := l.AppendValue(nil, r.a); !bytes.Equal(got, r.v) {
			t.Fatalf("rec %d value = %x, want %x", i, got, r.v)
		}
	}
	st := l.Stats()
	if st.LiveBlobs != 64 || st.LiveBytes == 0 {
		t.Fatalf("stats = %+v, want 64 live blobs", st)
	}
}

func TestVarLogU64Key(t *testing.T) {
	_, l := testLog(t, 1<<20, 0)
	key := []byte{0xEF, 0xBE, 0xAD, 0xDE, 0x78, 0x56, 0x34, 0x12}
	a, err := l.Append(key, []byte("value"))
	if err != nil {
		t.Fatal(err)
	}
	l.Commit(a)
	if !l.KeyEqualsU64(a, 0x12345678DEADBEEF) {
		t.Fatal("KeyEqualsU64 rejected the little-endian encoding")
	}
	if l.KeyEqualsU64(a, 0x12345678DEADBEF0) {
		t.Fatal("KeyEqualsU64 matched a different key")
	}
	if got := l.ValueU64(a); got != 0x65756c6176 { // "value" zero-padded, LE
		t.Fatalf("ValueU64 = %#x", got)
	}
}

func TestVarLogTooLarge(t *testing.T) {
	_, l := testLog(t, 1<<20, 0)
	if _, err := l.Append(nil, nil); !errors.Is(err, ErrBlobTooLarge) {
		t.Fatalf("empty key: err = %v, want ErrBlobTooLarge", err)
	}
	if _, err := l.Append(make([]byte, MaxVarKeyLen+1), nil); !errors.Is(err, ErrBlobTooLarge) {
		t.Fatalf("oversized key: err = %v", err)
	}
	if _, err := l.Append([]byte("k"), make([]byte, MaxVarValueLen+1)); !errors.Is(err, ErrBlobTooLarge) {
		t.Fatalf("oversized value: err = %v", err)
	}
	if _, err := l.Append(make([]byte, MaxVarKeyLen), make([]byte, MaxVarValueLen)); err != nil {
		t.Fatalf("max-size blob rejected: %v", err)
	}
}

func TestVarLogFreeReuse(t *testing.T) {
	_, l := testLog(t, 1<<20, 0)
	a, err := l.Append([]byte("0123456789abcdef"), []byte("old-value-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	l.Commit(a)
	used := l.Stats()
	l.Free(a)
	if st := l.Stats(); st.FreeBytes == 0 || st.LiveBlobs != 0 {
		t.Fatalf("post-free stats = %+v", st)
	}
	// Same capacity class: the freed span must be reused.
	b, err := l.Append([]byte("fedcba9876543210"), []byte("new-value-byte5"))
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("append after free went to %#x, want reuse of %#x", b, a)
	}
	l.Commit(b)
	if st := l.Stats(); st.FreeBytes != 0 || st.LiveBytes != used.LiveBytes {
		t.Fatalf("post-reuse stats = %+v, want live %d", st, used.LiveBytes)
	}
	if !l.KeyEquals(b, []byte("fedcba9876543210")) {
		t.Fatal("reused blob serves the old key")
	}
}

func TestVarLogChunkRollover(t *testing.T) {
	_, l := testLog(t, 1<<20, 1024) // tiny chunks force the chain to grow
	var addrs []Addr
	for i := 0; i < 100; i++ {
		a, err := l.Append([]byte(fmt.Sprintf("key-%03d-padded-out", i)), make([]byte, 64))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		l.Commit(a)
		addrs = append(addrs, a)
	}
	if st := l.Stats(); st.ChunkBytes < 4*1024 {
		t.Fatalf("expected multiple chunks, got %+v", st)
	}
	for i, a := range addrs {
		if !l.KeyEquals(a, []byte(fmt.Sprintf("key-%03d-padded-out", i))) {
			t.Fatalf("blob %d unreadable after rollovers", i)
		}
	}
}

// TestVarLogRecover covers the sweep's classification matrix: committed and
// referenced blobs survive, committed-but-unreferenced and uncommitted
// blobs are reclaimed onto the free list, and a blob whose header never
// reached media ends its chunk's walk.
func TestVarLogRecover(t *testing.T) {
	p, l := testLog(t, 1<<20, 0)
	kept, _ := l.Append([]byte("kept-key-0123456"), []byte("kept-val"))
	l.Commit(kept)
	orphan, _ := l.Append([]byte("orphan-key-01234"), []byte("orphan-val"))
	l.Commit(orphan)
	uncommitted, _ := l.Append([]byte("uncommitted-key0"), []byte("uncommitted"))
	_ = uncommitted

	// Simulate the crash: everything unflushed reverts to media. Append and
	// Commit persist eagerly, so all three blobs (two committed) survive.
	p.Crash()

	l2 := NewVarLog(p, Addr(CachelineSize), 0, func(uint64) (Addr, error) {
		return Null, errors.New("no growth during recovery test")
	})
	if err := l2.Recover(func(a Addr) bool { return a == kept }); err != nil {
		t.Fatal(err)
	}
	st := l2.Stats()
	if st.LiveBlobs != 1 {
		t.Fatalf("recovered live blobs = %d, want 1 (the referenced one)", st.LiveBlobs)
	}
	wantFree := blobCap(16, 10) + blobCap(16, 11)
	if st.FreeBytes != wantFree {
		t.Fatalf("recovered free bytes = %d, want %d (orphan + uncommitted)", st.FreeBytes, wantFree)
	}
	if !l2.KeyEquals(kept, []byte("kept-key-0123456")) {
		t.Fatal("referenced blob unreadable after recovery")
	}
	// The reclaimed spans must be reusable without growing the chain.
	a, err := l2.Append([]byte("reuse-key-012345"), []byte("reuse-val0"))
	if err != nil {
		t.Fatal(err)
	}
	if a != orphan && a != uncommitted {
		t.Fatalf("post-recovery append went to %#x, want a reclaimed span", a)
	}
}

// TestVarLogRecoverTornHeader: a blob allocated (frontier persisted) whose
// header never reached media must stop the walk without panicking and leak
// the tail — deterministically, on every recovery.
func TestVarLogRecoverTornHeader(t *testing.T) {
	p, l := testLog(t, 1<<20, 0)
	a1, _ := l.Append([]byte("first-key-012345"), []byte("v1"))
	l.Commit(a1)
	// Hand-simulate a torn append: bump the frontier (persisted) without
	// ever writing the header.
	chunk := Addr(p.ReadU64(Addr(CachelineSize)))
	bumpAddr := chunk.Add(chunkOffBump)
	bump := p.ReadU64(bumpAddr)
	p.StoreU64(bumpAddr, bump+64)
	p.Persist(bumpAddr, 8)
	p.Crash()

	l2 := NewVarLog(p, Addr(CachelineSize), 0, func(uint64) (Addr, error) {
		return Null, errors.New("no growth")
	})
	if err := l2.Recover(func(a Addr) bool { return a == a1 }); err != nil {
		t.Fatal(err)
	}
	st := l2.Stats()
	if st.LiveBlobs != 1 || st.FreeBytes != 0 {
		t.Fatalf("stats after torn-header recovery = %+v, want 1 live, 0 free", st)
	}
}
