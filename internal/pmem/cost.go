package pmem

import (
	"sync/atomic"
	"time"
)

// CostModel charges simulated Optane DCPMM costs on every tracked PM access.
//
// Two effects matter for reproducing the paper's curves:
//
//  1. Latency: an uncached PM read touches the media (~300ns device latency),
//     while a store commits at the memory controller's ADR domain and is
//     considerably cheaper end to end (§2.1). Base per-access latencies
//     model this asymmetry.
//
//  2. Bandwidth: DCPMM delivers roughly 8× less random-read and 14× less
//     random-write bandwidth than DRAM, so a multicore workload saturates it
//     long before the cores run out (§1.1, Fig. 1). A shared virtual clock
//     per direction regulates aggregate line throughput: each access books
//     its service time on the clock and spins until its finish time, so
//     once offered load exceeds the configured bandwidth, extra threads only
//     add queueing delay — exactly the flat scalability plateau of Fig. 1.
//
// All costs scale by Scale so test suites can run the same code path fast.
type CostModel struct {
	// Base latencies, nanoseconds per access (not per line).
	ReadLatencyNS  int64 // media read, paid when the line is not cached
	WriteLatencyNS int64 // store absorbed by ADR
	FlushNS        int64 // CLWB
	FenceNS        int64 // SFENCE

	// Bandwidth, expressed as nanoseconds of device time per cacheline.
	// Aggregate throughput is capped near 1 line per this many ns.
	ReadLineNS  int64
	WriteLineNS int64

	// Scale divides every delay; 0 or 1 means full cost, 10 runs 10× faster
	// with the same relative shape.
	Scale int64

	readClock  atomic.Int64
	writeClock atomic.Int64

	epoch time.Time
}

// DefaultOptane returns a cost model shaped like the paper's testbed:
// 6 interleaved 128GB DIMMs, ~300ns media reads, writes absorbed by ADR,
// ~10GB/s aggregate random-read and ~2.5GB/s random-write bandwidth.
func DefaultOptane() *CostModel {
	return &CostModel{
		ReadLatencyNS:  300,
		WriteLatencyNS: 90,
		FlushNS:        80,
		FenceNS:        25,
		ReadLineNS:     7,  // ≈ 9.1 GB/s aggregate
		WriteLineNS:    26, // ≈ 2.5 GB/s aggregate
		Scale:          1,
		epoch:          time.Now(),
	}
}

// ScaledOptane returns DefaultOptane sped up by factor (for tests).
func ScaledOptane(factor int64) *CostModel {
	m := DefaultOptane()
	m.Scale = factor
	return m
}

func (m *CostModel) now() int64 {
	return int64(time.Since(m.epoch))
}

// regulate books costNS of device time on clock and returns how many
// nanoseconds past "now" the access completes (0 when under capacity).
func (m *CostModel) regulate(clock *atomic.Int64, costNS int64) int64 {
	now := m.now()
	finish := clock.Add(costNS)
	wait := finish - now
	if wait < 0 {
		// Device idle: pull the clock up so idle time is not banked as
		// credit. A lost race only under-charges one access.
		clock.CompareAndSwap(finish, now)
		return 0
	}
	return wait
}

func (m *CostModel) scale(ns int64) int64 {
	if m.Scale > 1 {
		return ns / m.Scale
	}
	return ns
}

func spinNS(ns int64) {
	if ns <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(ns))
	for time.Now().Before(deadline) {
	}
}

func (m *CostModel) chargeRead(lines uint64) {
	q := m.regulate(&m.readClock, m.scale(int64(lines)*m.ReadLineNS))
	base := m.scale(m.ReadLatencyNS)
	if q > base {
		base = q
	}
	spinNS(base)
}

func (m *CostModel) chargeWrite(lines uint64) {
	q := m.regulate(&m.writeClock, m.scale(int64(lines)*m.WriteLineNS))
	base := m.scale(m.WriteLatencyNS)
	if q > base {
		base = q
	}
	spinNS(base)
}

func (m *CostModel) chargeFlush(lines uint64) {
	// A flush pushes the lines toward media, consuming write bandwidth.
	q := m.regulate(&m.writeClock, m.scale(int64(lines)*m.WriteLineNS))
	base := m.scale(m.FlushNS)
	if q > base {
		base = q
	}
	spinNS(base)
}

func (m *CostModel) chargeFence() {
	spinNS(m.scale(m.FenceNS))
}

// ChargeSyntheticNS spins for the scaled duration; used by substrate models
// (e.g. page-fault costs in the allocator) that are not per-line.
func (m *CostModel) ChargeSyntheticNS(ns int64) {
	spinNS(m.scale(ns))
}
