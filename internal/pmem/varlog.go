package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dash/internal/obs"
)

// VarLog is a crash-consistent, bump-allocated log of variable-length
// key/value blobs — the out-of-bucket record store behind the engine's
// fixed bucket layout (§4.1 of the paper notes longer keys are handled by
// storing pointers to records kept outside the bucket; the one-byte
// fingerprint still filters almost every misprobe before the pointer is
// dereferenced).
//
// # Layout
//
// The log is a chain of fixed-size chunks carved from the pool by the
// caller-supplied allocator, newest chunk first, rooted at a single
// caller-owned pointer word (headAddr). Each chunk is one header cacheline
// followed by blob storage:
//
//	word 0: next chunk address (0 terminates the chain)
//	word 1: chunk size in bytes (header included)
//	word 2: bump frontier — absolute address of the first free byte,
//	        persisted right after every allocation CAS like the pool's
//	        main frontier, so a crash can at worst leak a blob that was
//	        never published, never hand the same bytes out twice
//
// A blob is 16-aligned and self-describing:
//
//	word 0: key length (bits 0..15) | value length (bits 16..31)
//	        | capacity/16 (bits 32..47) — capacity is the blob's full
//	        footprint including this header, which is what lets a log walk
//	        stride over blobs whose content lengths shrank on reuse
//	word 1: commit word — blobCommitMagic once the blob's bytes are
//	        durable, anything else means the blob never finished
//	then:   key bytes, value bytes, padding to 16
//
// # Crash protocol
//
// Append writes header (commit word cleared) and bytes, then flushes and
// fences them; Commit sets the commit word with its own persist. The caller
// publishes the blob by pointing a table slot at it only after Commit, so
// at any crash a blob is in exactly one of three states: unwritten or
// uncommitted (reclaimed by Recover), committed but unreferenced (the crash
// fell between commit and slot publish, or between a copy-on-write slot
// flip and nothing — Recover reclaims it once the caller reports which
// blobs its slots still reference), or committed and referenced (kept).
//
// # Reuse
//
// Free pushes a blob onto a DRAM free list keyed by capacity; nothing is
// written to PM — an unreferenced blob is already dead at crash
// granularity, whatever its commit word says. The caller is responsible for
// epoch-deferring Free of a blob that lock-free readers may still be
// dereferencing (the same discipline the engine applies to retired
// directory blocks). Reusing a span whose media image still says
// "committed" is safe because Append clears the commit word before the
// payload persist: the new content can only ever surface as uncommitted.
type VarLog struct {
	pool     *Pool
	headAddr Addr // pool address of the head-chunk pointer word
	chunkSz  uint64
	alloc    func(size uint64) (Addr, error)

	// cur is the chunk currently bump-allocated from (0 until the first
	// Append); rollover and the free list serialize on mu.
	cur atomic.Uint64
	mu  sync.Mutex
	// free maps blob capacity → reusable blob addresses. Exact-capacity
	// reuse only: the header's capacity field must keep describing the
	// span so a post-crash log walk can stride over it.
	free map[uint64][]Addr

	// DRAM stats; rebuilt by Recover.
	chunkBytes atomic.Uint64 // pool bytes held by chunks
	liveBytes  atomic.Uint64 // capacity of committed, not-freed blobs
	liveBlobs  atomic.Int64
	freeBytes  atomic.Uint64 // capacity sitting in the free list

	// FreeHits/FreeMisses, when non-nil, meter blob allocations served from
	// the DRAM free list vs. fresh bump allocations (chunk frontier or
	// grow). Optional observability: set them before first use (obs.Counter
	// methods are nil-safe, so unset meters cost one predicted branch).
	FreeHits, FreeMisses *obs.Counter

	// Sweep bounds captured by RecoverChunks: the head chunk and its bump
	// frontier as of Open. A LogSweep walks only blobs that existed then;
	// everything appended afterwards (above the frontier, or in chunks
	// prepended since) is managed by the runtime Free/reuse paths alone.
	sweepHead  Addr
	sweepLimit uint64
}

const (
	// VarChunkSize is the default chunk size new logs allocate in.
	VarChunkSize = 256 << 10

	// BlobHeaderSize is the fixed per-blob header footprint.
	BlobHeaderSize = 16

	// MaxVarKeyLen and MaxVarValueLen bound one blob's content. The bound
	// keeps every blob far below one chunk (an Append never cascades into
	// multiple chunk allocations mid-operation) and bounds the worst-case
	// PM read a single fingerprint-matched dereference can charge — split
	// migration and sweeps never touch blob bytes, so resize cost stays
	// independent of record size.
	MaxVarKeyLen   = 1 << 10
	MaxVarValueLen = 4 << 10

	blobAlign       = 16
	chunkHeaderSize = CachelineSize
	chunkOffNext    = 0
	chunkOffSize    = 8
	chunkOffBump    = 16

	blobCommitMagic = 0xB10BC0117EDBEEF1
)

// ErrBlobTooLarge is returned by Append when a record exceeds the log's
// per-blob bounds.
var ErrBlobTooLarge = errors.New("pmem: blob exceeds varlog size bounds")

// NewVarLog attaches a log to the pointer word at headAddr (zero for an
// empty log; Create-time callers persist that zero themselves). alloc hands
// out chunk-sized pool blocks; chunkSize 0 selects VarChunkSize. Call
// Recover before use when headAddr may name existing chunks.
func NewVarLog(pool *Pool, headAddr Addr, chunkSize uint64, alloc func(size uint64) (Addr, error)) *VarLog {
	if chunkSize == 0 {
		chunkSize = VarChunkSize
	}
	return &VarLog{
		pool:     pool,
		headAddr: headAddr,
		chunkSz:  chunkSize,
		alloc:    alloc,
		free:     make(map[uint64][]Addr),
	}
}

func packBlobHeader(klen, vlen int, capBytes uint64) uint64 {
	return uint64(klen) | uint64(vlen)<<16 | (capBytes/blobAlign)<<32
}

func blobHeaderLens(h uint64) (klen, vlen int) {
	return int(h & 0xFFFF), int(h >> 16 & 0xFFFF)
}

func blobHeaderCap(h uint64) uint64 { return ((h >> 32) & 0xFFFF) * blobAlign }

// blobCap returns the 16-aligned footprint of a blob with the given content.
func blobCap(klen, vlen int) uint64 {
	return (BlobHeaderSize + uint64(klen) + uint64(vlen) + blobAlign - 1) &^ (blobAlign - 1)
}

// Append allocates a blob, writes header and content and persists them with
// the commit word cleared. The blob is not live until Commit; a crash
// before Commit leaves it reclaimable. Concurrent Appends are safe.
func (l *VarLog) Append(key, value []byte) (Addr, error) {
	klen, vlen := len(key), len(value)
	if klen == 0 || klen > MaxVarKeyLen || vlen > MaxVarValueLen {
		return Null, ErrBlobTooLarge
	}
	capBytes := blobCap(klen, vlen)
	a, err := l.allocBlob(capBytes)
	if err != nil {
		return Null, err
	}
	p := l.pool
	// Clear the commit word before anything else lands: if this span is a
	// reused blob whose media image says "committed", the clear must be in
	// the same flush set as the new content, so the torn states a crash can
	// expose are all uncommitted.
	p.QuietStoreU64(a.Add(8), 0)
	p.QuietStoreU64(a, packBlobHeader(klen, vlen, capBytes))
	copy(p.QuietBytes(a.Add(BlobHeaderSize), uint64(klen)), key)
	copy(p.QuietBytes(a.Add(BlobHeaderSize+uint64(klen)), uint64(vlen)), value)
	// One charge for the whole blob (and the crash-tracking dirty marks for
	// the byte copies above); then make it durable.
	p.TouchWrite(a, BlobHeaderSize+uint64(klen)+uint64(vlen))
	p.Persist(a, BlobHeaderSize+uint64(klen)+uint64(vlen))
	return a, nil
}

// Commit marks the blob durable-and-complete. After Commit the caller may
// publish the blob's address; the content must never change again.
func (l *VarLog) Commit(a Addr) {
	p := l.pool
	p.StoreU64(a.Add(8), blobCommitMagic)
	p.Persist(a.Add(8), 8)
	capBytes := blobHeaderCap(p.QuietReadU64(a))
	l.liveBytes.Add(capBytes)
	l.liveBlobs.Add(1)
}

// Free returns a blob's span to the DRAM free list. No PM is written: an
// unreferenced blob is already reclaimable at crash granularity. The caller
// must guarantee no reader can still dereference the blob (epoch-defer the
// call when lock-free readers are in play).
func (l *VarLog) Free(a Addr) {
	capBytes := blobHeaderCap(l.pool.QuietReadU64(a))
	l.mu.Lock()
	l.free[capBytes] = append(l.free[capBytes], a)
	l.mu.Unlock()
	l.liveBytes.Add(^(capBytes - 1))
	l.liveBlobs.Add(-1)
	l.freeBytes.Add(capBytes)
}

// allocBlob hands out a 16-aligned span: free list first (exact capacity
// class), then the current chunk's bump frontier, growing the chain when
// the chunk is full.
func (l *VarLog) allocBlob(capBytes uint64) (Addr, error) {
	l.mu.Lock()
	if spans := l.free[capBytes]; len(spans) > 0 {
		a := spans[len(spans)-1]
		l.free[capBytes] = spans[:len(spans)-1]
		l.mu.Unlock()
		l.freeBytes.Add(^(capBytes - 1))
		l.FreeHits.Inc()
		return a, nil
	}
	l.mu.Unlock()
	p := l.pool
	for {
		chunk := Addr(l.cur.Load())
		if !chunk.IsNull() {
			ba := chunk.Add(chunkOffBump)
			for {
				bump := p.LoadU64(ba)
				end := uint64(chunk) + p.QuietReadU64(chunk.Add(chunkOffSize))
				if bump+capBytes > end {
					break // chunk full; roll over
				}
				if p.CompareAndSwapU64(ba, bump, bump+capBytes) {
					p.Persist(ba, 8)
					l.FreeMisses.Inc()
					return Addr(bump), nil
				}
			}
		}
		if err := l.growLocked(chunk); err != nil {
			return Null, err
		}
	}
}

// growLocked links a fresh chunk at the head of the chain if no one else
// did since the caller observed prev as the current chunk.
func (l *VarLog) growLocked(prev Addr) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if Addr(l.cur.Load()) != prev {
		return nil // another Append already grew the chain
	}
	chunk, err := l.alloc(l.chunkSz)
	if err != nil {
		return err
	}
	p := l.pool
	head := Addr(p.LoadU64(l.headAddr))
	p.StoreU64(chunk.Add(chunkOffNext), uint64(head))
	p.StoreU64(chunk.Add(chunkOffSize), l.chunkSz)
	p.StoreU64(chunk.Add(chunkOffBump), uint64(chunk)+chunkHeaderSize)
	p.Persist(chunk, chunkHeaderSize)
	// Publishing the chunk is the head-pointer flip; a crash before it
	// leaks the block, exactly like every other unpublished allocation.
	p.StoreU64(l.headAddr, uint64(chunk))
	p.Persist(l.headAddr, 8)
	l.cur.Store(uint64(chunk))
	l.chunkBytes.Add(l.chunkSz)
	return nil
}

// Lens returns the blob's key and value lengths (quiet: the header shares
// the line the caller's dereference already charged).
func (l *VarLog) Lens(a Addr) (klen, vlen int) {
	return blobHeaderLens(l.pool.QuietReadU64(a))
}

// KeyEquals reports whether the blob's key bytes equal key, charging one
// read of header+key (the dereference a matching fingerprint+hash bought).
func (l *VarLog) KeyEquals(a Addr, key []byte) bool {
	p := l.pool
	klen, _ := blobHeaderLens(p.QuietReadU64(a))
	if klen != len(key) {
		return false
	}
	p.TouchRead(a, BlobHeaderSize+uint64(klen))
	return string(p.QuietBytes(a.Add(BlobHeaderSize), uint64(klen))) == string(key)
}

// KeyEqualsU64 is KeyEquals for the canonical 8-byte little-endian encoding
// of a uint64 key, without materializing the bytes.
func (l *VarLog) KeyEqualsU64(a Addr, key uint64) bool {
	p := l.pool
	klen, _ := blobHeaderLens(p.QuietReadU64(a))
	if klen != 8 {
		return false
	}
	p.TouchRead(a, BlobHeaderSize+8)
	return binary.LittleEndian.Uint64(p.QuietBytes(a.Add(BlobHeaderSize), 8)) == key
}

// KeyEqualsPrefetch is KeyEquals for callers that will extract the value on
// a match: it charges one streaming read of the whole blob — header, key
// and value occupy consecutive lines — instead of header+key now and the
// value again later, so the extraction must use the Quiet variants
// (QuietAppendValue, QuietValueU64). On the rare non-match (a full-hash
// collision) the value lines are over-charged; the caller's filter makes
// that negligible against the line the split charges would double-count on
// every match.
func (l *VarLog) KeyEqualsPrefetch(a Addr, key []byte) bool {
	p := l.pool
	klen, vlen := blobHeaderLens(p.QuietReadU64(a))
	if klen != len(key) {
		return false
	}
	p.TouchRead(a, BlobHeaderSize+uint64(klen)+uint64(vlen))
	return string(p.QuietBytes(a.Add(BlobHeaderSize), uint64(klen))) == string(key)
}

// KeyEqualsPrefetchU64 is KeyEqualsPrefetch for the canonical 8-byte
// little-endian encoding of a uint64 key.
func (l *VarLog) KeyEqualsPrefetchU64(a Addr, key uint64) bool {
	p := l.pool
	klen, vlen := blobHeaderLens(p.QuietReadU64(a))
	if klen != 8 {
		return false
	}
	p.TouchRead(a, BlobHeaderSize+8+uint64(vlen))
	return binary.LittleEndian.Uint64(p.QuietBytes(a.Add(BlobHeaderSize), 8)) == key
}

// QuietAppendValue is AppendValue without accounting, for callers whose
// probe already charged the whole blob via KeyEqualsPrefetch.
func (l *VarLog) QuietAppendValue(dst []byte, a Addr) []byte {
	p := l.pool
	klen, vlen := blobHeaderLens(p.QuietReadU64(a))
	return append(dst, p.QuietBytes(a.Add(BlobHeaderSize+uint64(klen)), uint64(vlen))...)
}

// QuietValueU64 is ValueU64 without accounting, the KeyEqualsPrefetch
// counterpart for uint64 values.
func (l *VarLog) QuietValueU64(a Addr) uint64 {
	p := l.pool
	klen, vlen := blobHeaderLens(p.QuietReadU64(a))
	n := uint64(vlen)
	if n > 8 {
		n = 8
	}
	var buf [8]byte
	copy(buf[:], p.QuietBytes(a.Add(BlobHeaderSize+uint64(klen)), n))
	return binary.LittleEndian.Uint64(buf[:])
}

// KeyBytes returns a copy of the blob's key (charged).
func (l *VarLog) KeyBytes(a Addr) []byte {
	p := l.pool
	klen, _ := blobHeaderLens(p.QuietReadU64(a))
	return p.ReadBytes(a.Add(BlobHeaderSize), uint64(klen))
}

// AppendValue appends the blob's value bytes to dst (charged).
func (l *VarLog) AppendValue(dst []byte, a Addr) []byte {
	p := l.pool
	klen, vlen := blobHeaderLens(p.QuietReadU64(a))
	p.TouchRead(a.Add(BlobHeaderSize+uint64(klen)), uint64(vlen))
	return append(dst, p.QuietBytes(a.Add(BlobHeaderSize+uint64(klen)), uint64(vlen))...)
}

// ValueU64 is the fixed-width view of a blob's value: the little-endian
// uint64 of its first 8 bytes, zero-padded when the value is shorter.
func (l *VarLog) ValueU64(a Addr) uint64 {
	p := l.pool
	klen, vlen := blobHeaderLens(p.QuietReadU64(a))
	n := uint64(vlen)
	if n > 8 {
		n = 8
	}
	p.TouchRead(a.Add(BlobHeaderSize+uint64(klen)), n)
	var buf [8]byte
	copy(buf[:], p.QuietBytes(a.Add(BlobHeaderSize+uint64(klen)), n))
	return binary.LittleEndian.Uint64(buf[:])
}

// RecoverChunks rebuilds the log's chunk-level DRAM state after Open — the
// O(#chunks) part of recovery that must run before any Append: it resets the
// free list and space accounting, validates every chunk header, re-derives
// chunkBytes, points the allocator at the head chunk, and snapshots the
// sweep bounds (head chunk + its bump frontier) a later LogSweep classifies
// blobs within. Blob classification itself is deferred to the sweep, so the
// restart critical path never walks blob storage.
func (l *VarLog) RecoverChunks() error {
	p := l.pool
	l.mu.Lock()
	l.free = make(map[uint64][]Addr)
	l.mu.Unlock()
	l.chunkBytes.Store(0)
	l.liveBytes.Store(0)
	l.liveBlobs.Store(0)
	l.freeBytes.Store(0)

	head := Addr(p.ReadU64(l.headAddr))
	l.cur.Store(uint64(head))
	l.sweepHead, l.sweepLimit = head, 0
	for chunk := head; !chunk.IsNull(); {
		size := p.ReadU64(chunk.Add(chunkOffSize))
		bump := p.ReadU64(chunk.Add(chunkOffBump))
		if size < chunkHeaderSize || bump < uint64(chunk)+chunkHeaderSize || bump > uint64(chunk)+size {
			return fmt.Errorf("pmem: varlog chunk %#x corrupt (size %d bump %#x)", chunk, size, bump)
		}
		if chunk == head {
			l.sweepLimit = bump
		}
		l.chunkBytes.Add(size)
		chunk = Addr(p.ReadU64(chunk.Add(chunkOffNext)))
	}
	return nil
}

// LogSweep is a resumable walk over the blobs that existed when
// RecoverChunks ran, classifying each exactly once: blobs the caller's
// segments referenced at their recovery stay live (their space is accounted
// as the baseline runtime Frees and Commits have been applying deltas to);
// everything else — blobs whose commit never landed, and committed blobs no
// slot references — is reclaimed onto the free list. A blob whose header
// never reached media (capacity 0, or striding past the frontier) ends its
// chunk's walk; the bytes behind it are leaked, never handed out twice.
//
// The sweep is safe against concurrent foreground traffic without locks:
// it never visits spans appended after Open (bounded by the snapshot
// frontier), and a pre-existing span can only be concurrently rewritten if
// it was freed since Open — which requires it to have been referenced at
// its segment's recovery, so the referenced check skips it without touching
// its free-list state. Word reads are atomic, so a racing reuse's header
// stores (same capacity by the exact-capacity reuse rule) never tear the
// stride.
type LogSweep struct {
	l     *VarLog
	chunk Addr   // current chunk; Null once the walk is exhausted
	pos   Addr   // next blob address within chunk
	limit uint64 // walk limit (absolute address) within current chunk
}

// SweepStart begins a sweep over the blobs captured by the last
// RecoverChunks. The caller must guarantee the referenced sets it will pass
// to Step are complete before stepping (every segment's references
// collected), and must not run two sweeps concurrently.
func (l *VarLog) SweepStart() *LogSweep {
	s := &LogSweep{l: l, chunk: l.sweepHead, limit: l.sweepLimit}
	if !s.chunk.IsNull() {
		s.pos = s.chunk.Add(chunkHeaderSize)
	}
	return s
}

// Step classifies up to maxBlobs blobs and reports whether the sweep is
// complete and how many blobs it free-listed. Call under an epoch guard when
// lock-free readers are in play, and yield between steps: each step's PM
// cost is bounded, so the sweep never blocks foreground operations.
func (s *LogSweep) Step(maxBlobs int, referenced func(Addr) bool) (done bool, freed int) {
	l, p := s.l, s.l.pool
	for n := 0; n < maxBlobs; {
		if s.chunk.IsNull() {
			return true, freed
		}
		if uint64(s.pos) >= s.limit {
			s.nextChunk()
			continue
		}
		a := s.pos
		h := p.QuietLoadU64(a)
		capBytes := blobHeaderCap(h)
		if capBytes == 0 || uint64(a)+capBytes > s.limit {
			// Header never persisted: leak the rest of this chunk.
			s.nextChunk()
			continue
		}
		// One streaming charge for the header+commit line of this stride.
		p.TouchRead(a, BlobHeaderSize)
		if referenced(a) {
			l.liveBytes.Add(capBytes)
			l.liveBlobs.Add(1)
		} else {
			l.mu.Lock()
			l.free[capBytes] = append(l.free[capBytes], a)
			l.mu.Unlock()
			l.freeBytes.Add(capBytes)
			freed++
		}
		s.pos = a.Add(capBytes)
		n++
	}
	return s.chunk.IsNull(), freed
}

// nextChunk advances the sweep to the following chunk in the chain; chunks
// prepended since Open are never reached (the walk starts at the Open-time
// head), and non-head chunks' frontiers are frozen, so the limit read here
// is stable.
func (s *LogSweep) nextChunk() {
	p := s.l.pool
	s.chunk = Addr(p.QuietLoadU64(s.chunk.Add(chunkOffNext)))
	if s.chunk.IsNull() {
		return
	}
	s.pos = s.chunk.Add(chunkHeaderSize)
	s.limit = p.QuietLoadU64(s.chunk.Add(chunkOffBump))
}

// Recover is the synchronous composition RecoverChunks + a full sweep — the
// eager-recovery convenience for callers (and tests) with no concurrent
// traffic to stay out of the way of.
func (l *VarLog) Recover(referenced func(Addr) bool) error {
	if err := l.RecoverChunks(); err != nil {
		return err
	}
	s := l.SweepStart()
	for {
		if done, _ := s.Step(1024, referenced); done {
			return nil
		}
	}
}

// WalkBlobs calls fn for every blob currently reachable by a log walk (each
// chunk up to its live bump frontier), reporting its capacity and whether
// its commit word is set. Quiescent-state debug/test oracle: concurrent
// appends void the walk's meaning.
func (l *VarLog) WalkBlobs(fn func(a Addr, capBytes uint64, committed bool)) {
	p := l.pool
	for chunk := Addr(p.QuietLoadU64(l.headAddr)); !chunk.IsNull(); {
		bump := p.QuietLoadU64(chunk.Add(chunkOffBump))
		for a := chunk.Add(chunkHeaderSize); uint64(a) < bump; {
			h := p.QuietLoadU64(a)
			capBytes := blobHeaderCap(h)
			if capBytes == 0 || uint64(a)+capBytes > bump {
				break
			}
			fn(a, capBytes, p.QuietLoadU64(a.Add(8)) == blobCommitMagic)
			a = a.Add(capBytes)
		}
		chunk = Addr(p.QuietLoadU64(chunk.Add(chunkOffNext)))
	}
}

// FreeSpans snapshots the set of blob addresses parked on the DRAM free
// list. Quiescent-state debug/test oracle.
func (l *VarLog) FreeSpans() map[Addr]struct{} {
	out := make(map[Addr]struct{})
	l.mu.Lock()
	for _, spans := range l.free {
		for _, a := range spans {
			out[a] = struct{}{}
		}
	}
	l.mu.Unlock()
	return out
}

// VarLogStats is a point-in-time view of the log's space accounting.
type VarLogStats struct {
	// ChunkBytes is the pool space held by the chunk chain.
	ChunkBytes uint64
	// LiveBytes is the capacity of committed, unfreed blobs; LiveBlobs
	// counts them.
	LiveBytes uint64
	LiveBlobs int64
	// FreeBytes is the capacity parked on the DRAM free list.
	FreeBytes uint64
}

// Stats snapshots the log's space accounting (per-counter consistent).
func (l *VarLog) Stats() VarLogStats {
	return VarLogStats{
		ChunkBytes: l.chunkBytes.Load(),
		LiveBytes:  l.liveBytes.Load(),
		LiveBlobs:  l.liveBlobs.Load(),
		FreeBytes:  l.freeBytes.Load(),
	}
}
