package pmem

import (
	"sync"
	"testing"
)

func newTracked(t *testing.T, size uint64) *Pool {
	t.Helper()
	p, err := NewPool(Options{Size: size, TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCrashDiscardsUnflushed is the core persistence contract: a store that
// was never flushed does not survive power loss, a persisted one does.
func TestCrashDiscardsUnflushed(t *testing.T) {
	p := newTracked(t, 4096)
	durable := Addr(CachelineSize)
	volatile := Addr(2 * CachelineSize)

	p.WriteU64(durable, 0x1111)
	p.Persist(durable, 8)
	p.WriteU64(volatile, 0x2222)

	if p.DirtyLines() == 0 {
		t.Fatal("expected dirty lines before crash")
	}
	p.Crash()
	if got := p.ReadU64(durable); got != 0x1111 {
		t.Errorf("persisted store lost: got %#x", got)
	}
	if got := p.ReadU64(volatile); got != 0 {
		t.Errorf("unflushed store survived crash: got %#x", got)
	}
	if p.DirtyLines() != 0 {
		t.Errorf("dirty lines after crash: %d", p.DirtyLines())
	}
}

// TestCrashThenReopen proves the full cycle the table's crash tests rely on:
// Snapshot captures only media state, and a pool reopened from it sees
// exactly the flushed stores.
func TestCrashThenReopen(t *testing.T) {
	p := newTracked(t, 4096)
	a, b := Addr(CachelineSize), Addr(2*CachelineSize)
	p.WriteU64(a, 42)
	p.Persist(a, 8)
	p.WriteU64(b, 43) // never flushed

	img := p.Snapshot()
	q, err := OpenSnapshot(img, Options{TrackCrashes: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.ReadU64(a); got != 42 {
		t.Errorf("reopened pool lost persisted store: got %d", got)
	}
	if got := q.ReadU64(b); got != 0 {
		t.Errorf("reopened pool kept unflushed store: got %d", got)
	}
	// The reopened pool is fully functional.
	q.WriteU64(b, 7)
	q.Persist(b, 8)
	q.Crash()
	if got := q.ReadU64(b); got != 7 {
		t.Errorf("store after reopen lost: got %d", got)
	}
}

// TestQuietWritesStillCrashTracked: quiet accessors skip accounting but a
// store is a store for crash purposes.
func TestQuietWritesStillCrashTracked(t *testing.T) {
	p := newTracked(t, 4096)
	a := Addr(CachelineSize)
	p.QuietWriteU64(a, 99)
	if p.DirtyLines() == 0 {
		t.Fatal("quiet write not tracked as dirty")
	}
	p.Crash()
	if got := p.ReadU64(a); got != 0 {
		t.Errorf("unflushed quiet write survived: got %d", got)
	}
}

// TestStatsAccounting spot-checks the traffic counters the experiments use.
func TestStatsAccounting(t *testing.T) {
	p, err := NewPool(Options{Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a := Addr(CachelineSize)
	p.WriteU64(a, 1)
	p.ReadU64(a)
	p.Persist(a, 8)
	s := p.Stats()
	if s.WriteLines != 1 || s.ReadLines != 1 || s.FlushedLines != 1 || s.Fences != 1 {
		t.Errorf("stats = %+v, want 1 of each", s)
	}
	// A 3-line span counts 3 lines per access.
	p.ResetStats()
	p.TouchWrite(a, 3*CachelineSize)
	if s := p.Stats(); s.WriteLines != 3 {
		t.Errorf("WriteLines = %d, want 3", s.WriteLines)
	}
}

// TestConcurrentAtomics exercises the atomic accessors from many goroutines
// under -race: the pool's words must behave like regular Go atomics.
func TestConcurrentAtomics(t *testing.T) {
	p, err := NewPool(Options{Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctr := Addr(CachelineSize)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.AddU64(ctr, 1)
			}
		}()
	}
	wg.Wait()
	if got := p.LoadU64(ctr); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestKVHelpers(t *testing.T) {
	p, err := NewPool(Options{Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a := Addr(CachelineSize)
	p.WriteKV(a, KV{Key: 11, Value: 22})
	if kv := p.ReadKV(a); kv.Key != 11 || kv.Value != 22 {
		t.Errorf("ReadKV = %+v", kv)
	}
	p.WriteValue(a, 33)
	if got := p.ReadValue(a); got != 33 {
		t.Errorf("ReadValue = %d, want 33", got)
	}
	if got := p.ReadKey(a); got != 11 {
		t.Errorf("ReadKey = %d, want 11", got)
	}
	if got := AlignUp(Addr(257), 256); got != 512 {
		t.Errorf("AlignUp(257,256) = %d, want 512", got)
	}
}
