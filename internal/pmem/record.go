package pmem

// Typed record helpers for fixed-size key/value pairs, the unit the Dash-EH
// bucket layer stores. A record is two native uint64 words; all accesses go
// through the atomic accessors so that optimistic lock-free readers racing a
// locked writer stay within the Go memory model (and clean under -race).

// RecordSize is the on-PM footprint of one KV record.
const RecordSize = 16

// KV is one fixed-size record: an 8-byte key and an 8-byte value.
type KV struct {
	Key   uint64
	Value uint64
}

// ReadKV atomically loads the record at a (8-aligned). The two word loads
// are individually atomic, not jointly; callers that need a consistent pair
// guard the read with a version check, as the bucket layer does.
func (p *Pool) ReadKV(a Addr) KV {
	return KV{Key: p.LoadU64(a), Value: p.LoadU64(a.Add(8))}
}

// QuietReadKV is ReadKV without accounting, for sequential scans that
// charged the record's cacheline once via TouchRead (one-charge-per-line
// discipline; see quiet.go).
func (p *Pool) QuietReadKV(a Addr) KV {
	return KV{Key: p.QuietLoadU64(a), Value: p.QuietLoadU64(a.Add(8))}
}

// WriteKV atomically stores the record at a (8-aligned). Value goes first so
// that a torn observation under a stale version never pairs the new key with
// the old value; visibility is in any case gated on the bucket's allocation
// bitmap, which is published only after the record is durable.
func (p *Pool) WriteKV(a Addr, kv KV) {
	p.StoreU64(a.Add(8), kv.Value)
	p.StoreU64(a, kv.Key)
}

// PersistKV flushes and fences the record at a.
func (p *Pool) PersistKV(a Addr) { p.Persist(a, RecordSize) }

// ReadKey atomically loads just the key word of the record at a.
func (p *Pool) ReadKey(a Addr) uint64 { return p.LoadU64(a) }

// ReadValue atomically loads just the value word of the record at a.
func (p *Pool) ReadValue(a Addr) uint64 { return p.LoadU64(a.Add(8)) }

// WriteValue atomically stores just the value word of the record at a, the
// in-place Update fast path.
func (p *Pool) WriteValue(a Addr, v uint64) { p.StoreU64(a.Add(8), v) }

// AlignUp rounds a up to the next multiple of align (a power of two).
func AlignUp(a Addr, align uint64) Addr {
	return Addr((uint64(a) + align - 1) &^ (align - 1))
}
