package pmem

import (
	"sync"
	"testing"
)

// TestStatsConcurrentAccessors is the -race audit for the traffic counters:
// accessors on many goroutines race StatsSnapshot and ResetStats on another,
// exactly what a benchmark harness does mid-run. Every counter increment and
// read must be atomic for this to pass under -race.
func TestStatsConcurrentAccessors(t *testing.T) {
	pool, err := NewPool(Options{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const opsPerWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint 64KiB region, touching many
			// distinct cachelines so all stats shards see traffic.
			base := Addr(CachelineSize) + Addr(w)<<16
			for i := 0; i < opsPerWorker; i++ {
				a := base.Add(uint64(i%1000) * 8)
				pool.WriteU64(a, uint64(i))
				_ = pool.LoadU64(a)
				pool.AddU64(a, 1)
				pool.Persist(a, 8)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		prev := pool.Stats()
		for i := 0; i < 500; i++ {
			cur := pool.Stats()
			d := cur.Sub(prev)
			// Saturating Sub guarantees windows never wrap even across the
			// concurrent resets below.
			if d.ReadLines > 1<<40 || d.WriteLines > 1<<40 {
				t.Errorf("window delta wrapped: %+v", d)
				return
			}
			prev = cur
			if i%100 == 99 {
				pool.ResetStats()
				prev = StatsSnapshot{}
			}
		}
	}()
	wg.Wait()
	<-done

	// After the last reset the workers may already have finished, so only
	// sanity-check that a fresh quiesced window counts exactly what runs.
	pool.ResetStats()
	pool.WriteU64(Addr(CachelineSize), 1)
	pool.Persist(Addr(CachelineSize), 8)
	s := pool.Stats()
	if s.WriteLines != 1 || s.FlushedLines != 1 || s.Fences != 1 {
		t.Errorf("quiesced window = %+v, want 1 write line, 1 flushed line, 1 fence", s)
	}
}

func TestStatsSubSaturates(t *testing.T) {
	a := StatsSnapshot{ReadLines: 5, WriteLines: 10, FlushedLines: 1, Fences: 2}
	b := StatsSnapshot{ReadLines: 7, WriteLines: 3, FlushedLines: 1, Fences: 9}
	d := a.Sub(b)
	want := StatsSnapshot{ReadLines: 0, WriteLines: 7, FlushedLines: 0, Fences: 0}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
}
