package pmem

import "sync/atomic"

// statsShards spreads the hot counters over independent cachelines so that
// accounting does not itself become the scalability bottleneck it measures.
// Reads, writes and flushes shard by the address they touch (addresses are
// well spread in a hash table); fences have no address and use a dedicated
// round-robin cursor, which is cold enough not to matter.
const statsShards = 64

type statsShard struct {
	readLines  atomic.Uint64
	writeLines atomic.Uint64
	flushes    atomic.Uint64
	fences     atomic.Uint64
	_          [32]byte // pad to a cacheline
}

// Stats accumulates PM traffic at cacheline granularity.
type Stats struct {
	shards      [statsShards]statsShard
	fenceCursor atomic.Uint32
}

func shardIndex(a Addr) int {
	l := uint64(a) / CachelineSize
	// Mix so that strided access patterns still spread across shards.
	l ^= l >> 7
	return int(l % statsShards)
}

func (s *Stats) addRead(a Addr, lines uint64)  { s.shards[shardIndex(a)].readLines.Add(lines) }
func (s *Stats) addWrite(a Addr, lines uint64) { s.shards[shardIndex(a)].writeLines.Add(lines) }
func (s *Stats) addFlush(a Addr, lines uint64) { s.shards[shardIndex(a)].flushes.Add(lines) }

func (s *Stats) addFence() {
	s.shards[s.fenceCursor.Add(1)%statsShards].fences.Add(1)
}

// StatsSnapshot is a point-in-time view of PM traffic.
//
// Snapshots may be taken while accessors run on other goroutines: every
// counter is an independent atomic, so a snapshot is race-free but not a
// single consistent cut — each counter is exact at some instant during the
// call, which is the strongest guarantee lock-free accounting can offer and
// all a windowed measurement needs (counters only grow between resets).
type StatsSnapshot struct {
	// ReadLines and WriteLines count cachelines touched by reads/writes.
	ReadLines, WriteLines uint64
	// FlushedLines counts cachelines flushed (CLWB), Fences counts SFENCEs.
	FlushedLines, Fences uint64
}

// MediaReadBlocks estimates 256-byte media blocks read, Optane's internal
// granularity: four cachelines per block, rounded up per access line.
func (s StatsSnapshot) MediaReadBlocks() uint64 {
	return (s.ReadLines*CachelineSize + MediaBlockSize - 1) / MediaBlockSize
}

// Sub returns s minus earlier, for windowed measurements. The subtraction
// saturates at zero per counter: if a concurrent reset fell between the two
// snapshots, a counter can be smaller in the later one, and a saturated zero
// is a sane reading where a wrapped ~2^64 would poison every per-op metric
// derived from the window.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return StatsSnapshot{
		ReadLines:    sat(s.ReadLines, earlier.ReadLines),
		WriteLines:   sat(s.WriteLines, earlier.WriteLines),
		FlushedLines: sat(s.FlushedLines, earlier.FlushedLines),
		Fences:       sat(s.Fences, earlier.Fences),
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	var out StatsSnapshot
	for i := range s.shards {
		sh := &s.shards[i]
		out.ReadLines += sh.readLines.Load()
		out.WriteLines += sh.writeLines.Load()
		out.FlushedLines += sh.flushes.Load()
		out.Fences += sh.fences.Load()
	}
	return out
}

// reset zeroes the counters shard by shard. Safe to call while accessors
// run — each store is atomic — but increments landing mid-reset may survive
// in not-yet-cleared shards or vanish in already-cleared ones; a mid-run
// reset therefore re-baselines "roughly now" rather than at one instant.
func (s *Stats) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.readLines.Store(0)
		sh.writeLines.Store(0)
		sh.flushes.Store(0)
		sh.fences.Store(0)
	}
}
