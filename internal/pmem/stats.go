package pmem

import "sync/atomic"

// statsShards spreads the hot counters over independent cachelines so that
// accounting does not itself become the scalability bottleneck it measures.
// Reads, writes and flushes shard by the address they touch (addresses are
// well spread in a hash table); fences have no address and use a dedicated
// round-robin cursor, which is cold enough not to matter.
const statsShards = 64

type statsShard struct {
	readLines  atomic.Uint64
	writeLines atomic.Uint64
	flushes    atomic.Uint64
	fences     atomic.Uint64
	_          [32]byte // pad to a cacheline
}

// Stats accumulates PM traffic at cacheline granularity.
type Stats struct {
	shards      [statsShards]statsShard
	fenceCursor atomic.Uint32
}

func shardIndex(a Addr) int {
	l := uint64(a) / CachelineSize
	// Mix so that strided access patterns still spread across shards.
	l ^= l >> 7
	return int(l % statsShards)
}

func (s *Stats) addRead(a Addr, lines uint64)  { s.shards[shardIndex(a)].readLines.Add(lines) }
func (s *Stats) addWrite(a Addr, lines uint64) { s.shards[shardIndex(a)].writeLines.Add(lines) }
func (s *Stats) addFlush(a Addr, lines uint64) { s.shards[shardIndex(a)].flushes.Add(lines) }

func (s *Stats) addFence() {
	s.shards[s.fenceCursor.Add(1)%statsShards].fences.Add(1)
}

// StatsSnapshot is a point-in-time view of PM traffic.
type StatsSnapshot struct {
	// ReadLines and WriteLines count cachelines touched by reads/writes.
	ReadLines, WriteLines uint64
	// FlushedLines counts cachelines flushed (CLWB), Fences counts SFENCEs.
	FlushedLines, Fences uint64
}

// MediaReadBlocks estimates 256-byte media blocks read, Optane's internal
// granularity: four cachelines per block, rounded up per access line.
func (s StatsSnapshot) MediaReadBlocks() uint64 {
	return (s.ReadLines*CachelineSize + MediaBlockSize - 1) / MediaBlockSize
}

// Sub returns s minus earlier, for windowed measurements.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		ReadLines:    s.ReadLines - earlier.ReadLines,
		WriteLines:   s.WriteLines - earlier.WriteLines,
		FlushedLines: s.FlushedLines - earlier.FlushedLines,
		Fences:       s.Fences - earlier.Fences,
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	var out StatsSnapshot
	for i := range s.shards {
		sh := &s.shards[i]
		out.ReadLines += sh.readLines.Load()
		out.WriteLines += sh.writeLines.Load()
		out.FlushedLines += sh.flushes.Load()
		out.Fences += sh.fences.Load()
	}
	return out
}

func (s *Stats) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.readLines.Store(0)
		sh.writeLines.Store(0)
		sh.flushes.Store(0)
		sh.fences.Store(0)
	}
}
