package pmem

import "dash/internal/obs"

// Stats accumulates PM traffic at cacheline granularity. Each counter is a
// goroutine-sharded obs.Counter, so accounting cannot itself become the
// scalability bottleneck it measures: increments land on goroutine-private
// cachelines and reads sum the shards.
type Stats struct {
	readLines    obs.Counter
	writeLines   obs.Counter
	flushes      obs.Counter
	fences       obs.Counter
	elidedFences obs.Counter
}

func (s *Stats) addRead(lines uint64)  { s.readLines.Add(lines) }
func (s *Stats) addWrite(lines uint64) { s.writeLines.Add(lines) }
func (s *Stats) addFlush(lines uint64) { s.flushes.Add(lines) }
func (s *Stats) addFence()             { s.fences.Inc() }
func (s *Stats) addElidedFence()       { s.elidedFences.Inc() }

// Register exposes the pool's traffic counters on an obs.Registry under
// pmem.* names, so the engine's metrics endpoint shows PM traffic alongside
// the table-level meters.
func (s *Stats) Register(r *obs.Registry) {
	r.Gauge("pmem.read_lines", func() int64 { return int64(s.readLines.Total()) })
	r.Gauge("pmem.write_lines", func() int64 { return int64(s.writeLines.Total()) })
	r.Gauge("pmem.flushed_lines", func() int64 { return int64(s.flushes.Total()) })
	r.Gauge("pmem.fences", func() int64 { return int64(s.fences.Total()) })
	r.Gauge("pmem.fences_elided", func() int64 { return int64(s.elidedFences.Total()) })
}

// StatsSnapshot is a point-in-time view of PM traffic.
//
// Snapshots may be taken while accessors run on other goroutines: every
// counter is an independent atomic, so a snapshot is race-free but not a
// single consistent cut — each counter is exact at some instant during the
// call, which is the strongest guarantee lock-free accounting can offer and
// all a windowed measurement needs (counters only grow between resets).
type StatsSnapshot struct {
	// ReadLines and WriteLines count cachelines touched by reads/writes.
	ReadLines, WriteLines uint64
	// FlushedLines counts cachelines flushed (CLWB), Fences counts SFENCEs.
	FlushedLines, Fences uint64
	// FencesElided counts fences absorbed by fence-batch windows
	// (Pool.BeginFenceBatch): ordering points the caller would have paid
	// without batching, covered instead by each window's single tail fence.
	FencesElided uint64
}

// MediaReadBlocks estimates 256-byte media blocks read, Optane's internal
// granularity: four cachelines per block, rounded up per access line.
func (s StatsSnapshot) MediaReadBlocks() uint64 {
	return (s.ReadLines*CachelineSize + MediaBlockSize - 1) / MediaBlockSize
}

// Sub returns s minus earlier, for windowed measurements. The subtraction
// saturates at zero per counter: if a concurrent reset fell between the two
// snapshots, a counter can be smaller in the later one, and a saturated zero
// is a sane reading where a wrapped ~2^64 would poison every per-op metric
// derived from the window.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return StatsSnapshot{
		ReadLines:    sat(s.ReadLines, earlier.ReadLines),
		WriteLines:   sat(s.WriteLines, earlier.WriteLines),
		FlushedLines: sat(s.FlushedLines, earlier.FlushedLines),
		Fences:       sat(s.Fences, earlier.Fences),
		FencesElided: sat(s.FencesElided, earlier.FencesElided),
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		ReadLines:    s.readLines.Total(),
		WriteLines:   s.writeLines.Total(),
		FlushedLines: s.flushes.Total(),
		Fences:       s.fences.Total(),
		FencesElided: s.elidedFences.Total(),
	}
}

// reset zeroes the counters shard by shard. Safe to call while accessors
// run — each store is atomic — but increments landing mid-reset may survive
// in not-yet-cleared shards or vanish in already-cleared ones; a mid-run
// reset therefore re-baselines "roughly now" rather than at one instant.
func (s *Stats) reset() {
	s.readLines.Reset()
	s.writeLines.Reset()
	s.flushes.Reset()
	s.fences.Reset()
	s.elidedFences.Reset()
}
