package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dash/internal/core"
	"dash/internal/obs"
)

// Frontend: the batched asynchronous request pipeline in front of Shards.
//
// Clients submit Requests; Submit routes each to its key's shard queue and
// returns immediately, so one client can keep many requests in flight
// (pipelining). One executor goroutine per shard drains its queue in
// batches of up to the configured batch size and runs each batch inside
// the shard pool's fence-batch window (pmem.Pool.BeginFenceBatch): every
// per-operation fence inside the batch is elided and one ordering fence at
// the batch tail covers them all — the paper's selective-persistence
// economics applied across requests instead of within one.
//
// Durability of acknowledgement is preserved exactly: no request in a
// batch is completed (its Wait unblocked) until after the tail fence, so
// an acknowledged write is durable in its shard's pool even though it
// shared its fence with its batch-mates. The single-writer requirement of
// the fence window holds by construction — the shard's executor goroutine
// is the only goroutine executing operations on that shard.

// Op enumerates the request kinds the frontend accepts.
type Op uint8

const (
	// OpGet looks a key up.
	OpGet Op = iota
	// OpInsert inserts a fresh key.
	OpInsert
	// OpUpdate overwrites an existing key's value.
	OpUpdate
	// OpDelete removes a key.
	OpDelete
)

// ErrShardDown is wrapped into the results of requests that reached a
// shard whose executor died mid-batch (a simulated crash unwound it); none
// of those requests was acknowledged, so none is durable.
var ErrShardDown = errors.New("service: shard executor down")

// ErrClosed is wrapped into results of requests submitted after Close.
var ErrClosed = errors.New("service: frontend closed")

// Result is a completed request's outcome. Err carries engine errors
// (core.ErrKeyExists and friends) and pipeline failures (ErrShardDown,
// ErrClosed); Found distinguishes hit from miss for Get/Update/Delete.
type Result struct {
	// Value is the value read by a uint64 Get.
	Value uint64
	// ValueB is the value read by a []byte Get, appended into the request's
	// ValueB buffer.
	ValueB []byte
	// Found reports whether the key existed (Get hit, Update/Delete found).
	Found bool
	// Err is the operation or pipeline error, nil on success.
	Err error
}

// Request is one pipelined operation. Fill Op, Key and Value (or KeyB and
// ValueB for the variable-length API — a non-nil KeyB selects it), Submit,
// then Wait. A Request may be reused for a new Submit after Wait returns;
// the buffers it carries must not be touched between Submit and Wait.
type Request struct {
	// Op is the operation kind.
	Op Op
	// Key is the uint64 key (ignored when KeyB is non-nil).
	Key uint64
	// Value is the uint64 value for Insert/Update.
	Value uint64
	// KeyB, when non-nil, selects the variable-length API with this key.
	KeyB []byte
	// ValueB is the variable-length value for Insert/Update, and the reuse
	// buffer a variable-length Get appends its result into.
	ValueB []byte

	res  Result
	done chan struct{}
}

// Wait blocks until the request completes and returns its result. Must be
// called exactly once per Submit, by the submitting client.
func (r *Request) Wait() Result {
	<-r.done
	return r.res
}

// Frontend is the batched async front door to a Shards layer. Construct
// with NewFrontend, Submit from any number of client goroutines, Close
// when done (before closing the Shards).
type Frontend struct {
	shards *Shards
	batch  int
	queues []chan *Request
	dead   []atomic.Bool // shard executor unwound by a crash
	wg     sync.WaitGroup
	closed atomic.Bool
	// closeMu orders Submit's enqueue against Close's channel close so a
	// racing Submit fails cleanly instead of sending on a closed channel.
	closeMu sync.RWMutex

	reg        *obs.Registry
	batchSize  *obs.Histogram
	flushSaved *obs.Counter
	shardOps   []*obs.Counter
}

// NewFrontend starts one executor goroutine per shard, each batching up to
// batch requests per fence window (batch < 1 means 1: unbatched, one fence
// per write op — the baseline configuration benchmarks compare against).
func NewFrontend(s *Shards, batch int) *Frontend {
	if batch < 1 {
		batch = 1
	}
	f := &Frontend{
		shards: s,
		batch:  batch,
		queues: make([]chan *Request, s.N()),
		dead:   make([]atomic.Bool, s.N()),
	}
	f.initObs()
	qcap := 4 * batch
	if qcap < 16 {
		qcap = 16
	}
	for i := range f.queues {
		f.queues[i] = make(chan *Request, qcap)
		f.wg.Add(1)
		go f.run(i)
	}
	return f
}

// initObs builds the frontend's meter registry, following the engine's
// naming convention (core/obs.go) under the service.* prefix.
func (f *Frontend) initObs() {
	reg := obs.NewRegistry()
	f.reg = reg
	f.batchSize = reg.Histogram("service.batch.size")
	f.flushSaved = reg.Counter("service.batch.flush_saved")
	f.shardOps = make([]*obs.Counter, f.shards.N())
	for i := range f.shardOps {
		f.shardOps[i] = reg.Counter(fmt.Sprintf("service.shard.%d.ops", i))
	}
	reg.Gauge("service.queue.depth", func() int64 {
		var n int64
		for _, q := range f.queues {
			n += int64(len(q))
		}
		return n
	})
	// Imbalance in permille of excess over a perfectly balanced spread:
	// (max shard ops / mean shard ops − 1) × 1000; 0 = perfectly balanced.
	reg.Gauge("service.shard.imbalance", func() int64 {
		return int64(1000 * f.Imbalance())
	})
}

// Metrics returns the frontend's meter registry (service.batch.size,
// service.batch.flush_saved, service.shard.imbalance, service.queue.depth,
// per-shard op counters).
func (f *Frontend) Metrics() *obs.Registry { return f.reg }

// Imbalance returns (max shard ops / mean shard ops) − 1 over the ops
// executed so far: 0 for a perfectly even spread, 1.0 when the hottest
// shard carries twice the mean.
func (f *Frontend) Imbalance() float64 {
	var max, sum uint64
	for _, c := range f.shardOps {
		t := c.Total()
		sum += t
		if t > max {
			max = t
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(f.shardOps))
	return float64(max)/mean - 1
}

// Submit routes r to its shard's queue and returns once enqueued. The
// request completes asynchronously; Wait blocks for it. Safe from any
// number of goroutines.
func (f *Frontend) Submit(r *Request) {
	if r.done == nil {
		r.done = make(chan struct{}, 1)
	}
	r.res = Result{}
	var shard int
	if r.KeyB != nil {
		shard = f.shards.RouteB(r.KeyB)
	} else {
		shard = f.shards.Route(r.Key)
	}
	f.closeMu.RLock()
	if f.closed.Load() || f.dead[shard].Load() {
		f.closeMu.RUnlock()
		r.res.Err = f.downErr(shard)
		r.done <- struct{}{}
		return
	}
	f.queues[shard] <- r
	f.closeMu.RUnlock()
}

func (f *Frontend) downErr(shard int) error {
	if f.closed.Load() {
		return fmt.Errorf("service: shard %d: %w", shard, ErrClosed)
	}
	return fmt.Errorf("service: shard %d: %w", shard, ErrShardDown)
}

// Close drains and stops every shard executor. Pending requests complete
// first; requests submitted after Close fail with ErrClosed. Idempotent.
func (f *Frontend) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.closeMu.Lock()
	for _, q := range f.queues {
		close(q)
	}
	f.closeMu.Unlock()
	f.wg.Wait()
}

// run is shard's executor loop: block for one request, then opportunistically
// drain up to batch−1 more without blocking, and execute them as one
// fence-amortized batch. Group size adapts to load by itself — an idle
// service degenerates to batch size 1 with no added latency, a loaded one
// rides the queue depth up to the cap.
func (f *Frontend) run(shard int) {
	defer f.wg.Done()
	q := f.queues[shard]
	buf := make([]*Request, 0, f.batch)
	for {
		r, ok := <-q
		if !ok {
			return
		}
		buf = append(buf[:0], r)
	fill:
		for len(buf) < f.batch {
			select {
			case r2, ok2 := <-q:
				if !ok2 {
					f.execBatch(shard, buf)
					return
				}
				buf = append(buf, r2)
			default:
				break fill
			}
		}
		if !f.execBatch(shard, buf) {
			f.failPending(shard)
			return
		}
	}
}

// failPending takes over a dead shard's queue, failing every request that
// arrives (or was already enqueued) until Close closes the queue — so no
// racing Submit ever blocks on a shard with no executor.
func (f *Frontend) failPending(shard int) {
	for r := range f.queues[shard] {
		r.res = Result{Err: f.downErr(shard)}
		r.done <- struct{}{}
	}
}

// execBatch executes one batch inside the shard pool's fence window and
// acknowledges every request only after the tail fence. Returns false when
// the batch unwound via panic — the simulated-crash path: the pool's state
// is post-crash, no request in the batch was acknowledged as successful,
// and the shard is marked dead.
func (f *Frontend) execBatch(shard int, reqs []*Request) (alive bool) {
	tb := f.shards.Table(shard)
	pool := f.shards.Pool(shard)
	defer func() {
		if p := recover(); p != nil {
			f.dead[shard].Store(true)
			pool.AbortFenceBatch()
			err := fmt.Errorf("service: shard %d crashed mid-batch (%v): %w", shard, p, ErrShardDown)
			for _, r := range reqs {
				r.res = Result{Err: err}
				r.done <- struct{}{}
			}
			alive = false
		}
	}()
	pool.BeginFenceBatch()
	for _, r := range reqs {
		r.res = f.exec(tb, r)
	}
	elided := pool.EndFenceBatch()
	if elided > 0 {
		f.flushSaved.Add(elided - 1)
	}
	f.batchSize.Record(int64(len(reqs)))
	f.shardOps[shard].Add(uint64(len(reqs)))
	// Acknowledge strictly after the tail fence: every acknowledged write
	// in the batch is durable.
	for _, r := range reqs {
		r.done <- struct{}{}
	}
	return true
}

// exec applies one request to the shard's table.
func (f *Frontend) exec(tb *core.Table, r *Request) Result {
	if r.KeyB != nil {
		switch r.Op {
		case OpGet:
			v, ok := tb.GetBAppend(r.ValueB[:0], r.KeyB)
			return Result{ValueB: v, Found: ok}
		case OpInsert:
			return Result{Err: tb.InsertB(r.KeyB, r.ValueB)}
		case OpUpdate:
			ok, err := tb.UpdateB(r.KeyB, r.ValueB)
			return Result{Found: ok, Err: err}
		case OpDelete:
			return Result{Found: tb.DeleteB(r.KeyB)}
		}
		return Result{Err: fmt.Errorf("service: unknown op %d", r.Op)}
	}
	switch r.Op {
	case OpGet:
		v, ok := tb.Get(r.Key)
		return Result{Value: v, Found: ok}
	case OpInsert:
		return Result{Err: tb.Insert(r.Key, r.Value)}
	case OpUpdate:
		ok, err := tb.Update(r.Key, r.Value)
		return Result{Found: ok, Err: err}
	case OpDelete:
		return Result{Found: tb.Delete(r.Key)}
	}
	return Result{Err: fmt.Errorf("service: unknown op %d", r.Op)}
}
