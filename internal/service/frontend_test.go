package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dash/internal/core"
	"dash/internal/pmem"
)

// The frontend must reduce real fences versus unbatched execution of the
// same pipelined write load, while acknowledging every request.
func TestFrontendBatchReducesFences(t *testing.T) {
	const ops = 2048
	run := func(batch int) (fences uint64, saved uint64) {
		s := newShards(t, 1, 3)
		defer s.Close()
		fe := NewFrontend(s, batch)
		base := s.Pool(0).Stats()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				reqs := make([]*Request, 8) // pipeline window of 8
				for i := range reqs {
					reqs[i] = &Request{}
				}
				for i := 0; i < ops/4; i++ {
					r := reqs[i%len(reqs)]
					if i >= len(reqs) {
						if res := r.Wait(); res.Err != nil {
							t.Errorf("insert: %v", res.Err)
						}
					}
					r.Op = OpInsert
					r.Key = uint64(w)<<32 | uint64(i)
					r.Value = uint64(i)
					fe.Submit(r)
				}
				for _, r := range reqs {
					r.Wait()
				}
			}(w)
		}
		wg.Wait()
		fe.Close()
		win := s.Pool(0).Stats().Sub(base)
		return win.Fences, fe.Metrics().Snapshot().Counters["service.batch.flush_saved"]
	}

	unbatched, _ := run(1)
	batched, saved := run(16)
	if batched >= unbatched {
		t.Fatalf("batch=16 fences %d, want < batch=1 fences %d", batched, unbatched)
	}
	if saved == 0 {
		t.Fatal("flush_saved = 0 with batch=16, want > 0")
	}
}

// Pipelined mixed operations across 4 shards under -race, with pool sizes
// and key volume chosen so shards split segments concurrently while reads,
// updates and deletes run against them.
func TestFrontendPipelinedMixedOpsRace(t *testing.T) {
	s, err := New(Config{Shards: 4, PoolSize: 16 << 20, Seed: 21, InitialDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fe := NewFrontend(s, 8)
	defer fe.Close()

	const (
		clients = 8
		ops     = 4000 // enough inserts per client to force splits on every shard
	)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			window := make([]*Request, 8)
			kinds := make([]int, len(window))
			keys := make([]uint64, len(window))
			for i := range window {
				window[i] = &Request{}
			}
			check := func(slot int) {
				res := window[slot].Wait()
				switch kinds[slot] {
				case 0: // insert of a fresh key must succeed
					if res.Err != nil {
						t.Errorf("client %d insert %d: %v", w, keys[slot], res.Err)
					}
				case 1: // read-back of an inserted key must hit with its value
					if res.Err != nil || !res.Found || res.Value != keys[slot]*2+1 {
						t.Errorf("client %d read %d: found=%v v=%d err=%v", w, keys[slot], res.Found, res.Value, res.Err)
					}
				case 2: // update of an inserted key must find it
					if res.Err != nil || !res.Found {
						t.Errorf("client %d update %d: found=%v err=%v", w, keys[slot], res.Found, res.Err)
					}
				case 3: // delete of an updated key must find it
					if res.Err != nil || !res.Found {
						t.Errorf("client %d delete %d: found=%v err=%v", w, keys[slot], res.Found, res.Err)
					}
				}
			}
			submit := func(slot int, kind int, key uint64, op Op, val uint64) {
				if window[slot].done != nil {
					check(slot)
				}
				kinds[slot], keys[slot] = kind, key
				r := window[slot]
				r.Op, r.Key, r.Value = op, key, val
				fe.Submit(r)
			}
			slot := 0
			for i := 0; i < ops; i++ {
				key := uint64(w)<<40 | uint64(i)
				// insert → read → (every 4th) update → delete, interleaved
				// through the pipeline so several are in flight at once.
				submit(slot, 0, key, OpInsert, key*2+1)
				slot = (slot + 1) % len(window)
				submit(slot, 1, key, OpGet, 0)
				slot = (slot + 1) % len(window)
				if i%4 == 0 {
					submit(slot, 2, key, OpUpdate, key*2+2)
					slot = (slot + 1) % len(window)
					submit(slot, 3, key, OpDelete, 0)
					slot = (slot + 1) % len(window)
				}
			}
			for i := range window {
				if window[i].done != nil {
					check(i)
				}
			}
		}(w)
	}
	wg.Wait()

	// Every client inserted ops keys and deleted every 4th.
	want := int64(clients * (ops - (ops+3)/4))
	if got := s.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	var splits uint64
	for i := 0; i < s.N(); i++ {
		splits += s.Table(i).Stats().Splits
	}
	if splits == 0 {
		t.Fatal("no splits happened; grow ops so the race covers concurrent splits")
	}
}

// A read-back after the race above also exercises Get on the uint64 path
// through Submit from the test goroutine (single request, no pipeline).
func TestFrontendSingleRequestReuse(t *testing.T) {
	s := newShards(t, 2, 8)
	defer s.Close()
	fe := NewFrontend(s, 4)
	defer fe.Close()
	r := &Request{}
	for k := uint64(0); k < 100; k++ {
		r.Op, r.Key, r.Value = OpInsert, k, k+7
		fe.Submit(r)
		if res := r.Wait(); res.Err != nil {
			t.Fatalf("insert %d: %v", k, res.Err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		r.Op, r.Key = OpGet, k
		fe.Submit(r)
		if res := r.Wait(); !res.Found || res.Value != k+7 {
			t.Fatalf("get %d: found=%v v=%d", k, res.Found, res.Value)
		}
	}
}

// crashNow is the sentinel a flush hook panics with after simulating power
// loss mid-batch.
type crashNow struct{}

// Crash in the middle of a batch: the shard dies, its batch fails with
// ErrShardDown (nothing in it was acknowledged), other shards keep serving,
// and reopening every shard recovers exactly the acknowledged writes.
func TestFrontendCrashMidBatchRecovery(t *testing.T) {
	cfg := Config{Shards: 2, PoolSize: 16 << 20, Seed: 17, TrackCrashes: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(s, 8)

	// Preload through the frontend; all acknowledged, so all must survive.
	acked := make(map[uint64]uint64)
	r := &Request{}
	for k := uint64(0); k < 2000; k++ {
		r.Op, r.Key, r.Value = OpInsert, k, k*5+1
		fe.Submit(r)
		if res := r.Wait(); res.Err != nil {
			t.Fatalf("preload %d: %v", k, res.Err)
		}
		acked[k] = k*5 + 1
	}

	// Arm a countdown crash on shard 0's pool: power loss a few hundred
	// flushes into the post-preload write stream, mid-batch.
	var left atomic.Int32
	left.Store(300)
	crashPool := s.Pool(0)
	crashPool.SetFlushHook(func() {
		if left.Add(-1) == 0 {
			crashPool.Crash()
			panic(crashNow{})
		}
	})

	// Drive pipelined inserts until shard 0 reports down. Requests that
	// completed without error before the crash are acknowledged — the
	// recovery oracle. Unacknowledged (failed) ones must NOT be present
	// after reopen... they may be partially written but never both
	// published and fenced as a batch; the engine's own crash consistency
	// covers slot-level atomicity, the frontend only promises "no ack
	// before tail fence".
	var sawDown bool
	window := make([]*Request, 8)
	wkeys := make([]uint64, len(window))
	for i := range window {
		window[i] = &Request{}
	}
	harvest := func(slot int) {
		res := window[slot].Wait()
		if res.Err == nil {
			acked[wkeys[slot]] = wkeys[slot]*5 + 1
		} else if errors.Is(res.Err, ErrShardDown) {
			sawDown = true
		} else if !errors.Is(res.Err, core.ErrKeyExists) {
			t.Errorf("unexpected error: %v", res.Err)
		}
	}
	for i := 0; i < 20000 && !sawDown; i++ {
		k := uint64(1)<<40 | uint64(i)
		slot := i % len(window)
		if i >= len(window) {
			harvest(slot)
		}
		wkeys[slot] = k
		w := window[slot]
		w.Op, w.Key, w.Value = OpInsert, k, k*5+1
		fe.Submit(w)
	}
	for i := range window {
		if window[i].done != nil {
			harvest(i)
		}
	}
	if !sawDown {
		t.Fatal("crash hook never fired; raise the insert budget")
	}
	crashPool.SetFlushHook(nil)

	// A fresh submit routed to the dead shard fails fast with ErrShardDown.
	probeDead := func() bool {
		for k := uint64(1) << 41; ; k++ {
			if s.Route(k) != 0 {
				continue
			}
			p := &Request{Op: OpInsert, Key: k, Value: 1}
			fe.Submit(p)
			res := p.Wait()
			return errors.Is(res.Err, ErrShardDown)
		}
	}
	if !probeDead() {
		t.Fatal("dead shard accepted a request without ErrShardDown")
	}
	fe.Close()

	// Reopen all shards: shard 1 closes cleanly, shard 0 reopens its crash
	// image. Every acknowledged write must be there.
	s.Table(1).Close()
	pools := []*pmem.Pool{s.Pool(0), s.Pool(1)}
	re, err := Open(pools, Config{Seed: cfg.Seed})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	for k, want := range acked {
		v, ok := re.Table(re.Route(k)).Get(k)
		if !ok {
			t.Fatalf("acknowledged key %d lost after crash", k)
		}
		if v != want {
			t.Fatalf("key %d = %d after crash, want %d", k, v, want)
		}
	}
	// The recovered service keeps working end to end.
	fe2 := NewFrontend(re, 8)
	defer fe2.Close()
	p := &Request{Op: OpInsert, Key: 1 << 50, Value: 9}
	fe2.Submit(p)
	if res := p.Wait(); res.Err != nil {
		t.Fatalf("post-recovery insert: %v", res.Err)
	}
}

// Submissions racing Close must fail cleanly with ErrClosed, never panic on
// a closed channel.
func TestFrontendSubmitCloseRace(t *testing.T) {
	s := newShards(t, 2, 4)
	defer s.Close()
	fe := NewFrontend(s, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r := &Request{Op: OpInsert, Key: uint64(w)<<32 | uint64(i), Value: 1}
				fe.Submit(r)
				res := r.Wait()
				if res.Err != nil && !errors.Is(res.Err, ErrClosed) {
					t.Errorf("submit during close: %v", res.Err)
					return
				}
				if res.Err != nil {
					return
				}
			}
		}(w)
	}
	fe.Close()
	wg.Wait()
}

// The obs meters exist under the documented names and move.
func TestFrontendMeters(t *testing.T) {
	s := newShards(t, 2, 6)
	defer s.Close()
	fe := NewFrontend(s, 4)
	r := &Request{}
	for k := uint64(0); k < 200; k++ {
		r.Op, r.Key, r.Value = OpInsert, k, k
		fe.Submit(r)
		r.Wait()
	}
	fe.Close()
	snap := fe.Metrics().Snapshot()
	if snap.Hists["service.batch.size"].Count == 0 {
		t.Fatal("service.batch.size never recorded")
	}
	var total uint64
	for i := 0; i < s.N(); i++ {
		total += snap.Counters[fmt.Sprintf("service.shard.%d.ops", i)]
	}
	if total != 200 {
		t.Fatalf("per-shard op counters sum to %d, want 200", total)
	}
	if _, ok := snap.Gauges["service.shard.imbalance"]; !ok {
		t.Fatal("service.shard.imbalance gauge missing")
	}
	if _, ok := snap.Gauges["service.queue.depth"]; !ok {
		t.Fatal("service.queue.depth gauge missing")
	}
}
