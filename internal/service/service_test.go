package service

import (
	"fmt"
	"testing"

	"dash/internal/pmem"
)

func newShards(t *testing.T, n int, seed uint64) *Shards {
	t.Helper()
	s, err := New(Config{Shards: n, PoolSize: 16 << 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Routing must be a pure function of (seed, key): identical across calls and
// across Shards instances built from the same seed, for both key forms.
func TestRoutingDeterministic(t *testing.T) {
	a := newShards(t, 4, 7)
	b := newShards(t, 4, 7)
	defer a.Close()
	defer b.Close()
	for k := uint64(0); k < 4096; k++ {
		if a.Route(k) != a.Route(k) || a.Route(k) != b.Route(k) {
			t.Fatalf("Route(%d) not deterministic: %d %d %d", k, a.Route(k), a.Route(k), b.Route(k))
		}
		kb := []byte(fmt.Sprintf("key-%d", k))
		if a.RouteB(kb) != b.RouteB(kb) {
			t.Fatalf("RouteB(%q) differs across instances", kb)
		}
	}
	if got := a.Route(1); got < 0 || got >= 4 {
		t.Fatalf("Route out of range: %d", got)
	}
}

// Each key lives only on its routed shard: inserting every key via routing
// and probing every *other* shard must miss everywhere. This is the
// key-space disjointness the tier depends on — a key visible on two shards
// would make Count and deletes ambiguous.
func TestShardKeySpaceDisjoint(t *testing.T) {
	s := newShards(t, 4, 42)
	defer s.Close()
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		if err := s.Table(s.Route(k)).Insert(k, k+1); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(0); k < keys; k++ {
		home := s.Route(k)
		for i := 0; i < s.N(); i++ {
			v, ok := s.Table(i).Get(k)
			if i == home {
				if !ok || v != k+1 {
					t.Fatalf("key %d missing on home shard %d", k, home)
				}
			} else if ok {
				t.Fatalf("key %d visible on shard %d, home is %d", k, i, home)
			}
		}
	}
	if got := s.Count(); got != keys {
		t.Fatalf("Count = %d, want %d", got, keys)
	}
}

func TestShardCountValidation(t *testing.T) {
	if _, err := New(Config{Shards: 3, PoolSize: 8 << 20}); err == nil {
		t.Fatal("Shards=3 accepted, want power-of-two error")
	}
	s, err := New(Config{PoolSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.N() != 1 {
		t.Fatalf("default shard count = %d, want 1", s.N())
	}
	if sh := s.Route(12345); sh != 0 {
		t.Fatalf("single-shard Route = %d, want 0", sh)
	}
}

// Reopening the same pools with the same seed must find every key on the
// same shard (table hash seeds are persistent; the routing seed re-derives
// from the config seed).
func TestOpenRestartRoutesIdentically(t *testing.T) {
	s := newShards(t, 2, 99)
	const keys = 2048
	for k := uint64(0); k < keys; k++ {
		if err := s.Table(s.Route(k)).Insert(k, k*3); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	pools := []*pmem.Pool{s.Pool(0), s.Pool(1)}
	s.Close()

	r, err := Open(pools, Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k := uint64(0); k < keys; k++ {
		v, ok := r.Table(r.Route(k)).Get(k)
		if !ok || v != k*3 {
			t.Fatalf("key %d not on its routed shard after reopen (ok=%v v=%d)", k, ok, v)
		}
	}
}

// The fence-batch window is deterministic at the pool level: N inserts
// inside one window cost exactly one real fence, with every per-op ordering
// point elided (vs one-plus fences per insert outside a window). This is the
// primitive the frontend's batch amortization stands on.
func TestFenceBatchWindowDeterministic(t *testing.T) {
	const n = 64
	s := newShards(t, 1, 5)
	defer s.Close()
	pool, tb := s.Pool(0), s.Table(0)

	// Unbatched: every insert pays its own fences.
	base := pool.Stats()
	for k := uint64(0); k < n; k++ {
		if err := tb.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	unbatched := pool.Stats().Sub(base)
	if unbatched.Fences < n {
		t.Fatalf("unbatched fences = %d, want >= %d (one per insert)", unbatched.Fences, n)
	}

	// Batched: the same work inside one window pays one tail fence.
	base = pool.Stats()
	pool.BeginFenceBatch()
	for k := uint64(n); k < 2*n; k++ {
		if err := tb.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	elided := pool.EndFenceBatch()
	batched := pool.Stats().Sub(base)
	if batched.Fences != 1 {
		t.Fatalf("batched fences = %d, want exactly 1 (the tail)", batched.Fences)
	}
	if elided < n {
		t.Fatalf("elided = %d, want >= %d (every per-op fence)", elided, n)
	}
	if batched.FencesElided != elided {
		t.Fatalf("stats elided %d != EndFenceBatch %d", batched.FencesElided, elided)
	}
	if batched.FlushedLines < n {
		t.Fatalf("batched flushed lines = %d, want >= %d (flushes are not elided)", batched.FlushedLines, n)
	}
}

// Per-shard epoch managers isolate reclamation stalls: a guard pinned on one
// shard must not stop the other shard from reclaiming retired blobs. This is
// what the explicit core.Deps wiring buys — one manager per table, never
// shared ambient state.
func TestEpochPinningIsolatedPerShard(t *testing.T) {
	s := newShards(t, 2, 11)
	defer s.Close()

	// Pin shard 0: an in-flight reader that never exits.
	guard := s.Epoch(0).Enter()

	// Retire work on both shards: indirect records (16-byte keys/values
	// force blob storage) whose deletes defer the blob free to the epoch.
	for sh := 0; sh < 2; sh++ {
		tb := s.Table(sh)
		for i := 0; i < 256; i++ {
			k := []byte(fmt.Sprintf("pin-%d-key-%03d", sh, i))
			v := []byte(fmt.Sprintf("pin-%d-val-%03d", sh, i))
			if err := tb.InsertB(k, v); err != nil {
				t.Fatalf("shard %d insert %d: %v", sh, i, err)
			}
			if !tb.DeleteB(k) {
				t.Fatalf("shard %d delete %d missed", sh, i)
			}
		}
		s.Epoch(sh).Drain()
	}

	if p := s.Epoch(1).Pending(); p != 0 {
		t.Fatalf("unpinned shard still has %d pending retires after drain", p)
	}
	if p := s.Epoch(0).Pending(); p == 0 {
		t.Fatal("pinned shard reclaimed everything despite an active guard")
	}

	// Releasing the guard unblocks shard 0's reclamation.
	guard.Exit()
	s.Epoch(0).Drain()
	if p := s.Epoch(0).Pending(); p != 0 {
		t.Fatalf("pinned shard still has %d pending retires after guard exit", p)
	}
}
