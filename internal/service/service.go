// Package service is the sharded KV service tier over the Dash-EH engine:
// the shape every production embedding of Dash ends up with (a parameter
// server, a feature store) — N fully independent tables behind one batched,
// pipelined front-end.
//
// Two layers:
//
//   - Shards — N independent core.Tables, each with its own pmem.Pool,
//     epoch manager and record log (core.Deps makes that wiring explicit).
//     Keys route to shards by the high bits of a *routing* hash whose seed
//     differs from every per-table hash seed, so shard routing and each
//     table's MSB directory indexing draw from independent bit streams.
//   - Frontend — an asynchronous request pipeline (frontend.go): clients
//     submit Get/Insert/Update/Delete requests over per-shard channels, one
//     executor goroutine per shard drains them in batches, and each write
//     batch runs inside a pmem fence-batch window, paying one ordering
//     fence per batch tail instead of one per operation.
//
// Nothing above a single table's crash consistency changes: each shard is a
// complete, independently recoverable Dash table, and a batch is
// acknowledged only after its tail fence, so every acknowledged operation
// is durable in its shard's pool.
package service

import (
	"fmt"
	"math/bits"

	"dash/internal/core"
	"dash/internal/epoch"
	"dash/internal/hashfn"
	"dash/internal/pmem"
)

// routingSeedSalt decorrelates the shard-routing hash from the per-table
// hashes. Routing MUST NOT reuse a table's hash seed: shard selection takes
// the hash's top bits, and so does each table's MSB directory index — with
// a shared seed every key inside one shard would carry the same top bits,
// collapsing the per-shard directories onto a fraction of their entries.
// With an independent seed the two decisions are uncorrelated.
const routingSeedSalt = 0x737663726f757465 // "svcroute"

// tableSeedSalt derives each shard table's hash seed from the service seed
// and shard index; the odd multiplier keeps seeds distinct and nonzero.
const tableSeedSalt = 0x9e3779b97f4a7c15

// Config configures New.
type Config struct {
	// Shards is the shard count; it must be a power of two so routing can
	// take the top bits of the routing hash. Defaults to 1.
	Shards int
	// PoolSize is the PM pool capacity per shard, in bytes.
	PoolSize uint64
	// Seed seeds both the routing hash and (derived per shard) each table's
	// hash. Reopening the same images requires the same seed, because the
	// routing seed is DRAM-only state.
	Seed uint64
	// InitialDepth is each shard table's starting global depth (see
	// core.Options).
	InitialDepth uint8
	// Model, when non-nil, is the cost model installed on every shard's
	// pool. Sharing one model across shards shares its bandwidth clocks,
	// modeling shards that live on one socket's DIMMs.
	Model *pmem.CostModel
	// TrackCrashes enables crash tracking on every shard's pool (see
	// pmem.Options).
	TrackCrashes bool
}

// Shards is the sharded table layer: N independent core.Tables with
// pool-per-shard isolation. Routing is deterministic in the config seed, so
// a key always lands on the same shard across runs and restarts.
type Shards struct {
	routingSeed uint64
	shift       uint // 64 - log2(n); 64 means a single shard
	tables      []*core.Table
	pools       []*pmem.Pool
	ems         []*epoch.Manager
}

// New creates cfg.Shards fresh shards, each a newly formatted table in its
// own pool with its own explicitly constructed epoch manager.
func New(cfg Config) (*Shards, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 0 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("service: shard count %d is not a power of two", n)
	}
	s := &Shards{
		routingSeed: cfg.Seed ^ routingSeedSalt,
		shift:       64 - uint(bits.TrailingZeros(uint(n))),
		tables:      make([]*core.Table, n),
		pools:       make([]*pmem.Pool, n),
		ems:         make([]*epoch.Manager, n),
	}
	for i := 0; i < n; i++ {
		pool, err := pmem.NewPool(pmem.Options{
			Size:         cfg.PoolSize,
			CostModel:    cfg.Model,
			TrackCrashes: cfg.TrackCrashes,
		})
		if err != nil {
			return nil, fmt.Errorf("service: shard %d pool: %w", i, err)
		}
		em := epoch.NewManager()
		tb, err := core.CreateWith(pool, core.Deps{Epoch: em}, core.Options{
			InitialDepth: cfg.InitialDepth,
			Seed:         tableSeed(cfg.Seed, i),
		})
		if err != nil {
			return nil, fmt.Errorf("service: shard %d create: %w", i, err)
		}
		s.pools[i] = pool
		s.tables[i] = tb
		s.ems[i] = em
	}
	return s, nil
}

// Open revives shards from existing pools — the restart path. The pools
// must hold the durable images of a Shards created with the same cfg.Seed
// (each table's own hash seed is persistent in its root; only the routing
// seed is re-derived), in the same order; the shard count is len(pools).
func Open(pools []*pmem.Pool, cfg Config) (*Shards, error) {
	n := len(pools)
	if n == 0 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("service: shard count %d is not a power of two", n)
	}
	s := &Shards{
		routingSeed: cfg.Seed ^ routingSeedSalt,
		shift:       64 - uint(bits.TrailingZeros(uint(n))),
		tables:      make([]*core.Table, n),
		pools:       make([]*pmem.Pool, n),
		ems:         make([]*epoch.Manager, n),
	}
	for i, pool := range pools {
		em := epoch.NewManager()
		tb, err := core.OpenWith(pool, core.Deps{Epoch: em})
		if err != nil {
			return nil, fmt.Errorf("service: shard %d open: %w", i, err)
		}
		s.pools[i] = pool
		s.tables[i] = tb
		s.ems[i] = em
	}
	return s, nil
}

// tableSeed derives shard i's table hash seed: distinct per shard, nonzero
// (|1), and decorrelated from the routing seed by construction (the routing
// hash uses seed^routingSeedSalt, never a table seed).
func tableSeed(seed uint64, i int) uint64 {
	return (seed+uint64(i)+1)*tableSeedSalt | 1
}

// N returns the shard count.
func (s *Shards) N() int { return len(s.tables) }

// Route returns the shard index owning a uint64 key: the top log2(N) bits
// of the routing hash.
func (s *Shards) Route(key uint64) int {
	if s.shift == 64 {
		return 0
	}
	return int(hashfn.HashU64(key, s.routingSeed) >> s.shift)
}

// RouteB returns the shard index owning a []byte key. An 8-byte key routes
// by its byte hash, not its uint64 alias — callers must route a key the
// same way they submit it (the frontend does).
func (s *Shards) RouteB(key []byte) int {
	if s.shift == 64 {
		return 0
	}
	return int(hashfn.Hash64(key, s.routingSeed) >> s.shift)
}

// Table returns shard i's table.
func (s *Shards) Table(i int) *core.Table { return s.tables[i] }

// Pool returns shard i's pool.
func (s *Shards) Pool(i int) *pmem.Pool { return s.pools[i] }

// Epoch returns shard i's epoch manager — per-shard by construction, so a
// stalled guard on one shard never delays another shard's reclamation.
func (s *Shards) Epoch(i int) *epoch.Manager { return s.ems[i] }

// Count sums the live record counts of all shards (completing any
// in-flight lazy recovery, per core.Table.Count).
func (s *Shards) Count() int64 {
	var n int64
	for _, tb := range s.tables {
		n += tb.Count()
	}
	return n
}

// PMStats sums PM traffic across every shard's pool.
func (s *Shards) PMStats() pmem.StatsSnapshot {
	var agg pmem.StatsSnapshot
	for _, p := range s.pools {
		st := p.Stats()
		agg.ReadLines += st.ReadLines
		agg.WriteLines += st.WriteLines
		agg.FlushedLines += st.FlushedLines
		agg.Fences += st.Fences
		agg.FencesElided += st.FencesElided
	}
	return agg
}

// Close shuts every shard down cleanly (see core.Table.Close). The caller
// must be quiescent; close the Frontend first.
func (s *Shards) Close() {
	for _, tb := range s.tables {
		tb.Close()
	}
}
