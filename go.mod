module dash

go 1.24
