// Command benchgate is the perf-regression gate wired into `make ci` and
// the hosted CI workflow. It runs a small set of fixed, seeded benchmark
// cells (each seconds-long, with the full Optane cost model so PM traffic
// has a price) and fails — exit status 1 — when any tracked metric
// regresses past the thresholds committed in bench-gate.json.
//
// The cells guard the wins this repo has banked: the u64-insert cell keeps
// the inline fast path honest (p999/max insert latency from the
// incremental-split rework, PM bytes per op from persist batching, plus a
// load-factor floor so neither can be bought by splitting early), the
// var-insert cell guards the variable-length record path through the PM
// record log, and the read cells (u64-read, var-read, read-neg) guard the
// segment filter mirror's PM read-traffic elimination — read ceilings tight
// enough that serving probes from PM again would fail immediately.
// Latency thresholds carry deliberate headroom over locally
// measured values — shared CI runners are noisy and the cost model charges
// wall-clock spins — while the per-op traffic thresholds are tight, because
// they are nearly deterministic. Update bench-gate.json in the same PR as
// an intentional perf change, with the new measurement in the PR
// description.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"dash/internal/bench"
	"dash/internal/pmem"
	"dash/internal/workload"
)

type cellConfig struct {
	Mix       string  `json:"mix"`
	Threads   int     `json:"threads"`
	Ops       int64   `json:"ops"`
	WarmupOps int64   `json:"warmup_ops"`
	Keyspace  uint64  `json:"keyspace"`
	Theta     float64 `json:"theta"`
	Seed      uint64  `json:"seed"`
	Scale     int64   `json:"scale"`
}

type cellThresholds struct {
	P999NSMax            int64   `json:"p999_ns_max"`
	MaxNSMax             int64   `json:"max_ns_max"`
	PMWriteBytesPerOpMax float64 `json:"pm_write_bytes_per_op_max"`
	PMReadBytesPerOpMax  float64 `json:"pm_read_bytes_per_op_max"`
	LoadFactorMin        float64 `json:"load_factor_min"`
	// RecoveryOpenNSMax, when > 0, turns the cell into a restart-latency
	// gate: the cell's durable image is reopened on the crash path and
	// core.Open's wall time (time-to-first-op, before any lazy per-segment
	// work) must stay under the ceiling.
	RecoveryOpenNSMax int64 `json:"recovery_open_ns_max"`
}

type gateCell struct {
	Name       string         `json:"name"`
	Config     cellConfig     `json:"config"`
	Thresholds cellThresholds `json:"thresholds"`
}

type gateFile struct {
	Description string     `json:"description"`
	Cells       []gateCell `json:"cells"`
}

func main() {
	cfgPath := flag.String("config", "bench-gate.json", "gate cells + thresholds")
	flag.Parse()

	// Same GC pacing as dashbench: the gated tail quantiles must measure
	// the table, not the simulator's GC mark assists (see cmd/dashbench).
	debug.SetGCPercent(1000)

	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		fatal(err)
	}
	var gf gateFile
	if err := json.Unmarshal(data, &gf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *cfgPath, err))
	}
	if len(gf.Cells) == 0 {
		fatal(fmt.Errorf("%s declares no gate cells", *cfgPath))
	}

	failed := false
	for _, cell := range gf.Cells {
		if !runCell(cell) {
			failed = true
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL — perf regression past committed thresholds " +
			"(if intentional, update bench-gate.json in this PR and explain why)")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func runCell(cell gateCell) bool {
	mix, ok := workload.MixByName(cell.Config.Mix)
	if !ok {
		fatal(fmt.Errorf("unknown mix %q in gate cell %q", cell.Config.Mix, cell.Name))
	}
	cfg := bench.Config{
		Threads:   cell.Config.Threads,
		Ops:       cell.Config.Ops,
		WarmupOps: cell.Config.WarmupOps,
		Keyspace:  cell.Config.Keyspace,
		Theta:     cell.Config.Theta,
		Mix:       mix,
		Seed:      cell.Config.Seed,
	}
	if cell.Config.Scale > 0 {
		cfg.Model = pmem.ScaledOptane(cell.Config.Scale)
	}
	if cell.Thresholds.RecoveryOpenNSMax > 0 {
		cfg.MeasureRecovery = true
	}
	fmt.Printf("benchgate[%s]: mix %s, %d threads, %d ops, keyspace %d, seed %d, scale %d\n",
		cell.Name, mix.Name, cfg.Threads, cfg.Ops, cfg.Keyspace, cfg.Seed, cell.Config.Scale)

	res, err := bench.Run(cfg)
	if err != nil {
		fatal(err)
	}

	th := cell.Thresholds
	passed := true
	check := func(name string, got, max float64) {
		status := "ok  "
		if max > 0 && got > max {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.1f  (threshold <= %.1f)\n", status, name, got, max)
	}
	check("p999 latency ns", float64(res.P999NS), float64(th.P999NSMax))
	check("max latency ns", float64(res.MaxNS), float64(th.MaxNSMax))
	check("PM write bytes/op", res.WriteBytesPerOp, th.PMWriteBytesPerOpMax)
	check("PM read bytes/op", res.ReadBytesPerOp, th.PMReadBytesPerOpMax)
	if th.RecoveryOpenNSMax > 0 {
		check("crash open ns (first op)", float64(res.RecoveryOpenNS), float64(th.RecoveryOpenNSMax))
		fmt.Printf("  info fully_recovered_ms=%.2f clean_open_ms=%.2f\n",
			float64(res.RecoveryFullNS)/1e6, float64(res.RecoveryCleanOpenNS)/1e6)
	}
	if th.LoadFactorMin > 0 {
		status := "ok  "
		if res.Table.LoadFactor < th.LoadFactorMin {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.2f  (threshold >= %.2f)\n", status, "load factor", res.Table.LoadFactor, th.LoadFactorMin)
	}
	fmt.Printf("  info splits=%d stall_ms=%.2f assists=%d overflows=%d too_large=%d log_live_mib=%.1f\n",
		res.Table.Splits, float64(res.Table.SplitStallNS)/1e6,
		res.Table.SplitAssists, res.Counts.InsertOverflow, res.Counts.InsertTooLarge,
		float64(res.Table.LogLiveBytes)/(1<<20))
	return passed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
