// Command benchgate is the perf-regression gate wired into `make ci` and
// the hosted CI workflow. It runs one fixed, seeded benchmark cell (small
// enough for seconds-long CI runs, with the full Optane cost model so PM
// traffic has a price) and fails — exit status 1 — when a tracked metric
// regresses past the thresholds committed in bench-gate.json.
//
// The thresholds guard the tail-latency and write-traffic wins this repo
// has banked: p999 and max insert latency (the segment-split stall story)
// and PM write bytes per op (the persist-batching story), plus a load
// factor floor so neither can be bought by splitting early. Latency
// thresholds carry deliberate headroom over locally measured values —
// shared CI runners are noisy and the cost model charges wall-clock spins —
// while the per-op traffic thresholds are tight, because they are nearly
// deterministic. Update bench-gate.json in the same PR as an intentional
// perf change, with the new measurement in the PR description.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"dash/internal/bench"
	"dash/internal/pmem"
	"dash/internal/workload"
)

type gateFile struct {
	Description string `json:"description"`
	Config      struct {
		Mix       string  `json:"mix"`
		Threads   int     `json:"threads"`
		Ops       int64   `json:"ops"`
		WarmupOps int64   `json:"warmup_ops"`
		Keyspace  uint64  `json:"keyspace"`
		Theta     float64 `json:"theta"`
		Seed      uint64  `json:"seed"`
		Scale     int64   `json:"scale"`
	} `json:"config"`
	Thresholds struct {
		P999NSMax            int64   `json:"p999_ns_max"`
		MaxNSMax             int64   `json:"max_ns_max"`
		PMWriteBytesPerOpMax float64 `json:"pm_write_bytes_per_op_max"`
		PMReadBytesPerOpMax  float64 `json:"pm_read_bytes_per_op_max"`
		LoadFactorMin        float64 `json:"load_factor_min"`
	} `json:"thresholds"`
}

func main() {
	cfgPath := flag.String("config", "bench-gate.json", "gate config + thresholds")
	flag.Parse()

	// Same GC pacing as dashbench: the gated tail quantiles must measure
	// the table, not the simulator's GC mark assists (see cmd/dashbench).
	debug.SetGCPercent(1000)

	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		fatal(err)
	}
	var gf gateFile
	if err := json.Unmarshal(data, &gf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *cfgPath, err))
	}
	mix, ok := workload.MixByName(gf.Config.Mix)
	if !ok {
		fatal(fmt.Errorf("unknown mix %q in %s", gf.Config.Mix, *cfgPath))
	}

	cfg := bench.Config{
		Threads:   gf.Config.Threads,
		Ops:       gf.Config.Ops,
		WarmupOps: gf.Config.WarmupOps,
		Keyspace:  gf.Config.Keyspace,
		Theta:     gf.Config.Theta,
		Mix:       mix,
		Seed:      gf.Config.Seed,
	}
	if gf.Config.Scale > 0 {
		cfg.Model = pmem.ScaledOptane(gf.Config.Scale)
	}
	fmt.Printf("benchgate: mix %s, %d threads, %d ops, keyspace %d, seed %d, scale %d\n",
		mix.Name, cfg.Threads, cfg.Ops, cfg.Keyspace, cfg.Seed, gf.Config.Scale)

	res, err := bench.Run(cfg)
	if err != nil {
		fatal(err)
	}

	th := gf.Thresholds
	failed := false
	check := func(name string, got, max float64, tighter string) {
		status := "ok  "
		if max > 0 && got > max {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-26s %12.1f  (threshold %s %.1f)\n", status, name, got, tighter, max)
	}
	check("p999 insert latency ns", float64(res.P999NS), float64(th.P999NSMax), "<=")
	check("max insert latency ns", float64(res.MaxNS), float64(th.MaxNSMax), "<=")
	check("PM write bytes/op", res.WriteBytesPerOp, th.PMWriteBytesPerOpMax, "<=")
	check("PM read bytes/op", res.ReadBytesPerOp, th.PMReadBytesPerOpMax, "<=")
	if th.LoadFactorMin > 0 {
		status := "ok  "
		if res.Table.LoadFactor < th.LoadFactorMin {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-26s %12.2f  (threshold >= %.2f)\n", status, "load factor", res.Table.LoadFactor, th.LoadFactorMin)
	}
	fmt.Printf("  info splits=%d stall_ms=%.2f assists=%d overflows=%d\n",
		res.Table.Splits, float64(res.Table.SplitStallNS)/1e6,
		res.Table.SplitAssists, res.Counts.InsertOverflow)

	if failed {
		fmt.Println("benchgate: FAIL — perf regression past committed thresholds " +
			"(if intentional, update bench-gate.json in this PR and explain why)")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
