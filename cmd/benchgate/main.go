// Command benchgate is the perf-regression gate wired into `make ci` and
// the hosted CI workflow. It runs a small set of fixed, seeded benchmark
// cells (each seconds-long, with the full Optane cost model so PM traffic
// has a price) and fails — exit status 1 — when any tracked metric
// regresses past the thresholds committed in bench-gate.json.
//
// The cells guard the wins this repo has banked: the u64-insert cell keeps
// the inline fast path honest (p999/max insert latency from the
// incremental-split rework, PM bytes per op from persist batching, plus a
// load-factor floor so neither can be bought by splitting early), the
// var-insert cell guards the variable-length record path through the PM
// record log, and the read cells (u64-read, var-read, read-neg) guard the
// segment filter mirror's PM read-traffic elimination — read ceilings tight
// enough that serving probes from PM again would fail immediately.
// Latency thresholds carry deliberate headroom over locally
// measured values — shared CI runners are noisy and the cost model charges
// wall-clock spins — while the per-op traffic thresholds are tight, because
// they are nearly deterministic. Update bench-gate.json in the same PR as
// an intentional perf change, with the new measurement in the PR
// description.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"dash/internal/bench"
	"dash/internal/pmem"
	"dash/internal/workload"
)

type cellConfig struct {
	Mix       string  `json:"mix"`
	Threads   int     `json:"threads"`
	Ops       int64   `json:"ops"`
	WarmupOps int64   `json:"warmup_ops"`
	Keyspace  uint64  `json:"keyspace"`
	Theta     float64 `json:"theta"`
	Seed      uint64  `json:"seed"`
	Scale     int64   `json:"scale"`
	// Shards > 0 turns the cell into a service-tier cell: Mix names a
	// client simulation (workload.ClientSims) instead of a mix, and the
	// cell runs it at (Shards, Batch) plus at the unbatched single-table
	// baseline (1, 1) to compare against.
	Shards int `json:"shards,omitempty"`
	Batch  int `json:"batch,omitempty"`
}

type cellThresholds struct {
	P999NSMax            int64   `json:"p999_ns_max"`
	MaxNSMax             int64   `json:"max_ns_max"`
	PMWriteBytesPerOpMax float64 `json:"pm_write_bytes_per_op_max"`
	PMReadBytesPerOpMax  float64 `json:"pm_read_bytes_per_op_max"`
	LoadFactorMin        float64 `json:"load_factor_min"`
	// RecoveryOpenNSMax, when > 0, turns the cell into a restart-latency
	// gate: the cell's durable image is reopened on the crash path and
	// core.Open's wall time (time-to-first-op, before any lazy per-segment
	// work) must stay under the ceiling.
	RecoveryOpenNSMax int64 `json:"recovery_open_ns_max"`
	// Service-cell thresholds (Config.Shards > 0). SvcFenceRatioMax is the
	// ceiling on (batched PM fences per op) / (unbatched baseline fences
	// per op) — strictly below 1 asserts batching actually amortizes
	// ordering points. SvcMopsRatioMin is the floor on batched aggregate
	// throughput relative to the single-table baseline.
	SvcFenceRatioMax float64 `json:"svc_fence_ratio_max,omitempty"`
	SvcMopsRatioMin  float64 `json:"svc_mops_ratio_min,omitempty"`
}

type gateCell struct {
	Name       string         `json:"name"`
	Config     cellConfig     `json:"config"`
	Thresholds cellThresholds `json:"thresholds"`
}

type gateFile struct {
	Description string     `json:"description"`
	Cells       []gateCell `json:"cells"`
}

func main() {
	cfgPath := flag.String("config", "bench-gate.json", "gate cells + thresholds")
	flag.Parse()

	// Same GC pacing as dashbench: the gated tail quantiles must measure
	// the table, not the simulator's GC mark assists (see cmd/dashbench).
	debug.SetGCPercent(1000)

	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		fatal(err)
	}
	var gf gateFile
	if err := json.Unmarshal(data, &gf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *cfgPath, err))
	}
	if len(gf.Cells) == 0 {
		fatal(fmt.Errorf("%s declares no gate cells", *cfgPath))
	}

	failed := false
	for _, cell := range gf.Cells {
		if !runCell(cell) {
			failed = true
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL — perf regression past committed thresholds " +
			"(if intentional, update bench-gate.json in this PR and explain why)")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func runCell(cell gateCell) bool {
	if cell.Config.Shards > 0 {
		return runSvcCell(cell)
	}
	mix, ok := workload.MixByName(cell.Config.Mix)
	if !ok {
		fatal(fmt.Errorf("unknown mix %q in gate cell %q", cell.Config.Mix, cell.Name))
	}
	cfg := bench.Config{
		Threads:   cell.Config.Threads,
		Ops:       cell.Config.Ops,
		WarmupOps: cell.Config.WarmupOps,
		Keyspace:  cell.Config.Keyspace,
		Theta:     cell.Config.Theta,
		Mix:       mix,
		Seed:      cell.Config.Seed,
	}
	if cell.Config.Scale > 0 {
		cfg.Model = pmem.ScaledOptane(cell.Config.Scale)
	}
	if cell.Thresholds.RecoveryOpenNSMax > 0 {
		cfg.MeasureRecovery = true
	}
	fmt.Printf("benchgate[%s]: mix %s, %d threads, %d ops, keyspace %d, seed %d, scale %d\n",
		cell.Name, mix.Name, cfg.Threads, cfg.Ops, cfg.Keyspace, cfg.Seed, cell.Config.Scale)

	res, err := bench.Run(cfg)
	if err != nil {
		fatal(err)
	}

	th := cell.Thresholds
	passed := true
	check := func(name string, got, max float64) {
		status := "ok  "
		if max > 0 && got > max {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.1f  (threshold <= %.1f)\n", status, name, got, max)
	}
	check("p999 latency ns", float64(res.P999NS), float64(th.P999NSMax))
	check("max latency ns", float64(res.MaxNS), float64(th.MaxNSMax))
	check("PM write bytes/op", res.WriteBytesPerOp, th.PMWriteBytesPerOpMax)
	check("PM read bytes/op", res.ReadBytesPerOp, th.PMReadBytesPerOpMax)
	if th.RecoveryOpenNSMax > 0 {
		check("crash open ns (first op)", float64(res.RecoveryOpenNS), float64(th.RecoveryOpenNSMax))
		fmt.Printf("  info fully_recovered_ms=%.2f clean_open_ms=%.2f\n",
			float64(res.RecoveryFullNS)/1e6, float64(res.RecoveryCleanOpenNS)/1e6)
	}
	if th.LoadFactorMin > 0 {
		status := "ok  "
		if res.Table.LoadFactor < th.LoadFactorMin {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.2f  (threshold >= %.2f)\n", status, "load factor", res.Table.LoadFactor, th.LoadFactorMin)
	}
	fmt.Printf("  info splits=%d stall_ms=%.2f assists=%d overflows=%d too_large=%d log_live_mib=%.1f\n",
		res.Table.Splits, float64(res.Table.SplitStallNS)/1e6,
		res.Table.SplitAssists, res.Counts.InsertOverflow, res.Counts.InsertTooLarge,
		float64(res.Table.LogLiveBytes)/(1<<20))
	return passed
}

// runSvcCell runs a service-tier gate cell: the simulation at the cell's
// (shards, batch) and at the unbatched single-table baseline (1, 1), then
// checks the batched run's fence count per op is a committed fraction of the
// baseline's and its aggregate throughput at least matches it.
func runSvcCell(cell gateCell) bool {
	sim, ok := workload.ClientSimByName(cell.Config.Mix)
	if !ok {
		fatal(fmt.Errorf("unknown client sim %q in gate cell %q", cell.Config.Mix, cell.Name))
	}
	run := func(shards, batch int) *bench.ServiceResult {
		cfg := bench.ServiceConfig{
			Shards:    shards,
			Batch:     batch,
			Clients:   cell.Config.Threads,
			Ops:       cell.Config.Ops,
			WarmupOps: cell.Config.WarmupOps,
			Keyspace:  cell.Config.Keyspace,
			Theta:     cell.Config.Theta,
			Sim:       sim,
			Seed:      cell.Config.Seed,
		}
		if cell.Config.Scale > 0 {
			cfg.Model = pmem.ScaledOptane(cell.Config.Scale)
		}
		res, err := bench.RunService(cfg)
		if err != nil {
			fatal(err)
		}
		return res
	}
	fmt.Printf("benchgate[%s]: sim %s, %d clients, %d ops, keyspace %d, seed %d, scale %d — %d×%d vs 1×1 baseline\n",
		cell.Name, sim.Name, cell.Config.Threads, cell.Config.Ops, cell.Config.Keyspace,
		cell.Config.Seed, cell.Config.Scale, cell.Config.Shards, cell.Config.Batch)

	baseline := run(1, 1)
	target := run(cell.Config.Shards, cell.Config.Batch)

	th := cell.Thresholds
	passed := true
	fenceRatio := 0.0
	if baseline.FencesPerOp > 0 {
		fenceRatio = target.FencesPerOp / baseline.FencesPerOp
	}
	mopsRatio := 0.0
	if baseline.MopsPerS > 0 {
		mopsRatio = target.MopsPerS / baseline.MopsPerS
	}
	if th.SvcFenceRatioMax > 0 {
		status := "ok  "
		if fenceRatio > th.SvcFenceRatioMax {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.3f  (threshold <= %.3f; %.3f vs %.3f fences/op)\n",
			status, "fence ratio vs baseline", fenceRatio, th.SvcFenceRatioMax,
			target.FencesPerOp, baseline.FencesPerOp)
	}
	if th.SvcMopsRatioMin > 0 {
		status := "ok  "
		if mopsRatio < th.SvcMopsRatioMin {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.3f  (threshold >= %.3f; %.3f vs %.3f Mops/s)\n",
			status, "throughput vs baseline", mopsRatio, th.SvcMopsRatioMin,
			target.MopsPerS, baseline.MopsPerS)
	}
	if th.LoadFactorMin > 0 {
		status := "ok  "
		if target.LoadFactor < th.LoadFactorMin {
			status = "FAIL"
			passed = false
		}
		fmt.Printf("  %s %-26s %12.2f  (threshold >= %.2f)\n", status, "load factor (mean)", target.LoadFactor, th.LoadFactorMin)
	}
	fmt.Printf("  info batch_mean=%.1f flush_saved=%d imbalance=%.3f reconnects=%d elided_per_op=%.3f\n",
		target.BatchSizeMean, target.FlushSaved, target.Imbalance, target.Reconnects,
		target.FencesElidedPerOp)
	return passed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
