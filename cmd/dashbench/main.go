// Command dashbench drives the Dash-EH engine through a matrix of concurrent
// workloads and reports throughput, latency quantiles, simulated-PM traffic
// per operation and final table shape — the repo's counterpart to the
// paper's Fig. 6–9 experiments.
//
// The benchmark runs every cell of (mix × thread ladder): the thread ladder
// is the powers of two up to -threads, and the mix set is the core suite
// (insert, read, read-neg, balanced, ycsb-b — always run so that every
// BENCH_*.json is comparable across PRs) plus whatever -mix adds. Use -only
// to run exactly the -mix list for quick experiments.
//
// Results go to stdout as a human table and to -out as machine-readable
// JSON for the repo's perf-trajectory tracking. -recovery additionally
// reopens each cell's durable image and reports recovery phase timings, and
// -debug-addr serves the live table's metrics registry, flight-recorder
// trace and pprof over HTTP while the run progresses.
//
// -shards N (with -batch B) additionally runs the service-tier suite: each
// client-simulation profile (-sims, default all of workload.ClientSims) is
// driven through a service.Shards + service.Frontend stack twice — once at
// the unbatched single-table baseline (1 shard, batch 1) and once at the
// requested (N, B) — so one BENCH file shows the fence amortization and
// scaling the batched sharded pipeline buys. Service cells report
// client-observed submit→completion latency plus per-shard rows.
//
// Example:
//
//	go run ./cmd/dashbench -threads 8 -mix balanced -debug-addr localhost:6060
//	go run ./cmd/dashbench -only -shards 4 -batch 16 -sims svc-balanced
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
	"sync/atomic"

	"dash/internal/bench"
	"dash/internal/core"
	"dash/internal/obs"
	"dash/internal/pmem"
	"dash/internal/workload"
)

// coreSuite is the fixed mix set every full run includes, keeping BENCH
// files comparable PR to PR.
var coreSuite = []string{"insert", "read", "read-neg", "balanced", "ycsb-b"}

type cellJSON struct {
	Mix       string  `json:"mix"`
	Threads   int     `json:"threads"`
	Ops       int64   `json:"ops"`
	ElapsedNS int64   `json:"elapsed_ns"`
	MopsPerS  float64 `json:"mops_per_s"`

	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
	MaxUS  float64 `json:"max_us"` // max_ns in µs: the tail number tracked across PRs
	MeanNS float64 `json:"mean_ns"`

	PMReadBytesPerOp    float64 `json:"pm_read_bytes_per_op"`
	PMWriteBytesPerOp   float64 `json:"pm_write_bytes_per_op"`
	PMFlushedBytesPerOp float64 `json:"pm_flushed_bytes_per_op"`
	PMFencesPerOp       float64 `json:"pm_fences_per_op"`

	Count          int64   `json:"count"`
	GlobalDepth    uint8   `json:"global_depth"`
	Segments       int     `json:"segments"`
	LoadFactor     float64 `json:"load_factor"`
	StashShare     float64 `json:"stash_share"`
	AllocatedBytes uint64  `json:"allocated_bytes"`

	DirCacheHits    uint64  `json:"dir_cache_hits"`
	DirCacheMisses  uint64  `json:"dir_cache_misses"`
	DirCacheHitRate float64 `json:"dir_cache_hit_rate"`
	DirCacheBytes   uint64  `json:"dir_cache_bytes"`

	// Segment filter mirror telemetry over the measured phase (schema v4):
	// mirror-served reads vs PM fallbacks vs missing-mirror bypasses, the
	// mirrors' DRAM footprint, and the sampled self-check / heal counts.
	SegFilterHits    uint64  `json:"seg_filter_hits"`
	SegFilterMisses  uint64  `json:"seg_filter_misses"`
	SegFilterBypass  uint64  `json:"seg_filter_bypass"`
	SegFilterHitRate float64 `json:"seg_filter_hit_rate"`
	SegFilterBytes   uint64  `json:"seg_filter_bytes"`
	SegFilterChecks  uint64  `json:"seg_filter_checks"`
	SegFilterHeals   uint64  `json:"seg_filter_heals"`

	// Record-log shape after the run (variable-length mixes; zero for
	// pure-inline cells): chunk bytes carved from the pool, live blob
	// bytes/count, and free-list bytes awaiting reuse.
	LogChunkBytes uint64 `json:"log_chunk_bytes"`
	LogLiveBytes  uint64 `json:"log_live_bytes"`
	LogLiveBlobs  int64  `json:"log_live_blobs"`
	LogFreeBytes  uint64 `json:"log_free_bytes"`

	// Split telemetry over the measured phase: completed splits, cumulative
	// publish stall (the stop-the-world exposure), writer assists into
	// in-flight siblings, and inserts lost to pathological overflow.
	Splits          uint64 `json:"splits"`
	SplitStallNS    int64  `json:"split_stall_ns"`
	SplitAssists    uint64 `json:"split_assists"`
	InsertOverflows int64  `json:"insert_overflows"`
	InsertTooLarge  int64  `json:"insert_too_large"`

	// Epoch-reclamation and record-log free-list telemetry over the measured
	// phase (schema v5): objects retired/actually freed (plus the backlog at
	// the end of the run), and blob allocations served by exact-capacity
	// reuse vs fresh bump allocations.
	EpochRetired   uint64 `json:"epoch_retired"`
	EpochReclaimed uint64 `json:"epoch_reclaimed"`
	EpochPending   uint64 `json:"epoch_pending"`
	LogFreeHits    uint64 `json:"log_free_hits"`
	LogFreeMisses  uint64 `json:"log_free_misses"`

	// Restart latency from re-opening the cell's durable image (-recovery;
	// zero otherwise, schema v6). The crash-path reopen splits
	// time-to-first-op (recovery_open_ns: core.Open's O(directory) work)
	// from time-to-fully-recovered (recovery_full_ns: Open + every lazy
	// first-touch segment recovery + the record-log sweep); the phase
	// fields break that full recovery's work down. recovery_clean_open_ns
	// is the clean-shutdown fast path's Open wall.
	RecoveryOpenNS      int64 `json:"recovery_open_ns,omitempty"`
	RecoveryFullNS      int64 `json:"recovery_full_ns,omitempty"`
	RecoveryCleanOpenNS int64 `json:"recovery_clean_open_ns,omitempty"`
	RecoveryDirNS       int64 `json:"recovery_dir_ns,omitempty"`
	RecoverySegmentsNS  int64 `json:"recovery_segments_ns,omitempty"`
	RecoveryLogNS       int64 `json:"recovery_log_ns,omitempty"`
	RecoveryMirrorsNS   int64 `json:"recovery_mirrors_ns,omitempty"`
	RecoveryTotalNS     int64 `json:"recovery_total_ns,omitempty"`

	// Service-tier fields (schema v7; zero/absent for classic single-table
	// cells). A service cell sets Mix to the client-simulation name and
	// Threads to the simulated client count. shards/batch echo the tier
	// shape; pm_fences_elided_per_op counts the per-op ordering points
	// absorbed by batch-tail fences (pm_fences_per_op already reflects the
	// saving); shard_batch_mean is the mean executor batch size;
	// shard_flush_saved the fences saved versus unbatched execution;
	// shard_imbalance the (max/mean − 1) spread of ops across shards;
	// svc_reconnects the connection-churn session count; shard_rows the
	// per-shard breakdown.
	Shards              int            `json:"shards,omitempty"`
	Batch               int            `json:"batch,omitempty"`
	PMFencesElidedPerOp float64        `json:"pm_fences_elided_per_op,omitempty"`
	ShardBatchMean      float64        `json:"shard_batch_mean,omitempty"`
	ShardFlushSaved     uint64         `json:"shard_flush_saved,omitempty"`
	ShardImbalance      float64        `json:"shard_imbalance,omitempty"`
	SvcReconnects       int64          `json:"svc_reconnects,omitempty"`
	ShardRows           []shardRowJSON `json:"shard_rows,omitempty"`
}

// shardRowJSON is one shard's row inside a service cell.
type shardRowJSON struct {
	Shard             int     `json:"shard"`
	Ops               uint64  `json:"ops"`
	FencesPerOp       float64 `json:"fences_per_op"`
	FencesElidedPerOp float64 `json:"fences_elided_per_op"`
	Count             int64   `json:"count"`
	LoadFactor        float64 `json:"load_factor"`
	Splits            uint64  `json:"splits"`
}

type benchJSON struct {
	Bench         string `json:"bench"`
	SchemaVersion int    `json:"schema_version"`
	Config        struct {
		Keyspace  uint64  `json:"keyspace"`
		Theta     float64 `json:"theta"`
		OpsPerRun int64   `json:"ops_per_run"`
		WarmupOps int64   `json:"warmup_ops"`
		Seed      uint64  `json:"seed"`
		CostScale int64   `json:"cost_scale"` // 0 = cost model disabled
		Shards    int     `json:"shards,omitempty"`
		Batch     int     `json:"batch,omitempty"`
	} `json:"config"`
	Results []cellJSON `json:"results"`
}

func main() {
	var (
		threads   = flag.Int("threads", 8, "max worker goroutines; the run covers the powers-of-two ladder up to this")
		ops       = flag.Int64("ops", 100_000, "measured operations per cell")
		warmup    = flag.Int64("warmup", -1, "warmup operations per cell (-1 = ops/10)")
		keyspace  = flag.Uint64("keyspace", 100_000, "preloaded keys; positive ops draw from this range")
		theta     = flag.Float64("theta", 0, "Zipfian skew in (0,1); 0 = uniform")
		mixFlag   = flag.String("mix", "", "comma-separated mixes to run in addition to the core suite; 'all' runs every registered mix")
		only      = flag.Bool("only", false, "run only the -mix list, skipping the core suite (quick experiments)")
		poolSize  = flag.Uint64("pool", 0, "PM pool bytes per cell (0 = sized automatically)")
		seed      = flag.Uint64("seed", 42, "workload seed; identical seeds replay identical op sequences")
		scale     = flag.Int64("scale", 1, "Optane cost-model speedup factor; 0 disables cost charging")
		out       = flag.String("out", "BENCH_dashbench.json", "JSON output path ('' skips writing)")
		list      = flag.Bool("list", false, "list registered mixes and exit")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address for the duration of the run (e.g. localhost:6060)")
		recovery  = flag.Bool("recovery", false, "after each cell, reopen its durable image and report recovery phase timings")
		shards    = flag.Int("shards", 0, "run the service-tier suite over this many shards (power of two; 0 = skip the service suite)")
		batch     = flag.Int("batch", 16, "frontend batch size for service-tier cells (1 = unbatched)")
		sims      = flag.String("sims", "all", "comma-separated client simulations for the service suite; 'all' runs every registered one")
	)
	flag.Parse()

	// The engine's steady state allocates almost nothing, but the live heap
	// is tiny next to the (pointer-free) pool arenas, so default GC pacing
	// runs frequent cycles whose mark assists show up as multi-ms latency
	// outliers on small-core machines — simulator noise, not table
	// behavior. Relax pacing so the tail quantiles measure the table.
	debug.SetGCPercent(1000)

	if *list {
		for _, name := range workload.MixNames() {
			m, _ := workload.MixByName(name)
			fmt.Println(m)
		}
		return
	}

	mixes, err := selectMixes(*mixFlag, *only, *shards > 0)
	if err != nil {
		fatal(err)
	}
	simList, err := selectSims(*sims, *shards)
	if err != nil {
		fatal(err)
	}
	ladder := threadLadder(*threads)
	if *warmup < 0 {
		*warmup = *ops / 10
	}

	var live liveSource
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, &live)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("dashbench: debug endpoint on http://%s (/metrics, /trace, /debug/pprof)\n", srv.Addr())
	}

	outJSON := benchJSON{Bench: "dashbench", SchemaVersion: 7}
	outJSON.Config.Keyspace = *keyspace
	outJSON.Config.Theta = *theta
	outJSON.Config.OpsPerRun = *ops
	outJSON.Config.WarmupOps = *warmup
	outJSON.Config.Seed = *seed
	outJSON.Config.CostScale = *scale
	outJSON.Config.Shards = *shards
	if *shards > 0 {
		outJSON.Config.Batch = *batch
	}

	fmt.Printf("dashbench: %d mixes × threads %v, %d ops/cell, keyspace %d, theta %g, cost scale %d\n",
		len(mixes), ladder, *ops, *keyspace, *theta, *scale)

	for _, mix := range mixes {
		fmt.Printf("\nmix %s\n", mix)
		fmt.Printf("  %7s %9s %9s %9s %9s %9s %10s %10s %6s %5s %7s %7s %6s\n",
			"threads", "Mops/s", "p50(µs)", "p99(µs)", "p999(µs)", "max(µs)", "PMrd B/op", "PMwr B/op", "lf", "depth", "dchit%", "fhit%", "splits")
		for _, th := range ladder {
			cfg := bench.Config{
				Threads:         th,
				Ops:             *ops,
				WarmupOps:       *warmup,
				Keyspace:        *keyspace,
				Theta:           *theta,
				Mix:             mix,
				Seed:            *seed,
				PoolSize:        *poolSize,
				MeasureRecovery: *recovery,
				OnTable:         live.attach,
			}
			if *scale > 0 {
				cfg.Model = pmem.ScaledOptane(*scale)
			}
			res, err := bench.Run(cfg)
			if err != nil {
				fatal(fmt.Errorf("mix %s threads %d: %w", mix.Name, th, err))
			}
			fmt.Printf("  %7d %9.3f %9.1f %9.1f %9.1f %9.1f %10.1f %10.1f %6.2f %5d %7.3f %7.3f %6d\n",
				th, res.MopsPerS,
				float64(res.P50NS)/1e3, float64(res.P99NS)/1e3,
				float64(res.P999NS)/1e3, float64(res.MaxNS)/1e3,
				res.ReadBytesPerOp, res.WriteBytesPerOp,
				res.Table.LoadFactor, res.Table.GlobalDepth,
				100*res.Table.DirCacheHitRate, 100*res.Table.SegFilterHitRate,
				res.Table.Splits)
			if n := res.Counts.InsertOverflow; n > 0 {
				fmt.Printf("          ^ %d inserts rejected with segment overflow\n", n)
			}
			if n := res.Counts.InsertTooLarge; n > 0 {
				fmt.Printf("          ^ %d inserts rejected as too large\n", n)
			}
			if lb := res.Table.LogLiveBytes; lb > 0 {
				fmt.Printf("          ^ record log: %.1f MiB live (%d blobs), %.1f MiB free-listed, %.1f MiB chunks\n",
					float64(lb)/(1<<20), res.Table.LogLiveBlobs,
					float64(res.Table.LogFreeBytes)/(1<<20), float64(res.Table.LogChunkBytes)/(1<<20))
			}
			if *recovery {
				fmt.Printf("          ^ restart: crash open %.2fms (first op), fully recovered %.2fms, clean open %.2fms\n",
					float64(res.RecoveryOpenNS)/1e6, float64(res.RecoveryFullNS)/1e6,
					float64(res.RecoveryCleanOpenNS)/1e6)
				fmt.Printf("          ^ recovery work: %.2fms total (dir %.2f, segments %.2f, log %.2f, mirrors %.2f)\n",
					float64(res.RecoveryTotalNS)/1e6, float64(res.RecoveryDirNS)/1e6,
					float64(res.RecoverySegmentsNS)/1e6, float64(res.RecoveryLogNS)/1e6,
					float64(res.RecoveryMirrorsNS)/1e6)
			}
			outJSON.Results = append(outJSON.Results, toCell(res))
		}
	}

	// Service-tier suite: each simulation at the unbatched single-table
	// baseline (1, 1) then at the requested (-shards, -batch), so the fence
	// amortization is visible inside one BENCH file.
	if *shards > 0 {
		svcOps := *ops
		svcWarmup := *warmup
		for _, sim := range simList {
			fmt.Printf("\nservice sim %s (%d clients)\n", sim.Name, *threads)
			fmt.Printf("  %13s %9s %9s %9s %9s %10s %9s %9s %7s %6s %6s\n",
				"shards×batch", "Mops/s", "p50(µs)", "p99(µs)", "p999(µs)", "fences/op", "elided/op", "batchmean", "imbal", "reconn", "lf")
			for _, shape := range [][2]int{{1, 1}, {*shards, *batch}} {
				cfg := bench.ServiceConfig{
					Shards:    shape[0],
					Batch:     shape[1],
					Clients:   *threads,
					Ops:       svcOps,
					WarmupOps: svcWarmup,
					Keyspace:  *keyspace,
					Theta:     *theta,
					Sim:       sim,
					Seed:      *seed,
					PoolSize:  *poolSize,
				}
				if *scale > 0 {
					cfg.Model = pmem.ScaledOptane(*scale)
				}
				res, err := bench.RunService(cfg)
				if err != nil {
					fatal(fmt.Errorf("sim %s shards %d batch %d: %w", sim.Name, shape[0], shape[1], err))
				}
				fmt.Printf("  %13s %9.3f %9.1f %9.1f %9.1f %10.3f %9.3f %9.1f %7.3f %6d %6.2f\n",
					fmt.Sprintf("%d×%d", res.Shards, res.Batch), res.MopsPerS,
					float64(res.P50NS)/1e3, float64(res.P99NS)/1e3, float64(res.P999NS)/1e3,
					res.FencesPerOp, res.FencesElidedPerOp, res.BatchSizeMean,
					res.Imbalance, res.Reconnects, res.LoadFactor)
				if res.Shards > 1 {
					for _, row := range res.PerShard {
						fmt.Printf("          shard %d: %d ops, %.3f fences/op, count %d, lf %.2f, %d splits\n",
							row.Shard, row.Ops, row.FencesPerOp, row.Count, row.LoadFactor, row.Splits)
					}
				}
				outJSON.Results = append(outJSON.Results, toSvcCell(res))
			}
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(outJSON, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d results to %s\n", len(outJSON.Results), *out)
	}
}

// selectMixes resolves the mix set: the core suite plus -mix additions, or
// exactly the -mix list under -only. An empty -only list is allowed when the
// service suite runs instead (haveSvc).
func selectMixes(mixFlag string, only, haveSvc bool) ([]workload.Mix, error) {
	var names []string
	if !only {
		names = append(names, coreSuite...)
	}
	switch {
	case mixFlag == "all":
		names = workload.MixNames()
	case mixFlag != "":
		for _, n := range strings.Split(mixFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	case only && !haveSvc:
		return nil, fmt.Errorf("-only requires -mix (or -shards for the service suite)")
	}
	var mixes []workload.Mix
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		m, ok := workload.MixByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown mix %q (registered: %s)", n, strings.Join(workload.MixNames(), ", "))
		}
		mixes = append(mixes, m)
	}
	return mixes, nil
}

// selectSims resolves the -sims list against the client-simulation registry;
// empty when the service suite is off.
func selectSims(simFlag string, shards int) ([]workload.ClientSim, error) {
	if shards <= 0 {
		return nil, nil
	}
	var names []string
	if simFlag == "all" || simFlag == "" {
		names = workload.ClientSimNames()
	} else {
		for _, n := range strings.Split(simFlag, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var sims []workload.ClientSim
	for _, n := range names {
		s, ok := workload.ClientSimByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown sim %q (registered: %s)", n, strings.Join(workload.ClientSimNames(), ", "))
		}
		sims = append(sims, s)
	}
	return sims, nil
}

// threadLadder returns the powers of two up to and including max.
func threadLadder(max int) []int {
	if max < 1 {
		max = 1
	}
	var ladder []int
	for t := 1; t < max; t *= 2 {
		ladder = append(ladder, t)
	}
	return append(ladder, max)
}

func toCell(r *bench.Result) cellJSON {
	return cellJSON{
		Mix:       r.Mix,
		Threads:   r.Threads,
		Ops:       r.Ops,
		ElapsedNS: r.Elapsed.Nanoseconds(),
		MopsPerS:  r.MopsPerS,
		P50NS:     r.P50NS,
		P90NS:     r.P90NS,
		P99NS:     r.P99NS,
		P999NS:    r.P999NS,
		MaxNS:     r.MaxNS,
		MaxUS:     float64(r.MaxNS) / 1e3,
		MeanNS:    r.MeanNS,

		PMReadBytesPerOp:    r.ReadBytesPerOp,
		PMWriteBytesPerOp:   r.WriteBytesPerOp,
		PMFlushedBytesPerOp: r.FlushedBytesPerOp,
		PMFencesPerOp:       r.FencesPerOp,

		Count:          r.Table.Count,
		GlobalDepth:    r.Table.GlobalDepth,
		Segments:       r.Table.Segments,
		LoadFactor:     r.Table.LoadFactor,
		StashShare:     r.Table.StashShare,
		AllocatedBytes: r.Table.AllocatedBytes,

		DirCacheHits:    r.Table.DirCacheHits,
		DirCacheMisses:  r.Table.DirCacheMisses,
		DirCacheHitRate: r.Table.DirCacheHitRate,
		DirCacheBytes:   r.Table.DirCacheBytes,

		SegFilterHits:    r.Table.SegFilterHits,
		SegFilterMisses:  r.Table.SegFilterMisses,
		SegFilterBypass:  r.Table.SegFilterBypass,
		SegFilterHitRate: r.Table.SegFilterHitRate,
		SegFilterBytes:   r.Table.SegFilterBytes,
		SegFilterChecks:  r.Table.SegFilterChecks,
		SegFilterHeals:   r.Table.SegFilterHeals,

		LogChunkBytes: r.Table.LogChunkBytes,
		LogLiveBytes:  r.Table.LogLiveBytes,
		LogLiveBlobs:  r.Table.LogLiveBlobs,
		LogFreeBytes:  r.Table.LogFreeBytes,

		Splits:          r.Table.Splits,
		SplitStallNS:    r.Table.SplitStallNS,
		SplitAssists:    r.Table.SplitAssists,
		InsertOverflows: r.Counts.InsertOverflow,
		InsertTooLarge:  r.Counts.InsertTooLarge,

		EpochRetired:   r.Table.EpochRetired,
		EpochReclaimed: r.Table.EpochReclaimed,
		EpochPending:   r.Table.EpochPending,
		LogFreeHits:    r.Table.LogFreeHits,
		LogFreeMisses:  r.Table.LogFreeMisses,

		RecoveryOpenNS:      r.RecoveryOpenNS,
		RecoveryFullNS:      r.RecoveryFullNS,
		RecoveryCleanOpenNS: r.RecoveryCleanOpenNS,
		RecoveryDirNS:       r.RecoveryDirNS,
		RecoverySegmentsNS:  r.RecoverySegmentsNS,
		RecoveryLogNS:       r.RecoveryLogNS,
		RecoveryMirrorsNS:   r.RecoveryMirrorsNS,
		RecoveryTotalNS:     r.RecoveryTotalNS,
	}
}

// toSvcCell renders a service-tier result as a cell row: Mix carries the
// simulation name, Threads the client count, and the shard_* fields the
// service-specific telemetry; table-shape fields aggregate across shards.
func toSvcCell(r *bench.ServiceResult) cellJSON {
	c := cellJSON{
		Mix:       r.Sim,
		Threads:   r.Clients,
		Ops:       r.Ops,
		ElapsedNS: r.Elapsed.Nanoseconds(),
		MopsPerS:  r.MopsPerS,
		P50NS:     r.P50NS,
		P90NS:     r.P90NS,
		P99NS:     r.P99NS,
		P999NS:    r.P999NS,
		MaxNS:     r.MaxNS,
		MaxUS:     float64(r.MaxNS) / 1e3,
		MeanNS:    r.MeanNS,

		PMReadBytesPerOp:    r.ReadBytesPerOp,
		PMWriteBytesPerOp:   r.WriteBytesPerOp,
		PMFlushedBytesPerOp: r.FlushedBytesPerOp,
		PMFencesPerOp:       r.FencesPerOp,

		Count:       r.Count,
		GlobalDepth: r.GlobalDepthMax,
		Segments:    r.Segments,
		LoadFactor:  r.LoadFactor,

		InsertOverflows: r.Counts.InsertOverflow,
		InsertTooLarge:  r.Counts.InsertTooLarge,

		Shards:              r.Shards,
		Batch:               r.Batch,
		PMFencesElidedPerOp: r.FencesElidedPerOp,
		ShardBatchMean:      r.BatchSizeMean,
		ShardFlushSaved:     r.FlushSaved,
		ShardImbalance:      r.Imbalance,
		SvcReconnects:       r.Reconnects,
	}
	for _, row := range r.PerShard {
		c.ShardRows = append(c.ShardRows, shardRowJSON{
			Shard:             row.Shard,
			Ops:               row.Ops,
			FencesPerOp:       row.FencesPerOp,
			FencesElidedPerOp: row.FencesElidedPerOp,
			Count:             row.Count,
			LoadFactor:        row.LoadFactor,
			Splits:            row.Splits,
		})
	}
	return c
}

// liveSource adapts the cell currently running to obs.Source: bench.Run's
// OnTable hook attaches each cell's table as it is created, and the debug
// endpoint introspects whichever one is live (503 before the first cell).
type liveSource struct {
	tb atomic.Pointer[core.Table]
}

func (s *liveSource) attach(t *core.Table) { s.tb.Store(t) }

func (s *liveSource) Metrics() *obs.Registry {
	if t := s.tb.Load(); t != nil {
		return t.Metrics()
	}
	return nil
}

func (s *liveSource) TraceSnapshot() []obs.Event {
	if t := s.tb.Load(); t != nil {
		return t.TraceSnapshot()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dashbench:", err)
	os.Exit(1)
}
